//! Mining biological networks: protein-complex motif search.
//!
//! The paper's first motivating application (§I): protein interactions are
//! modelled as a hypergraph — proteins are vertices (labelled by protein
//! family), complexes are hyperedges — and biologists search for complex
//! patterns. This example builds a synthetic protein-interaction
//! hypergraph, plants a "kinase–scaffold–phosphatase" signalling motif,
//! and finds every occurrence in parallel.
//!
//! Run with: `cargo run --release --example protein_complexes`

use hgmatch_core::{MatchConfig, Matcher};
use hgmatch_datasets::{generate, ArityDistribution, GeneratorConfig};
use hgmatch_hypergraph::{Hypergraph, HypergraphBuilder, Label};

// Protein families as labels.
const KINASE: u32 = 0;
const PHOSPHATASE: u32 = 1;
const SCAFFOLD: u32 = 2;
const RECEPTOR: u32 = 3;

fn main() {
    // Background interactome: 2 000 proteins over 6 families, complexes of
    // 2–8 subunits, hub-like degree skew (real PPI networks are power-law).
    let background = generate(&GeneratorConfig {
        num_vertices: 2_000,
        num_edges: 8_000,
        num_labels: 6,
        label_skew: 0.4,
        arity: ArityDistribution::Geometric {
            min: 2,
            p: 0.35,
            max: 8,
        },
        degree_skew: 0.9,
        seed: 1905,
    });

    // Re-build with planted signalling modules: a scaffold binding a kinase
    // and a receptor, and the same kinase in a complex with a phosphatase.
    let mut builder = HypergraphBuilder::new();
    for &l in background.labels() {
        builder.add_vertex(l);
    }
    for (_, vs) in background.iter_edges() {
        let _ = builder.add_edge(vs.to_vec());
    }
    let planted = 12;
    let base = background.num_vertices() as u32;
    for i in 0..planted {
        let kinase = builder.add_vertex(Label::new(KINASE)).raw();
        let scaffold = builder.add_vertex(Label::new(SCAFFOLD)).raw();
        let phosphatase = builder.add_vertex(Label::new(PHOSPHATASE)).raw();
        let receptor = builder.add_vertex(Label::new(RECEPTOR)).raw();
        builder.add_edge(vec![kinase, scaffold, receptor]).unwrap();
        builder.add_edge(vec![kinase, phosphatase]).unwrap();
        let _ = (i, base);
    }
    let interactome = builder.build().unwrap();
    let stats = interactome.stats();
    println!(
        "Interactome: {} proteins, {} complexes, families = {}, avg complex size = {:.1}",
        stats.num_vertices, stats.num_edges, stats.num_labels, stats.avg_arity
    );

    // The motif: a (kinase, scaffold, receptor) complex whose kinase also
    // forms a (kinase, phosphatase) dimer — a classic activation/
    // deactivation module.
    let motif = signalling_motif();

    // Search with all cores.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let matcher = Matcher::with_config(&interactome, MatchConfig::parallel(threads));

    let (count, stats) = matcher.count_with_stats(&motif).unwrap();
    println!("\nSignalling motif occurrences: {count} (≥ {planted} planted)");
    println!(
        "elapsed: {:?} on {threads} threads; {} candidates generated, {} validated",
        stats.elapsed, stats.metrics.candidates, stats.metrics.validated
    );
    assert!(count >= planted as u64);

    // Show a few concrete modules.
    let examples = matcher.find_first(&motif, 3).unwrap();
    println!("\nExample modules (complex ids):");
    for m in &examples {
        println!("  trimer {} + dimer {}", m.edge(0), m.edge(1));
    }

    // Existence check is much cheaper than enumeration:
    let exists = matcher.contains(&motif).unwrap();
    println!("\nmotif present? {exists}");
}

fn signalling_motif() -> Hypergraph {
    let mut builder = HypergraphBuilder::new();
    let kinase = builder.add_vertex(Label::new(KINASE)).raw();
    let scaffold = builder.add_vertex(Label::new(SCAFFOLD)).raw();
    let receptor = builder.add_vertex(Label::new(RECEPTOR)).raw();
    let phosphatase = builder.add_vertex(Label::new(PHOSPHATASE)).raw();
    builder.add_edge(vec![kinase, scaffold, receptor]).unwrap();
    builder.add_edge(vec![kinase, phosphatase]).unwrap();
    builder.build().unwrap()
}
