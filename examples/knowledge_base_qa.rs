//! Question answering over a hypergraph knowledge base (paper §VII-D).
//!
//! Reproduces the case study: a JF17K-like knowledge base of n-ary facts,
//! queried with the two Fig. 13 patterns — "players who represented
//! different teams in different matches" and "actors who played the same
//! character in a TV show on different seasons".
//!
//! Run with: `cargo run --release --example knowledge_base_qa`

use hgmatch_core::Matcher;
use hgmatch_datasets::{KnowledgeBase, KnowledgeBaseConfig};
use hgmatch_hypergraph::VertexId;

fn main() {
    let kb = KnowledgeBase::generate(&KnowledgeBaseConfig::default());
    let stats = kb.graph.stats();
    println!(
        "Knowledge base: {} entities, {} facts ({} entity types)",
        stats.num_vertices, stats.num_edges, stats.num_labels
    );
    println!("Fact schemas: (Player, Team, Match) and (Actor, Character, TVShow, Season)");

    let matcher = Matcher::new(&kb.graph);

    // Fig. 13a.
    let q1 = KnowledgeBase::query_multi_team_player();
    let answers = matcher.find_all(&q1).unwrap();
    println!("\nQ1: players who represented different teams in different matches");
    println!("    {} embeddings", answers.len());
    for m in answers.iter().take(3) {
        let fact1 = fact_names(&kb, m.edge(0).raw());
        let fact2 = fact_names(&kb, m.edge(1).raw());
        println!("    {fact1}  &  {fact2}");
    }
    assert!(!answers.is_empty());

    // Fig. 13b.
    let q2 = KnowledgeBase::query_recast_character();
    let answers = matcher.find_all(&q2).unwrap();
    println!("\nQ2: actors who played the same character in a TV show on different seasons");
    println!("    {} embeddings", answers.len());
    for m in answers.iter().take(3) {
        let fact1 = fact_names(&kb, m.edge(0).raw());
        let fact2 = fact_names(&kb, m.edge(1).raw());
        println!("    {fact1}  &  {fact2}");
    }
    assert!(!answers.is_empty());

    println!("\n(The paper found 111 and 76 answers on the real JF17K subset of Freebase.)");
}

fn fact_names(kb: &KnowledgeBase, edge: u32) -> String {
    let names: Vec<&str> = kb
        .graph
        .edge_vertices(hgmatch_hypergraph::EdgeId::new(edge))
        .iter()
        .map(|&v| kb.names[VertexId::new(v).index()].as_str())
        .collect();
    format!("({})", names.join(", "))
}
