//! Quickstart: the paper's running example (Fig. 1) end to end.
//!
//! Builds the data hypergraph of Fig. 1b and the query of Fig. 1a, shows
//! the signature-partitioned storage (Table I), the compiled plan and
//! dataflow, and enumerates both embeddings.
//!
//! Run with: `cargo run --release --example quickstart`

use hgmatch_core::operators::Dataflow;
use hgmatch_core::Matcher;
use hgmatch_hypergraph::{HypergraphBuilder, Label};

fn main() {
    // Labels: A = 0, B = 1, C = 2.
    const A: u32 = 0;
    const B: u32 = 1;
    const C: u32 = 2;

    // Data hypergraph H (Fig. 1b): v0..v6 with labels A,C,A,A,B,C,A and
    // hyperedges e1..e6 (0-indexed here).
    let mut builder = HypergraphBuilder::new();
    for &l in &[A, C, A, A, B, C, A] {
        builder.add_vertex(Label::new(l));
    }
    builder.add_edge(vec![2, 4]).unwrap(); // e1 {v2, v4}
    builder.add_edge(vec![4, 6]).unwrap(); // e2 {v4, v6}
    builder.add_edge(vec![0, 1, 2]).unwrap(); // e3 {v0, v1, v2}
    builder.add_edge(vec![3, 5, 6]).unwrap(); // e4 {v3, v5, v6}
    builder.add_edge(vec![0, 1, 4, 6]).unwrap(); // e5 {v0, v1, v4, v6}
    builder.add_edge(vec![2, 3, 4, 5]).unwrap(); // e6 {v2, v3, v4, v5}
    let data = builder.build().unwrap();

    println!(
        "Data hypergraph: {} vertices, {} hyperedges",
        data.num_vertices(),
        data.num_edges()
    );
    println!("Signature partitions (Table I):");
    for partition in data.partitions() {
        let signature = data.interner().resolve(partition.signature());
        println!(
            "  {:?}: {} hyperedges, {} postings",
            signature,
            partition.len(),
            partition.index().num_postings()
        );
    }

    // Query hypergraph q (Fig. 1a): u0..u4 labelled A,C,A,A,B.
    let mut builder = HypergraphBuilder::new();
    for &l in &[A, C, A, A, B] {
        builder.add_vertex(Label::new(l));
    }
    builder.add_edge(vec![2, 4]).unwrap(); // {u2, u4}
    builder.add_edge(vec![0, 1, 2]).unwrap(); // {u0, u1, u2}
    builder.add_edge(vec![0, 1, 3, 4]).unwrap(); // {u0, u1, u3, u4}
    let query = builder.build().unwrap();

    let matcher = Matcher::new(&data);

    // EXPLAIN: matching order and dataflow (Fig. 5a).
    let plan = matcher.plan(&query).unwrap();
    println!("\nMatching order over query hyperedges: {:?}", plan.order());
    println!("{}", Dataflow::from_plan(&plan, &data));

    // Enumerate. The paper's two embeddings are (e1,e3,e5) and (e2,e4,e6);
    // with 0-indexed ids those are (e0,e2,e4) and (e1,e3,e5).
    let embeddings = matcher.find_all(&query).unwrap();
    println!("\nFound {} embeddings:", embeddings.len());
    for m in &embeddings {
        println!("  {m}");
    }
    assert_eq!(embeddings.len(), 2);

    // Counting with metrics (the Fig. 9 counters).
    let (count, stats) = matcher.count_with_stats(&query).unwrap();
    println!("\ncount = {count} in {:?}", stats.elapsed);
    println!(
        "scan rows = {}, candidates = {}, filtered = {}, validated = {}",
        stats.metrics.scan_rows,
        stats.metrics.candidates,
        stats.metrics.filtered,
        stats.metrics.validated
    );
}
