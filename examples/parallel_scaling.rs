//! Parallel execution: task-based scheduling, work stealing, memory bound.
//!
//! A miniature of the paper's §VII-C experiments: run one query with 1, 2,
//! 4, … threads, show the speedup, per-worker balance, and how the
//! task-based scheduler's peak memory compares to BFS-style scheduling.
//!
//! Run with: `cargo run --release --example parallel_scaling`

use hgmatch_core::engine::ParallelEngine;
use hgmatch_core::exec::BfsExecutor;
use hgmatch_core::{CountSink, MatchConfig, Matcher};
use hgmatch_datasets::{profile_by_name, sample_query, standard_settings};

fn main() {
    // A mid-sized dataset with hubs (power-law degrees) so there is real
    // work to balance.
    let profile = profile_by_name("WT").expect("profile exists");
    let data = profile.generate();
    println!(
        "Dataset {}: {} vertices, {} hyperedges",
        profile.name,
        data.num_vertices(),
        data.num_edges()
    );

    // A q3 query (3 hyperedges) sampled by random walk — guaranteed ≥ 1
    // embedding. Scan a few seeds for a reasonably heavy one.
    let setting = standard_settings()[1];
    let matcher = Matcher::new(&data);
    let (query, count) = (0..10u64)
        .filter_map(|seed| sample_query(&data, &setting, seed))
        .map(|q| {
            let c = matcher.count(&q).unwrap_or(0);
            (q, c)
        })
        .max_by_key(|(_, c)| *c)
        .expect("sampled a query");
    println!(
        "query: |E(q)| = {}, |V(q)| = {}, embeddings = {count}",
        query.num_edges(),
        query.num_vertices()
    );

    let plan = matcher.plan(&query).unwrap();
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("\nthreads  seconds   speedup  steals");
    let mut base = None;
    let mut threads = 1;
    while threads <= max_threads {
        let config = MatchConfig::parallel(threads);
        let sink = CountSink::new();
        let stats = ParallelEngine::run(&plan, &data, &sink, &config);
        assert_eq!(sink.count(), count, "thread count must not change results");
        let secs = stats.elapsed.as_secs_f64();
        let base_secs = *base.get_or_insert(secs);
        let steals: u64 = stats.workers.iter().map(|w| w.steals).sum();
        println!(
            "{threads:>7}  {secs:>8.4}  {:>6.2}x  {steals:>6}",
            base_secs / secs.max(1e-9)
        );
        threads *= 2;
    }

    // Scheduler memory comparison (Fig. 11 in miniature).
    let config = MatchConfig::parallel(max_threads.min(4));
    let sink = CountSink::new();
    let task_stats = ParallelEngine::run(&plan, &data, &sink, &config);
    let sink = CountSink::new();
    let bfs_stats = BfsExecutor::run(&plan, &data, &sink, &config);
    println!(
        "\npeak intermediate-result memory: task scheduler = {} B, BFS = {} B ({:.1}x)",
        task_stats.peak_memory_bytes,
        bfs_stats.peak_memory_bytes,
        bfs_stats.peak_memory_bytes as f64 / task_stats.peak_memory_bytes.max(1) as f64
    );

    // Load balance with vs without stealing (Fig. 12 in miniature).
    for (label, stealing) in [("with stealing", true), ("without stealing (NOSTL)", false)] {
        let config = MatchConfig::parallel(max_threads.min(4)).with_work_stealing(stealing);
        let sink = CountSink::new();
        let stats = ParallelEngine::run(&plan, &data, &sink, &config);
        let mut busy: Vec<f64> = stats.workers.iter().map(|w| w.busy.as_secs_f64()).collect();
        busy.sort_by(f64::total_cmp);
        println!(
            "{label}: busy times {:?} (max/min = {:.2})",
            busy.iter().map(|b| format!("{b:.4}")).collect::<Vec<_>>(),
            busy.last().unwrap() / busy.first().unwrap().max(1e-9)
        );
    }
}
