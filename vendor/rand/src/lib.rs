//! Vendored stand-in for `rand` (see DESIGN.md §7): a deterministic
//! xoshiro256++ generator behind the small trait surface hgmatch uses —
//! `SeedableRng::seed_from_u64`, `RngExt::random::<T>()` and
//! `RngExt::random_range(range)`. Dataset generation only needs seedable,
//! well-mixed, reproducible streams; cryptographic quality is a non-goal.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (expanded with SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Samples a value of `T` from its canonical distribution (uniform over
    /// the type's range; `[0, 1)` for floats).
    fn random<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<R: UniformRange>(&mut self, range: R) -> R::Item
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> RngExt for T {}

/// Types samplable by [`RngExt::random`].
pub trait Sample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Sample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait UniformRange {
    /// Element type of the range.
    type Item;
    /// Draws one value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Item;
}

/// Unbiased integer sampling from `[0, bound)` via Lemire's multiply-shift
/// rejection method.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    // Reject the low tail that would bias small values; for power-of-two
    // bounds the threshold is 0 and the first draw is always accepted.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let lo = x.wrapping_mul(bound);
        if lo >= threshold {
            return ((x as u128 * bound as u128) >> 64) as u64;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for Range<$t> {
            type Item = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl UniformRange for RangeInclusive<$t> {
            type Item = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as u64) - (start as u64) + 1;
                // span == 0 only for the full u64 domain, unused here.
                start + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, usize);

impl UniformRange for Range<f64> {
    type Item = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(5usize..=5);
            assert_eq!(y, 5);
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5u32..5);
    }
}
