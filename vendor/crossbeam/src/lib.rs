//! Vendored stand-in for `crossbeam` (see DESIGN.md §7), providing the
//! `deque` module the parallel engine schedules through: per-worker deques
//! with LIFO owner access and batch stealing from the cold end, plus a
//! global injector.
//!
//! Semantics match `crossbeam-deque`'s `Worker`/`Stealer`/`Injector` for
//! the operations hgmatch uses; the implementation is a mutex-protected
//! ring buffer rather than a lock-free Chase–Lev deque. The owner and a
//! thief contend on one short critical section per operation, which is
//! adequate at the engine's task granularity (tasks split until they carry
//! hundreds of scan rows or one expansion); swapping in real crossbeam
//! requires no source change.

pub mod deque {
    use parking_lot::Mutex;
    use std::collections::VecDeque;
    use std::sync::Arc;

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The source was empty.
        Empty,
        /// One task was stolen (more may have been moved to the destination).
        Success(T),
        /// The operation lost a race and may be retried.
        Retry,
    }

    /// A worker-owned deque. The owner pushes and pops at the hot (back)
    /// end; thieves steal batches from the cold (front) end.
    #[derive(Debug)]
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a deque whose owner operates in LIFO order.
        pub fn new_lifo() -> Self {
            Self {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task at the hot end.
        pub fn push(&self, task: T) {
            self.inner.lock().push_back(task);
        }

        /// Pops the most recently pushed task.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().pop_back()
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.inner.lock().len()
        }

        /// Creates a stealer handle for this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    /// A handle that steals from another worker's deque.
    #[derive(Debug)]
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals up to half of the victim's tasks from the cold end, moving
        /// them into `dest` and returning one of them directly.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut src = self.inner.lock();
            let n = src.len();
            if n == 0 {
                return Steal::Empty;
            }
            // Oldest half (at least one), oldest-first into the destination.
            let take = (n / 2).max(1);
            let first = src.pop_front().expect("nonempty");
            if take > 1 {
                let mut dst = dest.inner.lock();
                for _ in 1..take {
                    dst.push_back(src.pop_front().expect("counted"));
                }
            }
            Steal::Success(first)
        }
    }

    /// A global FIFO queue feeding all workers.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Self {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a task.
        pub fn push(&self, task: T) {
            self.inner.lock().push_back(task);
        }

        /// Whether the injector is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().is_empty()
        }

        /// Moves up to half of the queued tasks into `dest`, returning one.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut src = self.inner.lock();
            let n = src.len();
            if n == 0 {
                return Steal::Empty;
            }
            let take = (n / 2).max(1);
            let first = src.pop_front().expect("nonempty");
            if take > 1 {
                let mut dst = dest.inner.lock();
                for _ in 1..take {
                    dst.push_back(src.pop_front().expect("counted"));
                }
            }
            Steal::Success(first)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn owner_is_lifo() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn stealer_takes_oldest_half() {
        let victim = Worker::new_lifo();
        for i in 0..8 {
            victim.push(i);
        }
        let thief = Worker::new_lifo();
        // Oldest task (0) comes back; 1..4 land in the thief's deque.
        match victim.stealer().steal_batch_and_pop(&thief) {
            Steal::Success(t) => assert_eq!(t, 0),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(victim.len(), 4);
        assert_eq!(thief.len(), 3);
        // Thief drains its batch LIFO: newest of the batch first.
        assert_eq!(thief.pop(), Some(3));
    }

    #[test]
    fn empty_steal_reports_empty() {
        let w: Worker<u32> = Worker::new_lifo();
        let d = Worker::new_lifo();
        assert_eq!(w.stealer().steal_batch_and_pop(&d), Steal::Empty);
        let inj: Injector<u32> = Injector::new();
        assert_eq!(inj.steal_batch_and_pop(&d), Steal::Empty);
    }

    #[test]
    fn injector_is_fifo_under_steal() {
        let inj = Injector::new();
        inj.push(10);
        inj.push(20);
        let d = Worker::new_lifo();
        match inj.steal_batch_and_pop(&d) {
            Steal::Success(t) => assert_eq!(t, 10),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn concurrent_steals_preserve_every_task() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let victim = std::sync::Arc::new(Worker::new_lifo());
        for i in 0..10_000u64 {
            victim.push(i);
        }
        let sum = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let stealer = victim.stealer();
                let sum = &sum;
                s.spawn(move || {
                    let local = Worker::new_lifo();
                    loop {
                        match stealer.steal_batch_and_pop(&local) {
                            Steal::Success(t) => {
                                let mut acc = t;
                                while let Some(x) = local.pop() {
                                    acc += x;
                                }
                                sum.fetch_add(acc, Ordering::Relaxed);
                            }
                            Steal::Empty => break,
                            Steal::Retry => continue,
                        }
                    }
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10_000 * 9_999 / 2);
    }
}
