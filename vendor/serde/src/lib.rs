//! Vendored stand-in for `serde`'s derive macros.
//!
//! This workspace builds without network access to a crates registry, so the
//! handful of external dependencies it uses are vendored as minimal local
//! crates (see DESIGN.md §7). The repository only *decorates* types with
//! `#[derive(Serialize, Deserialize)]` — nothing serialises through serde's
//! data model at runtime (the on-disk formats in `hgmatch_hypergraph::io`
//! and the bench JSON reports are hand-written) — so the derives expand to
//! nothing. Swapping back to real serde is a one-line change in the
//! workspace manifest and requires no source edits.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
