//! Vendored stand-in for the `bytes` crate (see DESIGN.md §7): exactly the
//! API surface `hgmatch_hypergraph::io` uses — `BytesMut` for building the
//! binary format, `Bytes` as the frozen result, `Buf` for cursor-style
//! decoding over `&[u8]`, and `BufMut` for the append side.

use std::ops::Deref;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: std::sync::Arc<[u8]>,
}

impl Bytes {
    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Empties the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read side: a cursor over a shrinking byte slice.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Skips `n` bytes.
    ///
    /// # Panics
    /// Panics if fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Reads a little-endian `u64`, advancing the cursor.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`, advancing the cursor.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u16`, advancing the cursor.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads one byte, advancing the cursor.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }

    fn advance(&mut self, n: usize) {
        assert!(self.len() >= n, "buffer underflow");
        *self = &self[n..];
    }
}

/// Write side: append primitives.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32_le() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u8(7);
        let frozen = b.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 5);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u8(), 7);
        assert!(!cursor.has_remaining());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32_le();
    }
}
