//! Vendored stand-in for `parking_lot` (see DESIGN.md §7): thin facades over
//! `std::sync` primitives with parking_lot's ergonomics — `lock()` returns
//! the guard directly and poisoning is transparently ignored (a panic while
//! holding the lock does not wedge every later user).

use std::sync::{self, TryLockError};

/// Mutual exclusion with non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Reader-writer lock with non-poisoning accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
