//! Vendored stand-in for `criterion` (see DESIGN.md §7): a wall-clock
//! micro-benchmark harness exposing the criterion API the `hgmatch-bench`
//! benches use — groups, `bench_function`/`bench_with_input`, `BenchmarkId`,
//! `sample_size`, `measurement_time` and the `criterion_group!`/
//! `criterion_main!` macros.
//!
//! Methodology: each benchmark is calibrated to ~one sample's worth of
//! iterations, then `sample_size` samples are timed and the per-iteration
//! median/mean/min are reported. No statistical regression analysis is
//! performed. Besides the stdout table, results are appended as JSON to the
//! path in `$HGMATCH_BENCH_JSON` (if set), which is how the committed
//! `BENCH_*.json` baselines are produced.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id (`group/function/param`).
    pub name: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// One recorded scalar metric — a non-timing number a bench wants in the
/// JSON report next to its timing rows (e.g. bytes/posting of a container).
#[derive(Debug, Clone)]
pub struct Metric {
    /// Metric id, same `group/name` convention as benchmark ids.
    pub name: String,
    /// The value.
    pub value: f64,
    /// Unit label (reported verbatim, e.g. `"B/posting"`).
    pub unit: String,
}

/// Benchmark identifier, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
    results: Vec<Measurement>,
    metrics: Vec<Metric>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 20,
            default_measurement_time: Duration::from_millis(600),
            results: Vec::new(),
            metrics: Vec::new(),
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            criterion: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let (sample_size, measurement_time) =
            (self.default_sample_size, self.default_measurement_time);
        self.run_one(id.id, sample_size, measurement_time, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        name: String,
        sample_size: usize,
        measurement_time: Duration,
        mut f: F,
    ) {
        // Calibrate: grow the iteration count until one sample is ≥ the
        // per-sample budget (or a floor of 1 iteration for slow routines).
        let budget = measurement_time.div_f64(sample_size.max(1) as f64);
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= budget || b.elapsed >= Duration::from_millis(250) || iters >= 1 << 30 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                16.0
            } else {
                (budget.as_secs_f64() / b.elapsed.as_secs_f64()).clamp(1.5, 16.0)
            };
            iters = ((iters as f64 * grow).ceil() as u64).max(iters + 1);
        }

        let mut per_iter_ns: Vec<f64> = (0..sample_size.max(1))
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter_ns.sort_by(f64::total_cmp);
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        let min = per_iter_ns[0];

        println!(
            "bench {name:<50} median {:>12}  mean {:>12}  ({} samples × {iters} iters)",
            format_ns(median),
            format_ns(mean),
            per_iter_ns.len(),
        );
        self.results.push(Measurement {
            name,
            median_ns: median,
            mean_ns: mean,
            min_ns: min,
            samples: per_iter_ns.len(),
            iters_per_sample: iters,
        });
    }

    /// All measurements taken so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }

    /// Records a scalar (non-timing) metric into the JSON report's
    /// `"metrics"` table, e.g. a memory measurement taken alongside the
    /// timing rows. Also echoed to stdout.
    pub fn record_metric(&mut self, name: impl Into<String>, value: f64, unit: impl Into<String>) {
        let m = Metric {
            name: name.into(),
            value,
            unit: unit.into(),
        };
        println!("metric {:<50} {:>14.4} {}", m.name, m.value, m.unit);
        self.metrics.push(m);
    }

    /// Writes the JSON report if `$HGMATCH_BENCH_JSON` is set. Called by
    /// [`criterion_main!`] after all groups run.
    pub fn final_report(&self) {
        let Ok(path) = std::env::var("HGMATCH_BENCH_JSON") else {
            return;
        };
        let mut out = String::from("{\n  \"benchmarks\": [\n");
        for (i, m) in self.results.iter().enumerate() {
            let comma = if i + 1 == self.results.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"name\": {:?}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \
                 \"min_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}{comma}\n",
                m.name, m.median_ns, m.mean_ns, m.min_ns, m.samples, m.iters_per_sample
            ));
        }
        if self.metrics.is_empty() {
            out.push_str("  ]\n}\n");
        } else {
            out.push_str("  ],\n  \"metrics\": [\n");
            for (i, m) in self.metrics.iter().enumerate() {
                let comma = if i + 1 == self.metrics.len() { "" } else { "," };
                out.push_str(&format!(
                    "    {{\"name\": {:?}, \"value\": {:.4}, \"unit\": {:?}}}{comma}\n",
                    m.name, m.value, m.unit
                ));
            }
            out.push_str("  ]\n}\n");
        }
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(out.as_bytes())) {
            Ok(()) => eprintln!("wrote benchmark report to {path}"),
            Err(e) => eprintln!("failed to write benchmark report to {path}: {e}"),
        }
    }
}

/// A group of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.id);
        self.criterion
            .run_one(name, self.sample_size, self.measurement_time, f);
        self
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        self.criterion
            .run_one(name, self.sample_size, self.measurement_time, |b| {
                f(b, input)
            });
        self
    }

    /// Ends the group (stdout spacing only).
    pub fn finish(&mut self) {
        println!();
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main`, running each group and emitting the final report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion {
            default_sample_size: 5,
            default_measurement_time: Duration::from_millis(20),
            results: Vec::new(),
            metrics: Vec::new(),
        };
        c.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        let m = &c.measurements()[0];
        assert_eq!(m.name, "spin");
        assert!(m.median_ns > 0.0);
        assert!(m.samples == 5);
    }

    #[test]
    fn group_ids_compose() {
        let mut c = Criterion {
            default_sample_size: 3,
            default_measurement_time: Duration::from_millis(10),
            results: Vec::new(),
            metrics: Vec::new(),
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(3).measurement_time(Duration::from_millis(10));
        g.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &x| {
            b.iter(|| x * 2);
        });
        g.finish();
        assert_eq!(c.measurements()[0].name, "g/f/7");
    }
}
