//! Vendored stand-in for `proptest` (see DESIGN.md §7): a deterministic
//! property-testing harness exposing the subset of proptest's API the test
//! suites use — the `proptest!` macro, range/collection/tuple strategies,
//! `prop_map`/`prop_flat_map`, `prop_assert*`, and `ProptestConfig`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its case index and the fixed
//!   base seed, which reproduce the failure exactly (generation is
//!   deterministic), but inputs are not minimised.
//! * **Deterministic by default.** Every test function runs the same seed
//!   sequence on every run, so CI results are stable. Set
//!   `PROPTEST_BASE_SEED` to explore a different part of the space.

use std::fmt;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Runner configuration (subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Test-case failure carrying the assertion message.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG driving generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic RNG for `(test name, case index)`.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let base = std::env::var("PROPTEST_BASE_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x4867_4D61_7463_6821); // "HGMatch!"
        let mut hash = base;
        for b in test_name.bytes() {
            hash = (hash ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            inner: StdRng::seed_from_u64(hash ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.inner.next_u64() % bound
        }
    }

    /// Access to the underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// A value generator. (Proptest's `Strategy` also carries shrinking; this
/// stand-in only generates.)
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Collection size: either exact or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }

    /// `Vec` of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` of values from `element`; the target cardinality is drawn
    /// from `size` and approached by rejection, so a small value domain
    /// yields the largest set it can support.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 8 + 16 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Items used by macro expansions; not public API.
pub mod test_runner {
    pub use crate::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
}

/// Asserts a condition inside a property, failing the case (not panicking)
/// with location and optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} at {}:{}",
                format_args!($($fmt)*),
                file!(),
                line!()
            )));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format_args!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Declares property tests. Mirrors proptest's surface grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // With a leading config attribute.
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__run_cases(stringify!($name), &$config, |__rng| {
                    $(let $pat = $crate::Strategy::generate(&$strategy, __rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
    // Without a config attribute: default config.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strategy),+) $body
            )*
        }
    };
}

/// Macro support: runs `property` for each case of `config`, panicking with
/// a reproducible report on the first failure.
pub fn __run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut property: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    for case in 0..config.cases {
        let mut rng = TestRng::for_case(test_name, case);
        if let Err(err) = property(&mut rng) {
            panic!(
                "property `{test_name}` failed at case {case}/{}: {err} \
                 (deterministic; rerun reproduces it, PROPTEST_BASE_SEED varies the stream)",
                config.cases
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{collection, TestRng};

    proptest! {
        #[test]
        fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn vec_lengths_respect_range(v in collection::vec(0u8..10, 3usize..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7, "len {}", v.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn tuples_and_flat_map(pair in (0u32..10).prop_flat_map(|n| (0u32..n + 1, 10u32..20))) {
            let (a, b) = pair;
            prop_assert!(a <= 10 && (10..20).contains(&b));
        }
    }

    #[test]
    fn btree_set_saturates_small_domains() {
        let strat = collection::btree_set(0u32..3, 0usize..10);
        let mut rng = TestRng::for_case("saturate", 0);
        for _ in 0..50 {
            let s = super::Strategy::generate(&strat, &mut rng);
            assert!(s.len() <= 3);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        super::__run_cases("always_fails", &ProptestConfig::with_cases(3), |_| {
            Err(super::TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = collection::vec(0u32..1000, 0usize..50);
        let a: Vec<_> = (0..5)
            .map(|c| super::Strategy::generate(&strat, &mut TestRng::for_case("det", c)))
            .collect();
        let b: Vec<_> = (0..5)
            .map(|c| super::Strategy::generate(&strat, &mut TestRng::for_case("det", c)))
            .collect();
        assert_eq!(a, b);
    }
}
