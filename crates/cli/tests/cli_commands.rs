//! In-process tests of every CLI subcommand.

use std::path::PathBuf;

use hgmatch_cli::run;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("hgmatch-cli-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Writes the paper's Fig. 1 data and query files; returns their paths.
fn write_paper_files(dir: &TempDir) -> (String, String, String, String) {
    let dl = dir.path("data.labels");
    let de = dir.path("data.edges");
    let ql = dir.path("query.labels");
    let qe = dir.path("query.edges");
    std::fs::write(&dl, "0\n2\n0\n0\n1\n2\n0\n").unwrap();
    std::fs::write(&de, "2,4\n4,6\n0,1,2\n3,5,6\n0,1,4,6\n2,3,4,5\n").unwrap();
    std::fs::write(&ql, "0\n2\n0\n0\n1\n").unwrap();
    std::fs::write(&qe, "2,4\n0,1,2\n0,1,3,4\n").unwrap();
    (dl, de, ql, qe)
}

#[test]
fn unknown_command_errors() {
    assert!(run(&args(&["frobnicate"])).is_err());
    assert!(run(&[]).is_err());
}

#[test]
fn generate_and_stats_roundtrip() {
    let dir = TempDir::new("gen");
    let labels = dir.path("ch.labels");
    let edges = dir.path("ch.edges");
    run(&args(&["generate", "CH", &labels, &edges])).expect("generate works");
    run(&args(&["stats", &labels, &edges])).expect("stats works");
    assert!(std::fs::metadata(&labels).unwrap().len() > 0);
    assert!(std::fs::metadata(&edges).unwrap().len() > 0);
}

/// `stats` reports the per-partition index memory breakdown by posting
/// representation, in both text and `--json` form. The assertions stay
/// representation-agnostic (postings totals, not repr counts) so the CI
/// `HGMATCH_FORCE_REPR` matrix can replay them unchanged.
#[test]
fn stats_reports_index_memory_breakdown() {
    let dir = TempDir::new("stats-breakdown");
    let (dl, de, _, _) = write_paper_files(&dir);
    run(&args(&["stats", &dl, &de])).expect("stats works");
    run(&args(&["stats", &dl, &de, "--json"])).expect("stats --json works");
    assert!(run(&args(&["stats", &dl, &de, "--frob"])).is_err());

    let text = hgmatch_cli::stats_report(&dl, &de, false).unwrap();
    assert!(text.contains("index memory by representation"));
    assert!(text.contains("part\trows\tlist\tbitmap\tcompressed\tindex_bytes\tB/posting"));
    let total_line = text
        .lines()
        .find(|l| l.starts_with("total\t"))
        .expect("aggregate row present");
    // The paper graph has 6 edges and 18 incidences; the three per-repr
    // posting counts in the aggregate row must sum to 18 whichever
    // representations were chosen (or forced).
    let postings_sum: usize = total_line
        .split('\t')
        .skip(2)
        .take(3)
        .map(|cell| cell.split('/').nth(1).unwrap().parse::<usize>().unwrap())
        .sum();
    assert_eq!(postings_sum, 18);
    assert!(total_line.starts_with("total\t6\t"), "{total_line}");

    let json = hgmatch_cli::stats_report(&dl, &de, true).unwrap();
    for needle in [
        "\"num_vertices\": 7",
        "\"num_edges\": 6",
        "\"partitions\": [",
        "\"totals\": {",
        "\"bytes_per_posting\": ",
        "\"compressed\": {\"keys\": ",
    ] {
        assert!(json.contains(needle), "missing {needle} in {json}");
    }
    // Deterministic: repeated runs are byte-identical.
    assert_eq!(json, hgmatch_cli::stats_report(&dl, &de, true).unwrap());
}

#[test]
fn generate_rejects_unknown_profile() {
    let dir = TempDir::new("badprofile");
    let err = run(&args(&["generate", "NOPE", &dir.path("a"), &dir.path("b")])).unwrap_err();
    assert!(err.contains("unknown profile"));
}

#[test]
fn match_counts_paper_example() {
    let dir = TempDir::new("match");
    let (dl, de, ql, qe) = write_paper_files(&dir);
    run(&args(&["match", &dl, &de, &ql, &qe])).expect("match works");
    run(&args(&["match", &dl, &de, &ql, &qe, "--threads", "2"])).expect("parallel match");
    run(&args(&["match", &dl, &de, &ql, &qe, "--print", "5"])).expect("print mode");
    run(&args(&["match", &dl, &de, &ql, &qe, "--timeout", "10"])).expect("timeout flag");
}

#[test]
fn match_rejects_bad_flags() {
    let dir = TempDir::new("badflags");
    let (dl, de, ql, qe) = write_paper_files(&dir);
    assert!(run(&args(&["match", &dl, &de, &ql, &qe, "--bogus"])).is_err());
    assert!(run(&args(&["match", &dl, &de, &ql, &qe, "--threads"])).is_err());
    assert!(run(&args(&["match", &dl, &de])).is_err());
}

#[test]
fn explain_prints_dataflow() {
    let dir = TempDir::new("explain");
    let (dl, de, ql, qe) = write_paper_files(&dir);
    run(&args(&["explain", &dl, &de, &ql, &qe])).expect("explain works");
    run(&args(&["explain", &dl, &de, &ql, &qe, "--json"])).expect("explain --json works");
    assert!(run(&args(&["explain", &dl, &de, &ql, &qe, "--frob"])).is_err());
}

/// Path of a committed fixture file.
fn fixture(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

/// `explain` output is deterministic and golden-filed: the committed
/// planner-adversary fixture (hub-heavy {A,B} start vs. a selective {C,D}
/// start) must produce byte-identical text and JSON reports, so CI can
/// diff them. The fixture is also the shape where the cost-based order
/// diverges from greedy — the goldens pin both orders.
#[test]
fn explain_matches_golden_files() {
    let report = |json| {
        hgmatch_cli::explain_report(
            &fixture("plan.labels"),
            &fixture("plan.edges"),
            &fixture("plan_query.labels"),
            &fixture("plan_query.edges"),
            json,
        )
        .expect("fixture explains")
    };
    let golden_txt = std::fs::read_to_string(fixture("explain.golden.txt")).unwrap();
    let golden_json = std::fs::read_to_string(fixture("explain.golden.json")).unwrap();
    assert_eq!(report(false), golden_txt, "text report drifted from golden");
    assert_eq!(report(true), golden_json, "json report drifted from golden");
    // Repeated runs are byte-identical (no hash-iteration leaks).
    assert_eq!(report(true), report(true));
}

/// `explain --observed` executes the chosen order once (sequential
/// reference run) and reports per-position observed-vs-estimated candidate
/// counts as byte-deterministic JSON, golden-filed like the static
/// reports. On the committed fixture the cost model is exact, so every
/// ratio pins to 1.0000 — a drift in either the planner or the per-step
/// metrics attribution shows up as a golden diff.
#[test]
fn explain_observed_matches_golden_file() {
    let report = || {
        hgmatch_cli::explain_observed_report(
            &fixture("plan.labels"),
            &fixture("plan.edges"),
            &fixture("plan_query.labels"),
            &fixture("plan_query.edges"),
        )
        .expect("fixture explains")
    };
    let golden = std::fs::read_to_string(fixture("explain_observed.golden.json")).unwrap();
    assert_eq!(report(), golden, "observed report drifted from golden");
    // Repeated runs are byte-identical (the run is sequential: no
    // worker-interleaving leaks into the counts).
    assert_eq!(report(), report());

    // The flag wires through the CLI, and combining the two JSON modes is
    // rejected rather than picking one silently.
    let f = [
        fixture("plan.labels"),
        fixture("plan.edges"),
        fixture("plan_query.labels"),
        fixture("plan_query.edges"),
    ];
    run(&args(&[
        "explain",
        &f[0],
        &f[1],
        &f[2],
        &f[3],
        "--observed",
    ]))
    .expect("explain --observed works");
    let err = run(&args(&[
        "explain",
        &f[0],
        &f[1],
        &f[2],
        &f[3],
        "--observed",
        "--json",
    ]))
    .unwrap_err();
    assert!(err.contains("mutually exclusive"), "{err}");
}

#[test]
fn sample_query_emits_files() {
    let dir = TempDir::new("sample");
    let labels = dir.path("cp.labels");
    let edges = dir.path("cp.edges");
    run(&args(&["generate", "CP", &labels, &edges])).unwrap();
    let ql = dir.path("q.labels");
    let qe = dir.path("q.edges");
    run(&args(&[
        "sample-query",
        &labels,
        &edges,
        "q2",
        "5",
        &ql,
        &qe,
    ]))
    .expect("sample works");
    // The sampled query must itself be loadable and matchable.
    run(&args(&["match", &labels, &edges, &ql, &qe])).expect("sampled query matches");
    // Unknown setting is rejected.
    assert!(run(&args(&[
        "sample-query",
        &labels,
        &edges,
        "q9",
        "5",
        &ql,
        &qe
    ]))
    .is_err());
}

#[test]
fn missing_files_produce_errors_not_panics() {
    let err = run(&args(&["stats", "/nonexistent/a", "/nonexistent/b"])).unwrap_err();
    assert!(err.contains("loading"));
}

/// Writes a query-list file referencing the paper query twice plus a
/// single-edge query, exercising the shared pool and the plan cache.
fn write_query_list(dir: &TempDir) -> (String, String, String) {
    let (dl, de, ql, qe) = write_paper_files(dir);
    let sl = dir.path("single.labels");
    let se = dir.path("single.edges");
    std::fs::write(&sl, "0\n1\n").unwrap();
    std::fs::write(&se, "0,1\n").unwrap();
    let list = dir.path("queries.txt");
    std::fs::write(
        &list,
        format!("# paper query twice, then a single edge\n{ql} {qe}\n{ql} {qe}\n\n{sl} {se}\n"),
    )
    .unwrap();
    (dl, de, list)
}

#[test]
fn batch_serves_query_list_on_shared_pool() {
    let dir = TempDir::new("batch");
    let (dl, de, list) = write_query_list(&dir);
    run(&args(&["batch", &dl, &de, &list, "--threads", "2"])).expect("batch works");
    run(&args(&[
        "batch",
        &dl,
        &de,
        &list,
        "--threads",
        "2",
        "--repeat",
        "3",
        "--max-results",
        "1",
        "--timeout",
        "30",
    ]))
    .expect("batch with limits works");
}

/// `--agg` selects the per-query aggregation mode (DESIGN.md §18.2) on
/// both serving subcommands; malformed specs are flag errors, not panics.
#[test]
fn batch_and_serve_accept_agg_modes() {
    let dir = TempDir::new("agg");
    let (dl, de, list) = write_query_list(&dir);
    for agg in [
        "count",
        "materialize",
        "topk:2",
        "topk:3:min_edge",
        "sample:2:7",
    ] {
        run(&args(&["batch", &dl, &de, &list, "--agg", agg]))
            .unwrap_or_else(|e| panic!("batch --agg {agg}: {e}"));
    }
    run(&args(&[
        "serve", &dl, &de, "--input", &list, "--agg", "topk:1",
    ]))
    .expect("serve --agg works");
    for bad in [
        "median",
        "topk",
        "topk:0",
        "topk:2:bogus",
        "sample",
        "sample:0",
        "sample:2:x",
        "count:1",
    ] {
        let err = run(&args(&["batch", &dl, &de, &list, "--agg", bad])).unwrap_err();
        assert!(err.contains("--agg"), "{bad}: {err}");
    }
    assert!(run(&args(&["batch", &dl, &de, &list, "--agg"])).is_err());
}

#[test]
fn serve_streams_from_input_file() {
    let dir = TempDir::new("serve");
    let (dl, de, list) = write_query_list(&dir);
    run(&args(&[
        "serve",
        &dl,
        &de,
        "--input",
        &list,
        "--threads",
        "2",
        "--quantum",
        "8",
    ]))
    .expect("serve works");
}

#[test]
fn bad_timeouts_error_instead_of_panicking() {
    let dir = TempDir::new("badtimeout");
    let (dl, de, ql, qe) = write_paper_files(&dir);
    for bad in ["-1", "nan", "inf", "1e300"] {
        let err = run(&args(&["match", &dl, &de, &ql, &qe, "--timeout", bad])).unwrap_err();
        assert!(err.contains("--timeout"), "{bad}: {err}");
    }
    let list = dir.path("q.txt");
    std::fs::write(&list, format!("{ql} {qe}\n")).unwrap();
    assert!(run(&args(&["batch", &dl, &de, &list, "--timeout", "-5"])).is_err());
}

#[test]
fn mode_specific_flags_are_rejected_crosswise() {
    let dir = TempDir::new("modeflags");
    let (dl, de, ql, qe) = write_paper_files(&dir);
    let list = dir.path("q.txt");
    std::fs::write(&list, format!("{ql} {qe}\n")).unwrap();
    // serve does not repeat; batch does not take --input.
    let err = run(&args(&[
        "serve", &dl, &de, "--input", &list, "--repeat", "3",
    ]))
    .unwrap_err();
    assert!(err.contains("--repeat"), "{err}");
    let err = run(&args(&["batch", &dl, &de, &list, "--input", &list])).unwrap_err();
    assert!(err.contains("--input"), "{err}");
}

#[test]
fn serve_and_batch_reject_bad_specs() {
    let dir = TempDir::new("badserve");
    let (dl, de, _, _) = write_paper_files(&dir);
    let list = dir.path("bad.txt");
    std::fs::write(&list, "only-one-token\n").unwrap();
    assert!(run(&args(&["batch", &dl, &de, &list])).is_err());
    assert!(run(&args(&["serve", &dl, &de, "--input", &list])).is_err());
    let empty = dir.path("empty.txt");
    std::fs::write(&empty, "# nothing\n").unwrap();
    assert!(run(&args(&["batch", &dl, &de, &empty])).is_err());
    assert!(run(&args(&["batch", &dl, &de, &list, "--bogus"])).is_err());
}

#[test]
fn empty_and_overlong_queries_get_line_numbered_diagnostics() {
    let dir = TempDir::new("shapecheck");
    let (dl, de, ql, qe) = write_paper_files(&dir);

    // A query with zero hyperedges: valid files, empty edge list.
    let el = dir.path("noedges.labels");
    let ee = dir.path("noedges.edges");
    std::fs::write(&el, "0\n").unwrap();
    std::fs::write(&ee, "").unwrap();

    // A query past the engine's 64-hyperedge limit: a 65-edge path.
    let bl = dir.path("big.labels");
    let be = dir.path("big.edges");
    std::fs::write(&bl, "0\n".repeat(66)).unwrap();
    let path: String = (0..65).map(|i| format!("{i},{}\n", i + 1)).collect();
    std::fs::write(&be, path).unwrap();

    let list = dir.path("mixed.txt");
    std::fs::write(&list, format!("{ql} {qe}\n{el} {ee}\n")).unwrap();
    let err = run(&args(&["batch", &dl, &de, &list])).unwrap_err();
    assert!(
        err.contains("line 2") && err.contains("no hyperedges"),
        "empty query must get a line-numbered diagnostic: {err}"
    );

    std::fs::write(&list, format!("# header\n{ql} {qe}\n\n{bl} {be}\n")).unwrap();
    let err = run(&args(&["batch", &dl, &de, &list])).unwrap_err();
    assert!(
        err.contains("line 4") && err.contains("65"),
        "over-long query must get a line-numbered diagnostic: {err}"
    );
    let err = run(&args(&["serve", &dl, &de, "--input", &list])).unwrap_err();
    assert!(
        err.contains("line 4") && err.contains("65"),
        "serve must reject the same way: {err}"
    );
}

/// Writes a small update stream against the paper data: delete one edge,
/// re-insert it, add a vertex and a fresh edge.
fn write_update_stream_file(dir: &TempDir) -> String {
    let stream = dir.path("stream.txt");
    std::fs::write(
        &stream,
        "# delete + reinsert the {A,B} edge, then grow the graph\n\
         - 2 4\n\
         + 2 4\n\
         v 1\n\
         + 0 7\n\
         + 3 6\n",
    )
    .unwrap();
    stream
}

#[test]
fn update_applies_streams_in_batches() {
    let dir = TempDir::new("update");
    let (dl, de, _, _) = write_paper_files(&dir);
    let stream = write_update_stream_file(&dir);
    let out = dir.path("out.hgsnap");
    run(&args(&[
        "update", &dl, &de, &stream, "--batch", "2", "--save", &out,
    ]))
    .expect("update works");
    // The saved snapshot reflects the stream: 8 vertices, 8 edges.
    let saved = hgmatch_hypergraph::io::load_snapshot(std::path::Path::new(&out)).unwrap();
    assert_eq!(saved.num_vertices(), 8);
    assert_eq!(saved.num_edges(), 8);
}

/// `snapshot save` then `snapshot load` round-trips the paper graph, and
/// the saved file equals what `io::encode_snapshot` produces for the same
/// build — the CLI path adds nothing to the bytes.
#[test]
fn snapshot_save_then_load_roundtrips() {
    let dir = TempDir::new("snapshot");
    let (dl, de, _, _) = write_paper_files(&dir);
    let out = dir.path("paper.hgsnap");
    run(&args(&["snapshot", "save", &dl, &de, &out])).expect("snapshot save works");
    run(&args(&["snapshot", "load", &out])).expect("snapshot load works");

    let direct =
        hgmatch_hypergraph::io::load_text(std::path::Path::new(&dl), std::path::Path::new(&de))
            .unwrap();
    let restored = hgmatch_hypergraph::io::load_snapshot(std::path::Path::new(&out)).unwrap();
    assert_eq!(restored, direct);
    assert_eq!(
        std::fs::read(&out).unwrap(),
        &*hgmatch_hypergraph::io::encode_snapshot(&direct),
    );
}

#[test]
fn snapshot_rejects_bad_inputs() {
    let dir = TempDir::new("snapshot-bad");
    let (dl, de, _, _) = write_paper_files(&dir);
    assert!(run(&args(&["snapshot"])).is_err());
    assert!(run(&args(&["snapshot", "bogus"])).is_err());
    assert!(run(&args(&["snapshot", "save", &dl, &de])).is_err());
    assert!(run(&args(&["snapshot", "load", &dir.path("missing.hgsnap")])).is_err());
    // A corrupt file is a typed decode error, not a panic.
    let junk = dir.path("junk.hgsnap");
    std::fs::write(&junk, b"not a snapshot").unwrap();
    assert!(run(&args(&["snapshot", "load", &junk])).is_err());
}

#[test]
fn update_serves_standing_queries_with_delta_check() {
    let dir = TempDir::new("update-queries");
    let (dl, de, list) = write_query_list(&dir);
    let stream = write_update_stream_file(&dir);
    run(&args(&[
        "update",
        &dl,
        &de,
        &stream,
        "--batch",
        "1",
        "--queries",
        &list,
        "--delta",
        "--threads",
        "2",
    ]))
    .expect("update with standing queries works");
}

#[test]
fn update_rejects_bad_inputs() {
    let dir = TempDir::new("update-bad");
    let (dl, de, _, _) = write_paper_files(&dir);
    let stream = write_update_stream_file(&dir);
    assert!(run(&args(&["update", &dl, &de])).is_err());
    assert!(run(&args(&["update", &dl, &de, &stream, "--bogus"])).is_err());
    assert!(run(&args(&["update", &dl, &de, &stream, "--batch", "0"])).is_err());
    let bad = dir.path("bad-stream.txt");
    std::fs::write(&bad, "? 1 2\n").unwrap();
    assert!(run(&args(&["update", &dl, &de, &bad])).is_err());
    let empty = dir.path("empty-stream.txt");
    std::fs::write(&empty, "# nothing\n").unwrap();
    assert!(run(&args(&["update", &dl, &de, &empty])).is_err());
}

#[test]
fn gen_stream_round_trips_through_update() {
    let dir = TempDir::new("gen-stream");
    let (dl, de, _, _) = write_paper_files(&dir);
    let stream = dir.path("gen.txt");
    run(&args(&["gen-stream", &dl, &de, "40", "0.7", "9", &stream])).expect("gen-stream works");
    let ops = hgmatch_hypergraph::dynamic::parse_update_stream(
        &std::fs::read_to_string(&stream).unwrap(),
    )
    .unwrap();
    assert_eq!(ops.len(), 40);
    run(&args(&["update", &dl, &de, &stream, "--batch", "10"])).expect("replay works");
    assert!(run(&args(&["gen-stream", &dl, &de, "10", "2.0", "9", &stream])).is_err());
    assert!(run(&args(&["gen-stream", &dl, &de])).is_err());
}

/// `listen` binds the HTTP front door and drains on stdin EOF. Runs the
/// real binary with stdin closed (the in-process `run()` would block on
/// the test harness's inherited stdin).
#[test]
fn listen_binds_and_drains_on_stdin_eof() {
    let dir = TempDir::new("listen");
    let (dl, de, _, _) = write_paper_files(&dir);
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_hgmatch"))
        .args([
            "listen",
            &dl,
            &de,
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "1",
            "--http-threads",
            "1",
        ])
        .stdin(std::process::Stdio::null())
        .output()
        .expect("spawn hgmatch listen");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("listening on http://127.0.0.1:"),
        "{stdout}"
    );
    assert!(stdout.contains("drained: 0 admitted"), "{stdout}");
}

/// `listen --snapshot` serves straight from an HGMB v2 snapshot file.
#[test]
fn listen_serves_from_snapshot_file() {
    let dir = TempDir::new("listen-snapshot");
    let (dl, de, _, _) = write_paper_files(&dir);
    let snap = dir.path("data.hgsnap");
    run(&args(&["snapshot", "save", &dl, &de, &snap])).expect("snapshot save works");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_hgmatch"))
        .args([
            "listen",
            "--snapshot",
            &snap,
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "1",
            "--http-threads",
            "1",
        ])
        .stdin(std::process::Stdio::null())
        .output()
        .expect("spawn hgmatch listen --snapshot");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("listening on http://127.0.0.1:"),
        "{stdout}"
    );
}

/// `HGMATCH_SHARDS` swaps the update path onto the sharded data plane;
/// the saved snapshot is byte-identical to the monolithic run's. Spawns
/// the real binary so the env var can't leak into sibling tests.
#[test]
fn update_honors_hgmatch_shards() {
    let dir = TempDir::new("update-sharded");
    let (dl, de, _, _) = write_paper_files(&dir);
    let stream = write_update_stream_file(&dir);
    let mut saved: Vec<Vec<u8>> = Vec::new();
    for shards in ["1", "3"] {
        let out = dir.path(&format!("s{shards}.hgsnap"));
        let cmd = std::process::Command::new(env!("CARGO_BIN_EXE_hgmatch"))
            .args(["update", &dl, &de, &stream, "--batch", "2", "--save", &out])
            .env("HGMATCH_SHARDS", shards)
            .output()
            .expect("spawn hgmatch update");
        assert!(
            cmd.status.success(),
            "{}",
            String::from_utf8_lossy(&cmd.stderr)
        );
        let stdout = String::from_utf8_lossy(&cmd.stdout);
        assert_eq!(
            stdout.contains("data plane: 3 shards"),
            shards == "3",
            "{stdout}"
        );
        saved.push(std::fs::read(&out).unwrap());
    }
    assert_eq!(
        saved[0], saved[1],
        "sharded snapshot diverged from monolithic"
    );
}

#[test]
fn listen_rejects_bad_flags() {
    let dir = TempDir::new("listen-bad");
    let (dl, de, _, _) = write_paper_files(&dir);
    assert!(run(&args(&["listen", &dl])).is_err());
    assert!(run(&args(&["listen", "--snapshot"])).is_err());
    assert!(run(&args(&[
        "listen",
        "--snapshot",
        &dir.path("missing.hgsnap")
    ]))
    .is_err());
    assert!(run(&args(&["listen", &dl, &de, "--bogus"])).is_err());
    assert!(run(&args(&["listen", &dl, &de, "--queue-depth"])).is_err());
    assert!(run(&args(&["listen", &dl, &de, "--tenant-qps", "abc"])).is_err());
    // An unbindable address is a clean error, not a panic.
    assert!(run(&args(&["listen", &dl, &de, "--addr", "256.0.0.1:80"])).is_err());
}
