//! In-process tests of every CLI subcommand.

use std::path::PathBuf;

use hgmatch_cli::run;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("hgmatch-cli-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Writes the paper's Fig. 1 data and query files; returns their paths.
fn write_paper_files(dir: &TempDir) -> (String, String, String, String) {
    let dl = dir.path("data.labels");
    let de = dir.path("data.edges");
    let ql = dir.path("query.labels");
    let qe = dir.path("query.edges");
    std::fs::write(&dl, "0\n2\n0\n0\n1\n2\n0\n").unwrap();
    std::fs::write(&de, "2,4\n4,6\n0,1,2\n3,5,6\n0,1,4,6\n2,3,4,5\n").unwrap();
    std::fs::write(&ql, "0\n2\n0\n0\n1\n").unwrap();
    std::fs::write(&qe, "2,4\n0,1,2\n0,1,3,4\n").unwrap();
    (dl, de, ql, qe)
}

#[test]
fn unknown_command_errors() {
    assert!(run(&args(&["frobnicate"])).is_err());
    assert!(run(&[]).is_err());
}

#[test]
fn generate_and_stats_roundtrip() {
    let dir = TempDir::new("gen");
    let labels = dir.path("ch.labels");
    let edges = dir.path("ch.edges");
    run(&args(&["generate", "CH", &labels, &edges])).expect("generate works");
    run(&args(&["stats", &labels, &edges])).expect("stats works");
    assert!(std::fs::metadata(&labels).unwrap().len() > 0);
    assert!(std::fs::metadata(&edges).unwrap().len() > 0);
}

#[test]
fn generate_rejects_unknown_profile() {
    let dir = TempDir::new("badprofile");
    let err = run(&args(&["generate", "NOPE", &dir.path("a"), &dir.path("b")])).unwrap_err();
    assert!(err.contains("unknown profile"));
}

#[test]
fn match_counts_paper_example() {
    let dir = TempDir::new("match");
    let (dl, de, ql, qe) = write_paper_files(&dir);
    run(&args(&["match", &dl, &de, &ql, &qe])).expect("match works");
    run(&args(&["match", &dl, &de, &ql, &qe, "--threads", "2"])).expect("parallel match");
    run(&args(&["match", &dl, &de, &ql, &qe, "--print", "5"])).expect("print mode");
    run(&args(&["match", &dl, &de, &ql, &qe, "--timeout", "10"])).expect("timeout flag");
}

#[test]
fn match_rejects_bad_flags() {
    let dir = TempDir::new("badflags");
    let (dl, de, ql, qe) = write_paper_files(&dir);
    assert!(run(&args(&["match", &dl, &de, &ql, &qe, "--bogus"])).is_err());
    assert!(run(&args(&["match", &dl, &de, &ql, &qe, "--threads"])).is_err());
    assert!(run(&args(&["match", &dl, &de])).is_err());
}

#[test]
fn explain_prints_dataflow() {
    let dir = TempDir::new("explain");
    let (dl, de, ql, qe) = write_paper_files(&dir);
    run(&args(&["explain", &dl, &de, &ql, &qe])).expect("explain works");
}

#[test]
fn sample_query_emits_files() {
    let dir = TempDir::new("sample");
    let labels = dir.path("cp.labels");
    let edges = dir.path("cp.edges");
    run(&args(&["generate", "CP", &labels, &edges])).unwrap();
    let ql = dir.path("q.labels");
    let qe = dir.path("q.edges");
    run(&args(&[
        "sample-query",
        &labels,
        &edges,
        "q2",
        "5",
        &ql,
        &qe,
    ]))
    .expect("sample works");
    // The sampled query must itself be loadable and matchable.
    run(&args(&["match", &labels, &edges, &ql, &qe])).expect("sampled query matches");
    // Unknown setting is rejected.
    assert!(run(&args(&[
        "sample-query",
        &labels,
        &edges,
        "q9",
        "5",
        &ql,
        &qe
    ]))
    .is_err());
}

#[test]
fn missing_files_produce_errors_not_panics() {
    let err = run(&args(&["stats", "/nonexistent/a", "/nonexistent/b"])).unwrap_err();
    assert!(err.contains("loading"));
}
