//! `hgmatch` binary entry point. All logic lives in the library so the
//! subcommands are unit-testable in-process.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match hgmatch_cli::run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{}", hgmatch_cli::USAGE);
            ExitCode::FAILURE
        }
    }
}
