//! `hgmatch` — command-line interface to the HGMatch engine (library
//! portion: argument parsing and subcommand logic, testable in-process).
//!
//! Subcommands:
//!
//! * `generate <profile> <labels.txt> <edges.txt>` — emit a synthetic
//!   dataset (Table II profile) in the text format.
//! * `stats <labels.txt> <edges.txt>` — print Table II-style statistics.
//! * `match <labels.txt> <edges.txt> <qlabels.txt> <qedges.txt>
//!   [--threads N] [--timeout SECS] [--print [LIMIT]]` — count (and
//!   optionally print) embeddings.
//! * `explain <labels.txt> <edges.txt> <qlabels.txt> <qedges.txt>` — show
//!   the matching order and dataflow.
//! * `sample-query <labels.txt> <edges.txt> <setting> <seed>
//!   <out-labels> <out-edges>` — draw a random-walk query (q2/q3/q4/q6).

use std::path::Path;
use std::time::Duration;

use hgmatch_core::operators::Dataflow;
use hgmatch_core::{MatchConfig, Matcher};
use hgmatch_datasets::{profile_by_name, sample_query, standard_settings};
use hgmatch_hypergraph::io;

/// Usage text printed on argument errors.
pub const USAGE: &str = "usage:
  hgmatch generate <profile> <labels.txt> <edges.txt>
  hgmatch stats <labels.txt> <edges.txt>
  hgmatch match <labels> <edges> <qlabels> <qedges> [--threads N] [--timeout SECS] [--print [LIMIT]]
  hgmatch explain <labels> <edges> <qlabels> <qedges>
  hgmatch sample-query <labels> <edges> <q2|q3|q4|q6> <seed> <out-labels> <out-edges>
profiles: HC MA CH CP SB HB WT TC SA AR";

/// Executes one CLI invocation; `args` excludes the program name.
pub fn run(args: &[String]) -> Result<(), String> {
    let command = args.first().ok_or("missing command")?;
    match command.as_str() {
        "generate" => generate(&args[1..]),
        "stats" => stats(&args[1..]),
        "match" => do_match(&args[1..]),
        "explain" => explain(&args[1..]),
        "sample-query" => do_sample(&args[1..]),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn load(labels: &str, edges: &str) -> Result<hgmatch_hypergraph::Hypergraph, String> {
    io::load_text(Path::new(labels), Path::new(edges))
        .map_err(|e| format!("loading {labels} / {edges}: {e}"))
}

fn generate(args: &[String]) -> Result<(), String> {
    let [profile, labels, edges] = args else {
        return Err("generate needs <profile> <labels.txt> <edges.txt>".into());
    };
    let profile = profile_by_name(profile).ok_or_else(|| format!("unknown profile {profile:?}"))?;
    let h = profile.generate();
    io::save_text(&h, Path::new(labels), Path::new(edges)).map_err(|e| e.to_string())?;
    println!("{}", h.stats().table_row(profile.name));
    Ok(())
}

fn stats(args: &[String]) -> Result<(), String> {
    let [labels, edges] = args else {
        return Err("stats needs <labels.txt> <edges.txt>".into());
    };
    let h = load(labels, edges)?;
    let s = h.stats();
    println!("dataset\t|V|\t|E|\t|Sigma|\tamax\ta\tgraph\tindex");
    println!("{}", s.table_row("-"));
    println!("partitions: {}", s.num_partitions);
    println!("max degree: {}", s.max_degree);
    Ok(())
}

fn do_match(args: &[String]) -> Result<(), String> {
    if args.len() < 4 {
        return Err("match needs data and query label/edge files".into());
    }
    let data = load(&args[0], &args[1])?;
    let query = load(&args[2], &args[3])?;

    let mut config = MatchConfig::default();
    let mut print_limit: Option<usize> = None;
    let mut i = 4;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                config.threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--threads needs a number")?;
            }
            "--timeout" => {
                i += 1;
                let secs: f64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--timeout needs seconds")?;
                config.timeout = Some(Duration::from_secs_f64(secs));
            }
            "--print" => {
                if let Some(limit) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    i += 1;
                    print_limit = Some(limit);
                } else {
                    print_limit = Some(20);
                }
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }

    let matcher = Matcher::with_config(&data, config);
    if let Some(limit) = print_limit {
        let all = matcher.find_all(&query).map_err(|e| e.to_string())?;
        println!("embeddings: {}", all.len());
        for m in all.iter().take(limit) {
            println!("  {m}");
        }
        if all.len() > limit {
            println!("  … {} more", all.len() - limit);
        }
    } else {
        let (count, stats) = matcher
            .count_with_stats(&query)
            .map_err(|e| e.to_string())?;
        println!("embeddings: {count}");
        println!("elapsed: {:.6}s", stats.elapsed.as_secs_f64());
        if stats.timed_out {
            println!("TIMED OUT (count is a lower bound)");
        }
        let m = stats.metrics;
        println!(
            "scan: {}, candidates: {}, filtered: {}, validated: {}",
            m.scan_rows, m.candidates, m.filtered, m.validated
        );
    }
    Ok(())
}

fn explain(args: &[String]) -> Result<(), String> {
    let [labels, edges, qlabels, qedges] = args else {
        return Err("explain needs data and query label/edge files".into());
    };
    let data = load(labels, edges)?;
    let query = load(qlabels, qedges)?;
    let matcher = Matcher::new(&data);
    let plan = matcher.plan(&query).map_err(|e| e.to_string())?;
    println!("matching order (query hyperedges): {:?}", plan.order());
    println!("{}", Dataflow::from_plan(&plan, &data));
    if plan.is_infeasible() {
        println!("plan is infeasible: some query signature is absent from the data");
    }
    Ok(())
}

fn do_sample(args: &[String]) -> Result<(), String> {
    let [labels, edges, setting_name, seed, out_labels, out_edges] = args else {
        return Err("sample-query needs 6 arguments".into());
    };
    let data = load(labels, edges)?;
    let setting = standard_settings()
        .into_iter()
        .find(|s| s.name == setting_name.as_str())
        .ok_or_else(|| format!("unknown setting {setting_name:?} (q2/q3/q4/q6)"))?;
    let seed: u64 = seed.parse().map_err(|_| "seed must be an integer")?;
    let query = sample_query(&data, &setting, seed)
        .ok_or("could not sample a query with this setting/seed")?;
    io::save_text(&query, Path::new(out_labels), Path::new(out_edges))
        .map_err(|e| e.to_string())?;
    println!(
        "sampled {}: |V(q)| = {}, |E(q)| = {}",
        setting.name,
        query.num_vertices(),
        query.num_edges()
    );
    Ok(())
}
