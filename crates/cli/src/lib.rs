//! `hgmatch` — command-line interface to the HGMatch engine (library
//! portion: argument parsing and subcommand logic, testable in-process).
//!
//! Subcommands:
//!
//! * `generate <profile> <labels.txt> <edges.txt>` — emit a synthetic
//!   dataset (Table II profile) in the text format.
//! * `stats <labels.txt> <edges.txt> [--json]` — print Table II-style
//!   statistics plus a per-partition index memory breakdown by posting
//!   representation (list / bitmap / compressed, DESIGN.md §14);
//!   `--json` emits the same data machine-readable.
//! * `match <labels.txt> <edges.txt> <qlabels.txt> <qedges.txt>
//!   [--threads N] [--timeout SECS] [--print [LIMIT]]` — count (and
//!   optionally print) embeddings of one query.
//! * `batch` / `serve` — answer a *stream* of queries on one resident
//!   worker pool ([`hgmatch_core::serve::MatchServer`]): `batch` reads a
//!   query-list file and reports results in submission order; `serve`
//!   reads specs from stdin (or `--input`) and streams results in
//!   completion order. Both report per-query latency and aggregate
//!   throughput. A query list has one `<qlabels> <qedges>` pair per line
//!   (blank lines and `#` comments skipped).
//! * `update` — consume an insert/delete stream file against a loaded
//!   graph through [`hgmatch_hypergraph::DynamicHypergraph`]: applies ops
//!   in batches, publishes an epoch snapshot per batch, optionally
//!   re-answers a standing query list on a [`MatchServer`] after every
//!   epoch (with `--delta`, cross-checked against
//!   [`hgmatch_core::delta_match`]), and reports update throughput.
//! * `gen-stream` — generate a random update stream with a configurable
//!   insert:delete ratio (the `datasets` update-stream generator).
//! * `explain <labels.txt> <edges.txt> <qlabels.txt> <qedges.txt>
//!   [--json|--observed]` — show the cost-based matching order, its
//!   per-step cost estimates next to the greedy Algorithm 3 baseline, and
//!   the dataflow; `--json` emits a deterministic machine-readable
//!   report; `--observed` additionally executes the query (sequential
//!   reference run) and reports per-position observed candidate counts
//!   next to the planner's estimates — the same observed/estimated ratios
//!   the adaptive re-optimizer's trigger consumes (DESIGN.md §15).
//! * `sample-query <labels.txt> <edges.txt> <setting> <seed>
//!   <out-labels> <out-edges>` — draw a random-walk query (q2/q3/q4/q6).

use std::io::BufRead;
use std::path::Path;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use hgmatch_core::operators::Dataflow;
use hgmatch_core::serve::{MatchServer, QueryHandle, QueryOptions, ServeConfig};
use hgmatch_core::{AggregateMode, AggregateSummary, MatchConfig, Matcher, ScoreFn};
use hgmatch_datasets::{profile_by_name, sample_query, standard_settings};
use hgmatch_hypergraph::io;

/// Usage text printed on argument errors.
pub const USAGE: &str = "usage:
  hgmatch generate <profile> <labels.txt> <edges.txt>
  hgmatch stats <labels.txt> <edges.txt> [--json]
  hgmatch match <labels> <edges> <qlabels> <qedges> [--threads N] [--timeout SECS] [--print [LIMIT]]
  hgmatch batch <labels> <edges> <queries.txt> [serve flags]
  hgmatch serve <labels> <edges> [--input FILE] [serve flags]
  hgmatch listen <labels> <edges> [listen flags]
  hgmatch listen --snapshot <file.hgsnap> [listen flags]
  hgmatch snapshot save <labels> <edges> <out.hgsnap>
  hgmatch snapshot load <file.hgsnap>
  hgmatch update <labels> <edges> <stream.txt> [update flags]
  hgmatch gen-stream <labels> <edges> <ops> <insert-ratio> <seed> <out.txt>
  hgmatch explain <labels> <edges> <qlabels> <qedges> [--json|--observed]
  hgmatch sample-query <labels> <edges> <q2|q3|q4|q6> <seed> <out-labels> <out-edges>

serve/batch answer many queries on one resident worker pool; a query list
holds one `<qlabels> <qedges>` pair per line (# comments allowed).
serve flags:
  --threads N       worker threads in the shared pool (default 4)
  --timeout SECS    per-query wall-clock budget (default: none)
  --max-results N   stop each query after N embeddings (default: none)
  --agg MODE        aggregation mode per query (DESIGN.md §18.2):
                    count | materialize | topk:K[:SCORE] | sample:BUDGET[:SEED]
                    SCORE is edge_id_sum | min_edge | hash (default edge_id_sum)
  --repeat K        batch only: submit the list K times (plan-cache demo)
  --input FILE      serve only: read specs from FILE instead of stdin
  --quantum N       fairness quantum in tasks (default 64)
  --plan-cache N    plan-cache capacity, 0 disables (default 128)

snapshot save builds the index and writes a checksummed HGMB v2 snapshot;
snapshot load restores it (index included, no re-indexing) and prints
stats. listen --snapshot serves straight from such a snapshot.

listen starts the HTTP front door (POST /match, GET /metrics, GET
/healthz) and drains gracefully on stdin EOF or a `quit` line.
listen flags:
  --addr HOST:PORT  bind address (default HGMATCH_LISTEN_ADDR or 127.0.0.1:0)
  --threads N       engine worker threads (default 4)
  --http-threads N  connection handler threads (default 4)
  --queue-depth N   max queued+executing match requests before 429
                    (default HGMATCH_QUEUE_DEPTH or 4x engine threads)
  --tenant-qps Q    per-tenant token-bucket rate, 0 = unlimited
                    (default HGMATCH_TENANT_QPS or 0)
  --admit-cost C    under load, shed queries whose planner cost estimate
                    exceeds C (default: disabled)
  --timeout SECS    default per-query wall-clock budget
  --quantum N       fairness quantum in tasks (default 64)
  --plan-cache N    plan-cache capacity, 0 disables (default 128)

update applies an insert/delete stream (`+ v...` / `- v...` / `v label`
lines) to a dynamic graph, publishing one snapshot epoch per batch.
update flags:
  --batch N         ops per epoch (default: the whole stream at once)
  --queries FILE    re-answer this query list after every epoch
  --delta           also delta-match each query and cross-check the counts
  --threads N       worker threads for --queries (default 4)
  --save FILE       write the final graph (index included) as an HGMB v2
                    snapshot; `snapshot load` / `listen --snapshot` restore it
update shards its data plane across HGMATCH_SHARDS writers (default 1).
profiles: HC MA CH CP SB HB WT TC SA AR";

/// Executes one CLI invocation; `args` excludes the program name.
pub fn run(args: &[String]) -> Result<(), String> {
    let command = args.first().ok_or("missing command")?;
    match command.as_str() {
        "generate" => generate(&args[1..]),
        "stats" => stats(&args[1..]),
        "match" => do_match(&args[1..]),
        "batch" => do_batch(&args[1..]),
        "serve" => do_serve(&args[1..]),
        "listen" => do_listen(&args[1..]),
        "snapshot" => do_snapshot(&args[1..]),
        "update" => do_update(&args[1..]),
        "gen-stream" => do_gen_stream(&args[1..]),
        "explain" => explain(&args[1..]),
        "sample-query" => do_sample(&args[1..]),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn load(labels: &str, edges: &str) -> Result<hgmatch_hypergraph::Hypergraph, String> {
    io::load_text(Path::new(labels), Path::new(edges))
        .map_err(|e| format!("loading {labels} / {edges}: {e}"))
}

fn generate(args: &[String]) -> Result<(), String> {
    let [profile, labels, edges] = args else {
        return Err("generate needs <profile> <labels.txt> <edges.txt>".into());
    };
    let profile = profile_by_name(profile).ok_or_else(|| format!("unknown profile {profile:?}"))?;
    let h = profile.generate();
    io::save_text(&h, Path::new(labels), Path::new(edges)).map_err(|e| e.to_string())?;
    println!("{}", h.stats().table_row(profile.name));
    Ok(())
}

fn stats(args: &[String]) -> Result<(), String> {
    let mut json = false;
    let mut files: Vec<&String> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown stats flag {other:?}"))
            }
            _ => files.push(arg),
        }
    }
    let [labels, edges] = files.as_slice() else {
        return Err("stats needs <labels.txt> <edges.txt> [--json]".into());
    };
    print!("{}", stats_report(labels, edges, json)?);
    Ok(())
}

/// Builds the full `stats` output: Table II-style dataset summary plus the
/// per-partition index memory breakdown by posting representation
/// (DESIGN.md §14). Deterministic (stable field order), so CI can golden-
/// file it; `--json` emits the same data machine-readable.
pub fn stats_report(labels: &str, edges: &str, json: bool) -> Result<String, String> {
    use std::fmt::Write as _;
    let h = load(labels, edges)?;
    let s = h.stats();

    let breakdowns: Vec<(u32, usize, hgmatch_hypergraph::ReprBreakdown, usize)> = h
        .partitions()
        .iter()
        .map(|p| {
            (
                p.signature().raw(),
                p.len(),
                p.index().repr_breakdown(),
                p.index().size_bytes(),
            )
        })
        .collect();
    let mut total = hgmatch_hypergraph::ReprBreakdown::default();
    let mut total_index_bytes = 0usize;
    for (_, _, b, bytes) in &breakdowns {
        total.add(b);
        total_index_bytes += bytes;
    }
    let per_posting = |bytes: usize, postings: usize| {
        if postings == 0 {
            0.0
        } else {
            bytes as f64 / postings as f64
        }
    };

    let mut out = String::new();
    if json {
        let body_json = |b: &hgmatch_hypergraph::ReprBreakdown, bytes: usize| {
            format!(
                "\"list\": {{\"keys\": {}, \"postings\": {}, \"bytes\": {}}}, \
                 \"bitmap\": {{\"keys\": {}, \"postings\": {}, \"bytes\": {}}}, \
                 \"compressed\": {{\"keys\": {}, \"postings\": {}, \"bytes\": {}}}, \
                 \"index_bytes\": {bytes}, \"bytes_per_posting\": {:.4}",
                b.list_keys,
                b.list_postings,
                b.list_bytes,
                b.bitmap_keys,
                b.bitmap_postings,
                b.bitmap_bytes,
                b.compressed_keys,
                b.compressed_postings,
                b.compressed_bytes,
                per_posting(bytes, b.total_postings()),
            )
        };
        let parts: Vec<String> = breakdowns
            .iter()
            .map(|(sid, rows, b, bytes)| {
                format!(
                    "    {{\"signature\": {sid}, \"rows\": {rows}, {}}}",
                    body_json(b, *bytes)
                )
            })
            .collect();
        let _ = write!(
            out,
            "{{\n  \"num_vertices\": {},\n  \"num_edges\": {},\n  \"num_labels\": {},\n  \
             \"max_arity\": {},\n  \"num_partitions\": {},\n  \"max_degree\": {},\n  \
             \"table_bytes\": {},\n  \"index_bytes\": {},\n  \"partitions\": [\n{}\n  ],\n  \
             \"totals\": {{{}}}\n}}\n",
            h.num_vertices(),
            h.num_edges(),
            h.num_labels(),
            s.max_arity,
            s.num_partitions,
            s.max_degree,
            h.table_size_bytes(),
            total_index_bytes,
            parts.join(",\n"),
            body_json(&total, total_index_bytes),
        );
        return Ok(out);
    }

    let _ = writeln!(out, "dataset\t|V|\t|E|\t|Sigma|\tamax\ta\tgraph\tindex");
    let _ = writeln!(out, "{}", s.table_row("-"));
    let _ = writeln!(out, "partitions: {}", s.num_partitions);
    let _ = writeln!(out, "max degree: {}", s.max_degree);
    let _ = writeln!(out, "index memory by representation (keys/postings/bytes):");
    let _ = writeln!(
        out,
        "part\trows\tlist\tbitmap\tcompressed\tindex_bytes\tB/posting"
    );
    let row = |out: &mut String,
               tag: String,
               rows: usize,
               b: &hgmatch_hypergraph::ReprBreakdown,
               bytes: usize| {
        let _ = writeln!(
            out,
            "{tag}\t{rows}\t{}/{}/{}\t{}/{}/{}\t{}/{}/{}\t{bytes}\t{:.2}",
            b.list_keys,
            b.list_postings,
            b.list_bytes,
            b.bitmap_keys,
            b.bitmap_postings,
            b.bitmap_bytes,
            b.compressed_keys,
            b.compressed_postings,
            b.compressed_bytes,
            per_posting(bytes, b.total_postings()),
        );
    };
    for (sid, rows, b, bytes) in &breakdowns {
        row(&mut out, sid.to_string(), *rows, b, *bytes);
    }
    row(
        &mut out,
        "total".into(),
        h.num_edges(),
        &total,
        total_index_bytes,
    );
    Ok(out)
}

fn do_match(args: &[String]) -> Result<(), String> {
    if args.len() < 4 {
        return Err("match needs data and query label/edge files".into());
    }
    let data = load(&args[0], &args[1])?;
    let query = load(&args[2], &args[3])?;

    let mut config = MatchConfig::default();
    let mut print_limit: Option<usize> = None;
    let mut i = 4;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                config.threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--threads needs a number")?;
            }
            "--timeout" => {
                i += 1;
                config.timeout = Some(parse_timeout(args.get(i))?);
            }
            "--print" => {
                if let Some(limit) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    i += 1;
                    print_limit = Some(limit);
                } else {
                    print_limit = Some(20);
                }
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }

    let matcher = Matcher::with_config(&data, config);
    if let Some(limit) = print_limit {
        let all = matcher.find_all(&query).map_err(|e| e.to_string())?;
        println!("embeddings: {}", all.len());
        for m in all.iter().take(limit) {
            println!("  {m}");
        }
        if all.len() > limit {
            println!("  … {} more", all.len() - limit);
        }
    } else {
        let (count, stats) = matcher
            .count_with_stats(&query)
            .map_err(|e| e.to_string())?;
        println!("embeddings: {count}");
        println!("elapsed: {:.6}s", stats.elapsed.as_secs_f64());
        if stats.timed_out {
            println!("TIMED OUT (count is a lower bound)");
        }
        let m = stats.metrics;
        println!(
            "scan: {}, candidates: {}, filtered: {}, validated: {}",
            m.scan_rows, m.candidates, m.filtered, m.validated
        );
    }
    Ok(())
}

/// Parses a `--timeout` operand into a [`Duration`], rejecting negative,
/// non-finite and out-of-range values as errors instead of panics.
fn parse_timeout(value: Option<&String>) -> Result<Duration, String> {
    let secs: f64 = value
        .and_then(|s| s.parse().ok())
        .ok_or("--timeout needs seconds")?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(format!(
            "--timeout must be a non-negative number, got {secs}"
        ));
    }
    Duration::try_from_secs_f64(secs).map_err(|e| format!("--timeout {secs}: {e}"))
}

/// Parses a `--agg` operand:
/// `count | materialize | topk:K[:SCORE] | sample:BUDGET[:SEED]`.
/// The colon grammar keeps the mode one shell word — no sub-flags to
/// misplace — and mirrors the HTTP front door's `aggregate` object
/// (DESIGN.md §18.2).
fn parse_agg(value: Option<&String>) -> Result<AggregateMode, String> {
    let spec = value.ok_or("--agg needs a mode")?;
    let mut parts = spec.split(':');
    let head = parts.next().unwrap_or("");
    let mode = match head {
        "count" | "count_only" => AggregateMode::CountOnly,
        "materialize" => AggregateMode::Materialize,
        "topk" | "top_k" => {
            let k: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or("--agg topk:K needs a positive K")?;
            if k == 0 {
                return Err("--agg topk:K needs a positive K".into());
            }
            let score = match parts.next() {
                None => ScoreFn::EdgeIdSum,
                Some(name) => ScoreFn::parse(name)
                    .ok_or_else(|| format!("--agg topk: unknown score {name:?}"))?,
            };
            AggregateMode::TopK { k, score }
        }
        "sample" | "sampled" => {
            let budget: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or("--agg sample:BUDGET needs a positive budget")?;
            if budget == 0 {
                return Err("--agg sample:BUDGET needs a positive budget".into());
            }
            let seed: u64 = match parts.next() {
                None => 0,
                Some(s) => s
                    .parse()
                    .map_err(|_| "--agg sample seed must be an integer")?,
            };
            AggregateMode::Sampled { budget, seed }
        }
        other => return Err(format!("--agg: unknown mode {other:?}")),
    };
    if parts.next().is_some() {
        return Err(format!("--agg: trailing fields in {spec:?}"));
    }
    Ok(mode)
}

/// Which serving subcommand is parsing flags (they share most but not all).
#[derive(PartialEq, Eq, Clone, Copy)]
enum ServeMode {
    /// `batch`: a query-list file argument, supports `--repeat`.
    Batch,
    /// `serve`: streams from stdin or `--input`.
    Stream,
}

/// Options shared by `serve` and `batch`.
struct ServeCliOptions {
    config: ServeConfig,
    per_query: QueryOptions,
    repeat: usize,
    input: Option<String>,
}

impl ServeCliOptions {
    fn parse(args: &[String], mode: ServeMode) -> Result<Self, String> {
        let mut config = ServeConfig::default();
        let mut per_query = QueryOptions::count();
        let mut repeat = 1usize;
        let mut input = None;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--threads" => {
                    i += 1;
                    config.threads = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .ok_or("--threads needs a number")?;
                }
                "--timeout" => {
                    i += 1;
                    per_query.timeout = Some(parse_timeout(args.get(i))?);
                }
                "--max-results" => {
                    i += 1;
                    per_query.max_results = Some(
                        args.get(i)
                            .and_then(|s| s.parse().ok())
                            .ok_or("--max-results needs a number")?,
                    );
                }
                "--agg" => {
                    i += 1;
                    per_query.aggregate = Some(parse_agg(args.get(i))?);
                }
                "--repeat" if mode == ServeMode::Batch => {
                    i += 1;
                    repeat = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .ok_or("--repeat needs a number")?;
                }
                "--quantum" => {
                    i += 1;
                    config.fairness_quantum = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .ok_or("--quantum needs a number")?;
                }
                "--plan-cache" => {
                    i += 1;
                    config.plan_cache_capacity = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .ok_or("--plan-cache needs a number")?;
                }
                "--input" if mode == ServeMode::Stream => {
                    i += 1;
                    input = Some(args.get(i).ok_or("--input needs a path")?.clone());
                }
                other => {
                    let which = match mode {
                        ServeMode::Batch => "batch",
                        ServeMode::Stream => "serve",
                    };
                    return Err(format!("unknown {which} flag {other:?}"));
                }
            }
            i += 1;
        }
        Ok(Self {
            config,
            per_query,
            repeat: repeat.max(1),
            input,
        })
    }
}

/// Parses one query-spec line (`<qlabels> <qedges>`) into a loaded query.
fn parse_query_spec(line: &str) -> Result<Option<hgmatch_hypergraph::Hypergraph>, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let mut parts = trimmed.split_whitespace();
    let (Some(labels), Some(edges), None) = (parts.next(), parts.next(), parts.next()) else {
        return Err(format!(
            "query spec must be `<qlabels> <qedges>`, got {trimmed:?}"
        ));
    };
    let query = load(labels, edges)?;
    // Shape validation at the edge (shared with the HTTP front door): an
    // empty or over-long query gets a line-numbered diagnostic here, not a
    // submission failure tagged only with a synthetic query name.
    hgmatch_core::validate_query_shape(&query).map_err(|e| e.to_string())?;
    Ok(Some(query))
}

/// Locks a std mutex, ignoring poisoning (worker panics already abort).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn print_outcome(name: &str, outcome: &hgmatch_core::QueryOutcome) {
    let mut agg = format!("agg={}", outcome.aggregate.mode_name());
    match &outcome.aggregate {
        AggregateSummary::TopK { k, score, scores } => {
            let best: Vec<String> = scores.iter().map(|s| s.to_string()).collect();
            agg.push_str(&format!(
                ":{k}:{} scores=[{}]",
                score.name(),
                best.join(","),
            ));
        }
        AggregateSummary::Sampled {
            budget,
            seed,
            sampled,
            fraction,
            ci95,
        } => {
            agg.push_str(&format!(
                ":{budget}:{seed} sampled={sampled} fraction={fraction:.4} ci95={ci95:.4}"
            ));
        }
        AggregateSummary::Materialized | AggregateSummary::Count => {}
    }
    println!(
        "{name}\t{status}\tembeddings={count}\telapsed={secs:.6}s\tqueue={queued:.6}s\texec={exec:.6}s\tplan_cached={cached}\t{agg}",
        status = outcome.status,
        count = outcome.count,
        secs = outcome.elapsed.as_secs_f64(),
        queued = outcome.queue_wait.as_secs_f64(),
        exec = outcome.execution.as_secs_f64(),
        cached = if outcome.plan_cached { "yes" } else { "no" },
    );
}

fn print_aggregate(server: &MatchServer, served: usize, wall: Duration) {
    let stats = server.stats();
    let secs = wall.as_secs_f64();
    println!(
        "served {served} queries in {secs:.4}s ({:.1} q/s) on {} workers",
        served as f64 / secs.max(1e-9),
        server.threads(),
    );
    println!(
        "plan cache: {} hits / {} misses; tasks: {}, steals: {}, splits: {}, assists: {}, timed out: {}, limit: {}",
        stats.plan_cache_hits,
        stats.plan_cache_misses,
        stats.tasks_executed,
        stats.steals,
        stats.splits,
        stats.assists,
        stats.timed_out,
        stats.limit_reached,
    );
    println!(
        "results: {} found, {} materialized (modes: materialize={}, count={}, topk={}, sampled={})",
        stats.results_found,
        stats.results_materialized,
        stats.queries_materialize,
        stats.queries_count_only,
        stats.queries_top_k,
        stats.queries_sampled,
    );
    println!(
        "latency split: queue-wait {:.4}s total, execution {:.4}s total",
        stats.queue_wait_total.as_secs_f64(),
        stats.execution_total.as_secs_f64(),
    );
}

/// `batch`: submit every query of a list file (possibly `--repeat` times)
/// to one shared pool, then report outcomes in submission order.
fn do_batch(args: &[String]) -> Result<(), String> {
    if args.len() < 3 {
        return Err("batch needs <labels> <edges> <queries.txt>".into());
    }
    let data = std::sync::Arc::new(load(&args[0], &args[1])?);
    let list = std::fs::read_to_string(&args[2])
        .map_err(|e| format!("reading query list {}: {e}", args[2]))?;
    let options = ServeCliOptions::parse(&args[3..], ServeMode::Batch)?;

    let mut queries = Vec::new();
    for (lineno, line) in list.lines().enumerate() {
        if let Some(q) = parse_query_spec(line).map_err(|e| format!("line {}: {e}", lineno + 1))? {
            queries.push((format!("q{}", lineno + 1), q));
        }
    }
    if queries.is_empty() {
        return Err("query list is empty".into());
    }

    let server = MatchServer::new(data, options.config);
    let begin = Instant::now();
    let mut handles: Vec<(String, QueryHandle)> = Vec::new();
    for round in 0..options.repeat {
        for (name, query) in &queries {
            let tag = if options.repeat > 1 {
                format!("{name}#{}", round + 1)
            } else {
                name.clone()
            };
            let handle = server
                .submit(query, options.per_query.clone())
                .map_err(|e| format!("{tag}: {e}"))?;
            handles.push((tag, handle));
        }
    }
    let total = handles.len();
    for (name, handle) in handles {
        print_outcome(&name, &handle.wait());
    }
    print_aggregate(&server, total, begin.elapsed());
    Ok(())
}

/// `serve`: read query specs from stdin (or `--input FILE`), submit each
/// as it arrives, and stream outcomes in completion order.
fn do_serve(args: &[String]) -> Result<(), String> {
    if args.len() < 2 {
        return Err("serve needs <labels> <edges>".into());
    }
    let data = std::sync::Arc::new(load(&args[0], &args[1])?);
    let options = ServeCliOptions::parse(&args[2..], ServeMode::Stream)?;

    let server = MatchServer::new(data, options.config);
    let begin = Instant::now();
    // A background drainer prints outcomes the moment they finish, even
    // while the reader thread is blocked waiting for the next input line
    // (completion-order streaming). Shared state: the pending handles and
    // a served counter; the reader signals completion via `input_done`.
    let pending: Mutex<Vec<(String, QueryHandle)>> = Mutex::new(Vec::new());
    let served = std::sync::atomic::AtomicUsize::new(0);
    let input_done = std::sync::atomic::AtomicBool::new(false);
    let read_error: Mutex<Option<String>> = Mutex::new(None);

    std::thread::scope(|scope| {
        scope.spawn(|| {
            let submit_line = |line: &str, lineno: usize| -> Result<(), String> {
                match parse_query_spec(line) {
                    Ok(None) => Ok(()),
                    Ok(Some(query)) => {
                        let name = format!("q{lineno}");
                        let handle = server
                            .submit(&query, options.per_query.clone())
                            .map_err(|e| format!("{name}: {e}"))?;
                        lock(&pending).push((name, handle));
                        Ok(())
                    }
                    Err(e) => Err(format!("line {lineno}: {e}")),
                }
            };
            let result = if let Some(path) = &options.input {
                std::fs::read_to_string(path)
                    .map_err(|e| format!("reading {path}: {e}"))
                    .and_then(|content| {
                        content
                            .lines()
                            .enumerate()
                            .try_for_each(|(i, line)| submit_line(line, i + 1))
                    })
            } else {
                let stdin = std::io::stdin();
                stdin.lock().lines().enumerate().try_for_each(|(i, line)| {
                    line.map_err(|e| format!("reading stdin: {e}"))
                        .and_then(|line| submit_line(&line, i + 1))
                })
            };
            if let Err(e) = result {
                *lock(&read_error) = Some(e);
            }
            input_done.store(true, std::sync::atomic::Ordering::Release);
        });

        // Drainer: poll pending handles until input is exhausted and
        // everything submitted has been reported. Finished handles are
        // moved out under the lock and printed after it drops, so stdout
        // back-pressure never blocks the reader's next submission.
        loop {
            // Read the done flag *before* scanning: a handle pushed after
            // the scan but before a later flag-read would otherwise be
            // dropped. With this order, done=true means every submission
            // already preceded the scan.
            let done = input_done.load(std::sync::atomic::Ordering::Acquire);
            let mut guard = lock(&pending);
            let mut finished = Vec::new();
            let mut i = 0;
            while i < guard.len() {
                if guard[i].1.is_finished() {
                    finished.push(guard.remove(i));
                } else {
                    i += 1;
                }
            }
            let empty = guard.is_empty();
            drop(guard);
            for (name, handle) in finished {
                print_outcome(&name, &handle.wait());
                served.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            if empty && done {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    });
    if let Some(e) = read_error.into_inner().unwrap_or_else(|e| e.into_inner()) {
        return Err(e);
    }
    print_aggregate(
        &server,
        served.load(std::sync::atomic::Ordering::Relaxed),
        begin.elapsed(),
    );
    Ok(())
}

/// Parsed flags of the `update` subcommand.
struct UpdateCliOptions {
    batch: Option<usize>,
    queries: Option<String>,
    delta: bool,
    threads: usize,
    save: Option<String>,
}

impl UpdateCliOptions {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut options = Self {
            batch: None,
            queries: None,
            delta: false,
            threads: 4,
            save: None,
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--batch" => {
                    i += 1;
                    options.batch = Some(
                        args.get(i)
                            .and_then(|s| s.parse().ok())
                            .filter(|&n: &usize| n > 0)
                            .ok_or("--batch needs a positive number")?,
                    );
                }
                "--queries" => {
                    i += 1;
                    options.queries = Some(args.get(i).ok_or("--queries needs a path")?.clone());
                }
                "--delta" => options.delta = true,
                "--threads" => {
                    i += 1;
                    options.threads = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .ok_or("--threads needs a number")?;
                }
                "--save" => {
                    i += 1;
                    options.save = Some(args.get(i).ok_or("--save needs a snapshot path")?.clone());
                }
                other => return Err(format!("unknown update flag {other:?}")),
            }
            i += 1;
        }
        Ok(options)
    }
}

/// `listen`: start the HTTP front door on a resident pool and block
/// until stdin closes (or sends `quit`), then drain gracefully. Reading
/// stdin — rather than a signal — keeps shutdown drivable from CI and
/// scripts: closing the pipe is the drain request.
fn do_listen(args: &[String]) -> Result<(), String> {
    // Data source: either the classic text pair, or `--snapshot FILE`
    // restoring an HGMB v2 snapshot (index included — no re-indexing on
    // the serve path's cold start).
    let (data, flags) = if args.first().map(String::as_str) == Some("--snapshot") {
        let path = args.get(1).ok_or("--snapshot needs a file")?;
        let graph = io::load_snapshot(Path::new(path))
            .map_err(|e| format!("loading snapshot {path}: {e}"))?;
        (std::sync::Arc::new(graph), &args[2..])
    } else {
        if args.len() < 2 {
            return Err("listen needs <labels> <edges> or --snapshot <file>".into());
        }
        (std::sync::Arc::new(load(&args[0], &args[1])?), &args[2..])
    };
    let mut config = hgmatch_server::FrontDoorConfig::from_env();

    let mut i = 0;
    while i < flags.len() {
        match flags[i].as_str() {
            "--addr" => {
                i += 1;
                config.addr = flags.get(i).ok_or("--addr needs HOST:PORT")?.clone();
            }
            "--threads" => {
                i += 1;
                let n: usize = flags
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--threads needs a number")?;
                config.serve.threads = n.max(1);
                config.queue_depth = config.queue_depth.max(n * 4);
            }
            "--http-threads" => {
                i += 1;
                config.http_threads = flags
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--http-threads needs a number")?;
            }
            "--queue-depth" => {
                i += 1;
                config.queue_depth = flags
                    .get(i)
                    .and_then(|s| s.parse::<usize>().ok())
                    .ok_or("--queue-depth needs a number")?
                    .max(1);
            }
            "--tenant-qps" => {
                i += 1;
                config.tenant_qps = flags
                    .get(i)
                    .and_then(|s| s.parse::<f64>().ok())
                    .ok_or("--tenant-qps needs a number")?
                    .max(0.0);
            }
            "--admit-cost" => {
                i += 1;
                config.admit_cost = flags
                    .get(i)
                    .and_then(|s| s.parse::<f64>().ok())
                    .ok_or("--admit-cost needs a number")?;
            }
            "--timeout" => {
                i += 1;
                let secs: f64 = flags
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--timeout needs seconds")?;
                config.serve.default_timeout = Some(Duration::from_secs_f64(secs));
            }
            "--quantum" => {
                i += 1;
                config.serve.fairness_quantum = flags
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--quantum needs a number")?;
            }
            "--plan-cache" => {
                i += 1;
                config.serve.plan_cache_capacity = flags
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--plan-cache needs a number")?;
            }
            other => return Err(format!("unknown listen flag {other:?}")),
        }
        i += 1;
    }

    let addr = config.addr.clone();
    let door = hgmatch_server::FrontDoor::bind(data, config)
        .map_err(|e| format!("binding {addr}: {e}"))?;
    println!("listening on http://{}", door.local_addr());
    println!("POST /match, GET /metrics, GET /healthz; stdin EOF or `quit` drains");

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "quit" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }

    let stats = door.shutdown();
    println!(
        "drained: {} admitted, {} completed, {} limit, {} timed out, {} cancelled",
        stats.admitted, stats.completed, stats.limit_reached, stats.timed_out, stats.cancelled,
    );
    println!(
        "latency split: queue-wait {:.4}s total, execution {:.4}s total",
        stats.queue_wait_total.as_secs_f64(),
        stats.execution_total.as_secs_f64(),
    );
    Ok(())
}

/// `update`: apply an insert/delete stream to a dynamic graph, one
/// snapshot epoch per batch, optionally re-answering a standing query
/// list (and delta-matching it) after every epoch.
fn do_update(args: &[String]) -> Result<(), String> {
    use hgmatch_core::{delta_match, DeltaBatch};
    use hgmatch_hypergraph::dynamic::parse_update_stream;
    use hgmatch_hypergraph::{DynamicHypergraph, ShardedHypergraph, SnapshotDelta, UpdateOp};

    /// The update stream's write path: one monolithic writer, or a
    /// hash-partitioned sharded plane (`HGMATCH_SHARDS` > 1) whose merged
    /// snapshots are indistinguishable from the monolithic ones.
    enum DataPlane {
        Mono(DynamicHypergraph),
        Sharded(ShardedHypergraph),
    }

    impl DataPlane {
        fn apply(&mut self, op: &UpdateOp) -> hgmatch_hypergraph::Result<bool> {
            match self {
                DataPlane::Mono(d) => d.apply(op),
                DataPlane::Sharded(s) => s.apply(op),
            }
        }

        fn snapshot(&mut self) -> SnapshotDelta {
            match self {
                DataPlane::Mono(d) => d.snapshot(),
                DataPlane::Sharded(s) => s.snapshot(),
            }
        }
    }

    if args.len() < 3 {
        return Err("update needs <labels> <edges> <stream.txt>".into());
    }
    let base = load(&args[0], &args[1])?;
    let stream_text = std::fs::read_to_string(&args[2])
        .map_err(|e| format!("reading stream {}: {e}", args[2]))?;
    let ops = parse_update_stream(&stream_text).map_err(|e| format!("stream: {e}"))?;
    if ops.is_empty() {
        return Err("update stream is empty".into());
    }
    let options = UpdateCliOptions::parse(&args[3..])?;

    let mut queries: Vec<(String, hgmatch_hypergraph::Hypergraph)> = Vec::new();
    if let Some(path) = &options.queries {
        let list = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        for (lineno, line) in list.lines().enumerate() {
            if let Some(q) =
                parse_query_spec(line).map_err(|e| format!("line {}: {e}", lineno + 1))?
            {
                queries.push((format!("q{}", lineno + 1), q));
            }
        }
    }

    let num_shards = hgmatch_hypergraph::env_shards();
    let mut dynamic = if num_shards > 1 {
        println!("data plane: {num_shards} shards (HGMATCH_SHARDS)");
        DataPlane::Sharded(
            ShardedHypergraph::from_hypergraph(&base, num_shards).map_err(|e| e.to_string())?,
        )
    } else {
        DataPlane::Mono(DynamicHypergraph::from_hypergraph(&base))
    };
    let mut previous = dynamic.snapshot().graph;
    let server = (!queries.is_empty()).then(|| {
        MatchServer::new(
            std::sync::Arc::clone(&previous),
            ServeConfig::default().with_threads(options.threads),
        )
    });
    let mut counts: Vec<u64> = Vec::new();
    let serve_begin = Instant::now();
    let mut served = 0usize;
    if let Some(server) = &server {
        for (name, query) in &queries {
            let outcome = server
                .run(query, QueryOptions::count())
                .map_err(|e| format!("{name}: {e}"))?;
            println!("epoch 0\t{name}\tembeddings={}", outcome.count);
            counts.push(outcome.count);
            served += 1;
        }
    }

    let batch_size = options.batch.unwrap_or(ops.len());
    let begin = Instant::now();
    let mut applied = 0usize;
    let mut inserts = 0usize;
    let mut deletes = 0usize;
    let mut vertex_adds = 0usize;
    let mut noops = 0usize;
    let mut snapshot_time = Duration::ZERO;
    for (round, chunk) in ops.chunks(batch_size).enumerate() {
        for op in chunk {
            let effective = dynamic.apply(op).map_err(|e| format!("op {op:?}: {e}"))?;
            applied += 1;
            match (op, effective) {
                (_, false) => noops += 1,
                (UpdateOp::Delete(_), true) => deletes += 1,
                (UpdateOp::AddVertex(_), true) => vertex_adds += 1,
                (UpdateOp::Insert(_), true) => inserts += 1,
            }
        }
        let snap_begin = Instant::now();
        let delta = dynamic.snapshot();
        snapshot_time += snap_begin.elapsed();
        let epoch = round + 1;
        println!(
            "epoch {epoch}: applied {} ops (graph: {} edges, {} touched labels, sids {})",
            chunk.len(),
            delta.graph.num_edges(),
            delta.touched_labels.len(),
            if delta.sids_stable {
                "stable"
            } else {
                "shifted"
            },
        );
        if let Some(server) = &server {
            server.update_data(
                std::sync::Arc::clone(&delta.graph),
                &delta.touched_labels,
                delta.sids_stable,
            );
            let batch = options
                .delta
                .then(|| DeltaBatch::between(&previous, &delta.graph));
            for (i, (name, query)) in queries.iter().enumerate() {
                let outcome = server
                    .run(query, QueryOptions::count())
                    .map_err(|e| format!("{name}: {e}"))?;
                let mut line = format!(
                    "epoch {epoch}\t{name}\tembeddings={}\tplan_cached={}",
                    outcome.count,
                    if outcome.plan_cached { "yes" } else { "no" },
                );
                if let Some(batch) = &batch {
                    let d = delta_match(&previous, &delta.graph, query, batch)
                        .map_err(|e| format!("{name}: {e}"))?;
                    // Signed arithmetic: a buggy delta must surface as
                    // MISMATCH, not as an underflow panic.
                    let predicted =
                        counts[i] as i128 + d.gained.len() as i128 - d.lost.len() as i128;
                    line.push_str(&format!(
                        "\tgained={}\tlost={}\tdelta_check={}",
                        d.gained.len(),
                        d.lost.len(),
                        if predicted == outcome.count as i128 {
                            "ok"
                        } else {
                            "MISMATCH"
                        },
                    ));
                    if predicted != outcome.count as i128 {
                        return Err(format!(
                            "{name}: delta predicts {predicted}, full run found {}",
                            outcome.count
                        ));
                    }
                }
                println!("{line}");
                counts[i] = outcome.count;
                served += 1;
            }
        }
        previous = delta.graph;
    }

    let secs = begin.elapsed().as_secs_f64();
    println!(
        "applied {applied} ops ({inserts} edge inserts, {deletes} deletes, {vertex_adds} \
         vertex adds, {noops} no-ops) in {secs:.4}s ({:.0} ops/s), snapshots took {:.4}s",
        applied as f64 / secs.max(1e-9),
        snapshot_time.as_secs_f64(),
    );
    let stats = previous.stats();
    println!("final graph:\t|V|\t|E|\t|Sigma|\tamax");
    println!(
        "\t{}\t{}\t{}\t{}",
        previous.num_vertices(),
        previous.num_edges(),
        previous.num_labels(),
        stats.max_arity
    );
    if let Some(server) = &server {
        // `served` counts every run: the epoch-0 baseline plus one
        // re-answer per query per epoch.
        print_aggregate(server, served, serve_begin.elapsed());
    }
    if let Some(path) = &options.save {
        io::save_snapshot(&previous, Path::new(path)).map_err(|e| e.to_string())?;
        println!("saved snapshot to {path}");
    }
    Ok(())
}

/// `snapshot save|load`: persist a built index as a checksummed HGMB v2
/// snapshot, or restore one and print its stats — the restore path never
/// re-runs indexing, it deserialises the postings verbatim.
fn do_snapshot(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("save") => {
            let [_, labels, edges, out] = args else {
                return Err("snapshot save needs <labels> <edges> <out.hgsnap>".into());
            };
            let build_begin = Instant::now();
            let graph = load(labels, edges)?;
            let build = build_begin.elapsed();
            let save_begin = Instant::now();
            io::save_snapshot(&graph, Path::new(out)).map_err(|e| e.to_string())?;
            let bytes = std::fs::metadata(out).map_err(|e| e.to_string())?.len();
            println!(
                "saved {out}: {bytes} bytes ({} vertices, {} edges); \
                 build {:.4}s, encode+write {:.4}s",
                graph.num_vertices(),
                graph.num_edges(),
                build.as_secs_f64(),
                save_begin.elapsed().as_secs_f64(),
            );
            Ok(())
        }
        Some("load") => {
            let [_, file] = args else {
                return Err("snapshot load needs <file.hgsnap>".into());
            };
            let begin = Instant::now();
            let graph =
                io::load_snapshot(Path::new(file)).map_err(|e| format!("loading {file}: {e}"))?;
            let restore = begin.elapsed();
            println!(
                "restored {file} in {:.4}s (no re-indexing)",
                restore.as_secs_f64()
            );
            let stats = graph.stats();
            let index_bytes: usize = graph
                .partitions()
                .iter()
                .map(|p| p.index().size_bytes())
                .sum();
            println!("|V|\t|E|\t|Sigma|\tamax\tpartitions\tindex_bytes");
            println!(
                "{}\t{}\t{}\t{}\t{}\t{}",
                graph.num_vertices(),
                graph.num_edges(),
                graph.num_labels(),
                stats.max_arity,
                graph.partitions().len(),
                index_bytes,
            );
            Ok(())
        }
        _ => Err("snapshot needs a subcommand: save | load".into()),
    }
}

/// `gen-stream`: emit a random insert/delete stream for a dataset.
fn do_gen_stream(args: &[String]) -> Result<(), String> {
    let [labels, edges, ops, ratio, seed, out] = args else {
        return Err(
            "gen-stream needs <labels> <edges> <ops> <insert-ratio> <seed> <out.txt>".into(),
        );
    };
    let base = load(labels, edges)?;
    let ops: usize = ops.parse().map_err(|_| "ops must be an integer")?;
    let insert_ratio: f64 = ratio.parse().map_err(|_| "insert-ratio must be a number")?;
    if !(0.0..=1.0).contains(&insert_ratio) {
        return Err(format!(
            "insert-ratio must be in [0, 1], got {insert_ratio}"
        ));
    }
    let seed: u64 = seed.parse().map_err(|_| "seed must be an integer")?;
    // The generator draws hyperedges of arity ≥ 2 over the base graph's
    // vertex universe (and asserts on degenerate inputs): reject those as
    // CLI errors like every other subcommand does.
    if base.num_vertices() < 2 {
        return Err(format!(
            "gen-stream needs a base graph with at least 2 vertices, got {}",
            base.num_vertices()
        ));
    }
    let stream = hgmatch_datasets::generate_update_stream(
        &base,
        &hgmatch_datasets::UpdateStreamConfig {
            ops,
            insert_ratio,
            seed,
            ..Default::default()
        },
    );
    let inserts = stream
        .iter()
        .filter(|op| matches!(op, hgmatch_hypergraph::UpdateOp::Insert(_)))
        .count();
    std::fs::write(
        out,
        hgmatch_hypergraph::dynamic::write_update_stream(&stream),
    )
    .map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {} ops ({inserts} inserts, {} deletes) to {out}",
        stream.len(),
        stream.len() - inserts
    );
    Ok(())
}

fn explain(args: &[String]) -> Result<(), String> {
    let mut json = false;
    let mut observed = false;
    let mut files: Vec<&String> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            "--observed" => observed = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown explain flag {other:?}"))
            }
            _ => files.push(arg),
        }
    }
    if json && observed {
        return Err("--json and --observed are mutually exclusive".into());
    }
    let [labels, edges, qlabels, qedges] = files.as_slice() else {
        return Err("explain needs data and query label/edge files [--json|--observed]".into());
    };
    if observed {
        print!(
            "{}",
            explain_observed_report(labels, edges, qlabels, qedges)?
        );
    } else {
        print!("{}", explain_report(labels, edges, qlabels, qedges, json)?);
    }
    Ok(())
}

/// Builds the full `explain` output for the given data/query files —
/// the cost-based plan's order and per-step estimates next to the greedy
/// baseline, plus the compiled dataflow (text mode only). Deterministic
/// (stable field order, fixed float precision), so CI golden-files it.
pub fn explain_report(
    labels: &str,
    edges: &str,
    qlabels: &str,
    qedges: &str,
    json: bool,
) -> Result<String, String> {
    use hgmatch_core::{Explain, Planner, QueryGraph};
    let data = load(labels, edges)?;
    let query = load(qlabels, qedges)?;
    let q = QueryGraph::new(&query).map_err(|e| e.to_string())?;
    let explain = Explain::new(&q, &data);
    if json {
        return Ok(explain.json());
    }
    // Compile the order the report already chose — one planning pass, and
    // the dataflow is guaranteed consistent with the cost tables below.
    let plan = Planner::plan_with_order(&q, &data, explain.chosen.order.clone())
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    out.push_str(&format!(
        "matching order (query hyperedges): {:?}\n",
        plan.order()
    ));
    out.push_str(&format!("{}\n", Dataflow::from_plan(&plan, &data)));
    out.push_str(&explain.text());
    Ok(out)
}

/// Builds the `explain --observed` report: compiles the chosen order,
/// executes it once on a single thread (the sequential reference
/// executor — never re-planned, so the recorded counts belong to exactly
/// this order), and emits deterministic JSON pairing the planner's
/// per-position estimate with the observed candidate count. `ratio` is
/// `observed / max(estimated, 1)` — the exact quantity the adaptive
/// trigger compares against `HGMATCH_REPLAN_RATIO` (DESIGN.md §15), so a
/// position whose ratio exceeds the configured trigger here is a position
/// a parallel run would re-plan at.
pub fn explain_observed_report(
    labels: &str,
    edges: &str,
    qlabels: &str,
    qedges: &str,
) -> Result<String, String> {
    use hgmatch_core::{CountSink, Explain, Planner, QueryGraph};
    let data = load(labels, edges)?;
    let query = load(qlabels, qedges)?;
    let q = QueryGraph::new(&query).map_err(|e| e.to_string())?;
    let explain = Explain::new(&q, &data);
    let plan = Planner::plan_with_order(&q, &data, explain.chosen.order.clone())
        .map_err(|e| e.to_string())?;
    let sink = CountSink::new();
    let stats = Matcher::new(&data).run_plan(&plan, &sink);
    let m = &stats.metrics;
    let steps: Vec<String> = (0..plan.len())
        .map(|pos| {
            let est = plan.est_candidates()[pos];
            let observed = m.steps.candidates().get(pos).copied().unwrap_or(0);
            let partials = m.steps.partials().get(pos).copied().unwrap_or(0);
            format!(
                "{{\"position\": {pos}, \"query_edge\": {}, \"estimated\": {}, \"observed\": {observed}, \"partials\": {partials}, \"ratio\": {}}}",
                plan.order()[pos],
                fmt4(est),
                fmt4(observed as f64 / est.max(1.0))
            )
        })
        .collect();
    // `materialized` counts embeddings actually handed to the sink as
    // vectors (0 here: the observed run counts, it does not collect) —
    // the same found-vs-materialized split `/metrics` exports
    // (DESIGN.md §18.3).
    Ok(format!(
        "{{\n  \"order\": {:?},\n  \"embeddings\": {},\n  \"materialized\": {},\n  \"steps\": [{}]\n}}\n",
        plan.order(),
        m.embeddings,
        m.materialized,
        steps.join(", ")
    ))
}

/// Fixed-precision float rendering for the observed report — mirrors the
/// core `Explain` formatting: `{:.4}` is exact for integers and stable
/// across platforms.
fn fmt4(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        format!("{:.4e}", f64::MAX)
    }
}

fn do_sample(args: &[String]) -> Result<(), String> {
    let [labels, edges, setting_name, seed, out_labels, out_edges] = args else {
        return Err("sample-query needs 6 arguments".into());
    };
    let data = load(labels, edges)?;
    let setting = standard_settings()
        .into_iter()
        .find(|s| s.name == setting_name.as_str())
        .ok_or_else(|| format!("unknown setting {setting_name:?} (q2/q3/q4/q6)"))?;
    let seed: u64 = seed.parse().map_err(|_| "seed must be an integer")?;
    let query = sample_query(&data, &setting, seed)
        .ok_or("could not sample a query with this setting/seed")?;
    io::save_text(&query, Path::new(out_labels), Path::new(out_edges))
        .map_err(|e| e.to_string())?;
    println!(
        "sampled {}: |V(q)| = {}, |E(q)| = {}",
        setting.name,
        query.num_vertices(),
        query.num_edges()
    );
    Ok(())
}
