//! Serve-layer adaptive re-optimization (DESIGN.md §15) under concurrent
//! data epochs: a cached plan whose estimates went stale *without*
//! tripping the drift threshold (DESIGN.md §13.4 keeps the entry — its
//! partition ids are valid and its order was near-optimal at plan time)
//! is corrected *mid-query* by the runtime trigger; the re-planned suffix
//! executes against the snapshot the query pinned at submission, never a
//! newer epoch; and the corrected plan is written back to the cache only
//! when the entry still belongs to the pinned epoch, converging repeated
//! submissions onto the corrected order.
//!
//! The fixture is the canonical chain-with-branch adversary: an A–B–C
//! chain whose C fans out into a junk {C,D} branch and a {C,E} filter.
//! At prime time the junk branch is one row and the filter is two, so the
//! honest planner orders the junk edge before the filter; an update then
//! grows the branch 30× while staying under an (absurdly large) drift
//! threshold, so the *same* entry serves the next submission with its
//! junk-first order and 30×-off estimates — only runtime feedback can
//! correct it.

use std::sync::Arc;

use hgmatch_core::serve::{MatchServer, QueryOptions, QueryStatus, ServeConfig};
use hgmatch_core::{MatchConfig, Matcher, QueryOutcome};
use hgmatch_datasets::testgen::env_workers;
use hgmatch_hypergraph::{DynamicHypergraph, Hypergraph, HypergraphBuilder, Label};

/// Chain-with-branch writer: {A,B}, {B,C}, one junk {C,D} row, two
/// selective {C,E} rows. Labels A=0 B=1 C=2 D=3 E=4.
fn base_writer() -> DynamicHypergraph {
    let mut d = DynamicHypergraph::new();
    d.add_vertices(1, Label::new(0)); // A: v0
    d.add_vertices(1, Label::new(1)); // B: v1
    d.add_vertices(1, Label::new(2)); // C: v2
    d.add_vertices(1, Label::new(3)); // D: v3
    d.add_vertices(2, Label::new(4)); // E: v4, v5
    d.insert_hyperedge(vec![0, 1]).unwrap(); // {A,B}
    d.insert_hyperedge(vec![1, 2]).unwrap(); // {B,C}
    d.insert_hyperedge(vec![2, 3]).unwrap(); // {C,D}
    d.insert_hyperedge(vec![2, 4]).unwrap(); // {C,E}
    d.insert_hyperedge(vec![2, 5]).unwrap(); // {C,E}
    d
}

/// Grows the junk {C,D} branch by `n` fresh rows (cardinality drift, same
/// signatures — partition ids stay stable).
fn grow_junk(writer: &mut DynamicHypergraph, n: u32) {
    for _ in 0..n {
        let d = writer.add_vertex(Label::new(3)).raw();
        writer.insert_hyperedge(vec![2, d]).unwrap();
    }
}

/// The standing query: the A–B–C chain plus both branches off C.
fn branch_query() -> Hypergraph {
    let mut b = HypergraphBuilder::new();
    for &l in &[0u32, 1, 2, 3, 4] {
        b.add_vertex(Label::new(l));
    }
    b.add_edge(vec![0, 1]).unwrap(); // q0 {A,B}
    b.add_edge(vec![1, 2]).unwrap(); // q1 {B,C}
    b.add_edge(vec![2, 3]).unwrap(); // q2 {C,D} — the (growable) fan-out
    b.add_edge(vec![2, 4]).unwrap(); // q3 {C,E} — the filter
    b.build().unwrap()
}

/// A server whose plan cache never drift-drops entries (threshold 1e18),
/// so runtime feedback is the *only* thing correcting stale estimates,
/// with an eager trigger (ratio 0.5: any boundary may re-check).
fn adaptive_server(data: Arc<Hypergraph>) -> MatchServer {
    MatchServer::new(
        data,
        ServeConfig {
            match_config: MatchConfig::default().with_replan_ratio(0.5),
            ..ServeConfig::default()
                .with_threads(env_workers(2))
                .with_replan_drift(1e18)
        },
    )
}

/// Sorted embeddings of a fresh sequential run on `data` — the oracle the
/// served outcome must match exactly.
fn fresh_embeddings(data: &Hypergraph, query: &Hypergraph) -> Vec<hgmatch_core::Embedding> {
    Matcher::new(data).find_all(query).expect("fresh run")
}

fn served_embeddings(outcome: &QueryOutcome) -> &[hgmatch_core::Embedding] {
    outcome.embeddings.as_deref().expect("collected")
}

/// The convergence loop end-to-end: stale cached entry → mid-query
/// re-plan → write-back → subsequent submissions start corrected and stop
/// re-planning.
#[test]
fn stale_cached_plan_replans_midquery_and_converges() {
    let mut writer = base_writer();
    let first = writer.snapshot();
    let server = adaptive_server(Arc::clone(&first.graph));
    let query = branch_query();

    // Prime the cache on the small snapshot (junk-first is optimal here).
    let outcome = server.run(&query, QueryOptions::collect_all()).unwrap();
    assert!(!outcome.plan_cached);
    assert_eq!(
        served_embeddings(&outcome),
        fresh_embeddings(&first.graph, &query).as_slice()
    );

    // Grow the junk branch 30×: cardinality drift the huge threshold
    // ignores, so the stale junk-first entry survives into the new epoch.
    grow_junk(&mut writer, 29);
    let delta = writer.snapshot();
    assert!(delta.sids_stable);
    server.update_data(
        Arc::clone(&delta.graph),
        &delta.touched_labels,
        delta.sids_stable,
    );

    let before = server.stats();
    assert_eq!(before.plans_replanned, 0, "drift never drops the entry");
    let outcome = server.run(&query, QueryOptions::collect_all()).unwrap();
    assert!(outcome.plan_cached, "the stale entry must have been reused");
    assert_eq!(outcome.data_epoch, 1);
    let oracle = fresh_embeddings(&delta.graph, &query);
    assert_eq!(oracle.len(), 60);
    assert_eq!(served_embeddings(&outcome), oracle.as_slice());
    assert!(
        outcome.metrics.replans >= 1,
        "estimates 30× off must adopt a mid-query re-plan"
    );

    let after = server.stats();
    assert!(after.replans_midquery > before.replans_midquery);
    assert!(
        after.estimate_corrections > before.estimate_corrections,
        "the corrected plan must be written back to the same-epoch entry"
    );

    // Convergence: the next submission starts from the corrected plan —
    // same results, and the (still eager) trigger only *confirms* now, so
    // no further re-plan is adopted.
    let converged = server.run(&query, QueryOptions::collect_all()).unwrap();
    assert!(converged.plan_cached);
    assert_eq!(served_embeddings(&converged), oracle.as_slice());
    assert_eq!(
        converged.metrics.replans, 0,
        "a corrected plan must not re-trigger on the same observations"
    );
    assert_eq!(
        server.stats().replans_midquery,
        after.replans_midquery,
        "converged submissions stop re-planning"
    );
}

/// A mid-query re-plan races concurrently published epochs: the re-planned
/// suffix keeps executing against the snapshot the query pinned at
/// submission, and later submissions see the newer epoch's answer.
#[test]
fn midquery_replan_keeps_pinned_snapshot_across_epochs() {
    let mut writer = base_writer();
    let first = writer.snapshot();
    let server = adaptive_server(Arc::clone(&first.graph));
    let query = branch_query();
    server.run(&query, QueryOptions::count()).unwrap(); // prime

    // Stale the entry (junk ×30), pin a query to the new epoch 1, and
    // while it runs (re-planning mid-flight), publish epoch 2 whose
    // answer differs: a third {C,E} filter row grows every count by 50%.
    grow_junk(&mut writer, 29);
    let epoch1 = writer.snapshot();
    server.update_data(
        Arc::clone(&epoch1.graph),
        &epoch1.touched_labels,
        epoch1.sids_stable,
    );
    let handle = server.submit(&query, QueryOptions::collect_all()).unwrap();

    let e = writer.add_vertex(Label::new(4)).raw();
    writer.insert_hyperedge(vec![2, e]).unwrap();
    let epoch2 = writer.snapshot();
    server.update_data(
        Arc::clone(&epoch2.graph),
        &epoch2.touched_labels,
        epoch2.sids_stable,
    );

    let outcome = handle.wait();
    assert_eq!(outcome.status, QueryStatus::Completed);
    assert_eq!(outcome.data_epoch, 1, "the query stays on its pinned epoch");
    let pinned_oracle = fresh_embeddings(&epoch1.graph, &query);
    let newer_oracle = fresh_embeddings(&epoch2.graph, &query);
    assert_eq!(pinned_oracle.len(), 60);
    assert_eq!(newer_oracle.len(), 90);
    assert_eq!(
        served_embeddings(&outcome),
        pinned_oracle.as_slice(),
        "a re-planned suffix must not leak rows from a newer epoch"
    );

    // Submissions after the updates see epoch 2's answer (whether or not
    // the racing write-back landed before epoch 2 re-tagged the entry —
    // the epoch gate makes both interleavings serve correct plans).
    let fresh = server.run(&query, QueryOptions::collect_all()).unwrap();
    assert_eq!(fresh.data_epoch, 2);
    assert_eq!(served_embeddings(&fresh), newer_oracle.as_slice());
}

/// Cooperative cancellation landing while the query is re-planning (the
/// trigger fires constantly at ratio 0.5 on a large fan-out): the query
/// stops promptly, the pool survives, and subsequent submissions of the
/// same shape are served correctly.
#[test]
fn cancellation_during_replans_leaves_server_consistent() {
    let mut writer = base_writer();
    grow_junk(&mut writer, 2999); // 3000 junk rows: a run long enough to cancel into
    let snap = writer.snapshot();
    let server = adaptive_server(Arc::clone(&snap.graph));
    let query = branch_query();

    let oracle = fresh_embeddings(&snap.graph, &query);
    assert_eq!(oracle.len(), 6000);

    let handle = server.submit(&query, QueryOptions::collect_all()).unwrap();
    handle.cancel();
    let outcome = handle.wait();
    match outcome.status {
        QueryStatus::Cancelled => {
            assert!(
                outcome.count <= oracle.len() as u64,
                "a cancelled query reports only what it found"
            );
        }
        QueryStatus::Completed => {
            // The pool outran the cancel — then the answer must be exact.
            assert_eq!(served_embeddings(&outcome), oracle.as_slice());
        }
        other => panic!("unexpected status {other:?}"),
    }

    // The pool is intact and the shape still serves exactly.
    let outcome = server.run(&query, QueryOptions::collect_all()).unwrap();
    assert_eq!(outcome.status, QueryStatus::Completed);
    assert_eq!(served_embeddings(&outcome), oracle.as_slice());
    server.shutdown();
}
