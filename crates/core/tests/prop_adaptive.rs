//! Switch-point differential harness for adaptive mid-query
//! re-optimization (DESIGN.md §15): with the replan ratio pinned near
//! zero, *every* completed step boundary trips the trigger, so random
//! planted instances exercise re-plan adoption, version resolution and
//! mid-subtree switching as hard as the instance allows. The property is
//! the same multiset invariant as `prop_orders.rs` — the adaptive run
//! must deliver exactly the embedding multiset of a static run of the
//! same plan, across kernel modes {Auto, forced-scalar} × workers
//! {1, 4} × forced mid-flight splitting (threshold 4, chunk 2, so the
//! split-suppression/drain handshake with re-planning runs constantly).
//!
//! The plans under test are *random connected orders*, not the planner's:
//! a random order's suffix is rarely the cost-optimal completion of its
//! prefix, so the forced trigger adopts corrected suffixes constantly and
//! tasks born before each switch must finish under their birth version.
//! (A deliberately mis-costed plan whose *best* order walks into the trap
//! first would never adopt anything: once the misestimated edge is in the
//! matched prefix, scaling its cardinality multiplies every completion
//! equally, so the compiled suffix is already optimal — the `confirming
//! search` path. Random orders sidestep that fixed point.)
//!
//! The CI `adaptive-stress` job replays this suite with
//! `HGMATCH_SPLIT_THRESHOLD=4` and both kernel modes forced.

use std::sync::Mutex;

use hgmatch_core::engine::ParallelEngine;
use hgmatch_core::{CollectSink, Embedding, MatchConfig, Matcher, Plan, Planner, QueryGraph};
use hgmatch_datasets::testgen::{random_arity_hypergraph, random_subquery, TestRng};
use hgmatch_hypergraph::setops::{self, KernelMode};
use hgmatch_hypergraph::Hypergraph;
use proptest::prelude::*;
use std::sync::Arc;

/// Kernel mode is process-global: serialise mode-flipping tests.
static MODE_LOCK: Mutex<()> = Mutex::new(());

fn lock_mode() -> std::sync::MutexGuard<'static, ()> {
    MODE_LOCK.lock().unwrap_or_else(|poisoned| {
        setops::set_kernel_mode(KernelMode::Auto);
        poisoned.into_inner()
    })
}

/// Draws a random *connected* order (the same scheme as `prop_orders.rs`).
fn random_connected_order(query: &QueryGraph, rng: &mut TestRng) -> Vec<u32> {
    let ne = query.num_edges();
    let mut order = Vec::with_capacity(ne);
    let mut mask = 0u64;
    for step in 0..ne {
        let candidates: Vec<u32> = (0..ne as u32)
            .filter(|&e| {
                mask & (1 << e) == 0 && (step == 0 || query.adjacent_edges(e as usize) & mask != 0)
            })
            .collect();
        let pool: Vec<u32> = if candidates.is_empty() {
            (0..ne as u32).filter(|&e| mask & (1 << e) == 0).collect()
        } else {
            candidates
        };
        let e = pool[rng.below(pool.len() as u64) as usize];
        mask |= 1 << e;
        order.push(e);
    }
    order
}

/// Static reference run of `plan` (never re-planned — `Matcher::run_plan`
/// is the order-faithful entry point).
fn run_static(plan: &Plan, data: &Hypergraph, threads: usize) -> Vec<Embedding> {
    let matcher = Matcher::with_config(data, MatchConfig::parallel(threads));
    let sink = CollectSink::new();
    matcher.run_plan(plan, &sink);
    sink.into_results()
}

/// Adaptive run of the same plan with the trigger pinned to fire at every
/// completed step boundary and splitting forced. Returns the sorted
/// embeddings plus how many re-plans were adopted.
fn run_adaptive(
    query: &QueryGraph,
    plan: &Arc<Plan>,
    data: &Hypergraph,
    threads: usize,
) -> (Vec<Embedding>, u64) {
    let cfg = MatchConfig::parallel(threads)
        .with_replan_ratio(1e-9)
        .with_split_threshold(4)
        .with_split_chunk(2);
    let sink = CollectSink::new();
    let stats = ParallelEngine::run_adaptive(query, plan, data, &sink, &cfg);
    (sink.into_results(), stats.metrics.replans)
}

/// The property: the adaptive run's embedding multiset equals the static
/// run's, for random orders × kernel modes × worker counts. Returns how
/// many re-plans the instance adopted, so callers can assert the harness
/// is not vacuous in aggregate.
fn check_case(
    seed: u64,
    nv: usize,
    ne: usize,
    labels: u32,
    k: usize,
) -> Result<u64, TestCaseError> {
    let data = random_arity_hypergraph(seed, nv, ne, labels, 2, 4);
    let Some(query) = random_subquery(&data, seed ^ 0xADA9, k) else {
        return Ok(0); // dead-end walk: nothing to check
    };
    let q = QueryGraph::new(&query).expect("planted query is valid");

    let mut rng = TestRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let plans: Vec<(Vec<u32>, Arc<Plan>)> = (0..3)
        .map(|_| {
            let order = random_connected_order(&q, &mut rng);
            let plan = Planner::plan_with_order(&q, &data, order.clone())
                .expect("any permutation compiles");
            (order, Arc::new(plan))
        })
        .collect();

    let mut replans_total = 0u64;
    let _guard = lock_mode();
    for mode in [KernelMode::Auto, KernelMode::ForceScalar] {
        setops::set_kernel_mode(mode);
        for (order, plan) in &plans {
            let expected = run_static(plan, &data, 1);
            for threads in [1usize, 4] {
                let (found, replans) = run_adaptive(&q, plan, &data, threads);
                replans_total += replans;
                prop_assert_eq!(
                    &found,
                    &expected,
                    "adaptive multiset diverged: order {:?} mode {:?} threads {}",
                    order,
                    mode,
                    threads
                );
            }
        }
    }
    setops::set_kernel_mode(KernelMode::Auto);
    Ok(replans_total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// 3-edge planted queries: the shortest plans with a re-plannable
    /// suffix at more than one boundary.
    #[test]
    fn three_edge_adaptive_matches_static(seed in 0u64..1u64 << 48) {
        check_case(seed, 20, 44, 2, 3)?;
    }

    /// 4-edge planted queries on denser, label-poor instances (bigger
    /// partitions: more splits racing more re-plans).
    #[test]
    fn four_edge_adaptive_matches_static(seed in 0u64..1u64 << 48) {
        check_case(seed, 16, 60, 2, 4)?;
    }

    /// 5-edge planted queries: longer suffixes, deeper version chains.
    #[test]
    fn five_edge_adaptive_matches_static(seed in 0u64..1u64 << 48) {
        check_case(seed, 18, 52, 3, 5)?;
    }
}

/// Non-vacuousness: over a deterministic seed sweep of the same cases, the
/// forced trigger must actually adopt re-plans (otherwise the whole suite
/// silently degenerates into `prop_orders.rs`).
#[test]
fn forced_trigger_actually_adopts_replans() {
    let mut total = 0u64;
    for seed in 0..12u64 {
        total += check_case(seed, 16, 60, 2, 4).expect("property holds on fixed seeds");
    }
    assert!(
        total > 0,
        "no re-plan was adopted across the deterministic sweep"
    );
}

/// Determinism cross-check on the canonical chain-with-branch adversary: a
/// stale plan that walks into a 30-row junk fan-out re-plans (the honest
/// search puts the selective filter first) and still delivers the static
/// multiset at every worker count.
#[test]
fn branch_adversary_replans_and_matches() {
    use hgmatch_core::CostModel;
    use hgmatch_hypergraph::{HypergraphBuilder, Label};

    let mut b = HypergraphBuilder::new();
    b.add_vertices(1, Label::new(0)); // A
    b.add_vertices(1, Label::new(1)); // B
    b.add_vertices(1, Label::new(2)); // C
    b.add_vertices(30, Label::new(3)); // D
    b.add_vertices(1, Label::new(4)); // E
    b.add_edge(vec![0, 1]).unwrap();
    b.add_edge(vec![1, 2]).unwrap();
    for i in 0..30u32 {
        b.add_edge(vec![2, 3 + i]).unwrap();
    }
    b.add_edge(vec![2, 33]).unwrap();
    let data = b.build().unwrap();

    let mut qb = HypergraphBuilder::new();
    for &l in &[0u32, 1, 2, 3, 4] {
        qb.add_vertex(Label::new(l));
    }
    qb.add_edge(vec![0, 1]).unwrap(); // q0 {A,B}
    qb.add_edge(vec![1, 2]).unwrap(); // q1 {B,C}
    qb.add_edge(vec![2, 3]).unwrap(); // q2 {C,D} — the fan-out
    qb.add_edge(vec![2, 4]).unwrap(); // q3 {C,E} — the filter
    let q = QueryGraph::new(&qb.build().unwrap()).unwrap();

    // Stale statistics: the model believes the fan-out is 1000× smaller,
    // and the pinned order walks into it before the filter.
    let mut model = CostModel::new(&q, &data);
    model.scale_edge(2, 1.0 / 1000.0);
    let plan =
        Arc::new(Planner::plan_with_order_costed(&q, &data, vec![0, 1, 2, 3], &model).unwrap());

    let expected = run_static(&plan, &data, 1);
    assert_eq!(expected.len(), 30);
    for threads in [1usize, 2, 4] {
        let (found, replans) = run_adaptive(&q, &plan, &data, threads);
        assert_eq!(found, expected, "threads {threads}");
        assert!(replans >= 1, "threads {threads}: the stale plan must adopt");
    }
}
