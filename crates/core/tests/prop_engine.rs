//! Property-based tests of the matching engine: executor agreement and
//! structural invariants of returned embeddings on arbitrary instances.

use hgmatch_core::engine::ParallelEngine;
use hgmatch_core::exec::{BfsExecutor, SequentialExecutor};
use hgmatch_core::{CollectSink, CountSink, MatchConfig, Planner, QueryGraph};
use hgmatch_hypergraph::{EdgeId, Hypergraph, HypergraphBuilder, Label};
use proptest::prelude::*;

/// Strategy: a small labelled hypergraph.
fn hypergraph_strategy(
    max_vertices: usize,
    max_edges: usize,
    labels: u32,
) -> impl Strategy<Value = Hypergraph> {
    (2usize..max_vertices).prop_flat_map(move |nv| {
        let label_vec = proptest::collection::vec(0u32..labels, nv);
        let edges = proptest::collection::vec(
            proptest::collection::btree_set(0u32..nv as u32, 1..4usize.min(nv)),
            1..max_edges,
        );
        (label_vec, edges).prop_map(|(labels, edges)| {
            let mut b = HypergraphBuilder::new();
            for &l in &labels {
                b.add_vertex(Label::new(l));
            }
            for e in edges {
                let _ = b.add_edge(e.into_iter().collect()).unwrap();
            }
            b.build().unwrap()
        })
    })
}

/// Picks a connected sub-hypergraph of `data` as the query.
fn planted_query(data: &Hypergraph, picks: &[u8], k: usize) -> Option<Hypergraph> {
    use hgmatch_hypergraph::VertexId;
    if data.num_edges() == 0 {
        return None;
    }
    let mut edges = vec![picks.first().map(|&p| p as u32).unwrap_or(0) % data.num_edges() as u32];
    for &p in picks.iter().skip(1).take(k.saturating_sub(1)) {
        let mut frontier: Vec<u32> = Vec::new();
        for &e in &edges {
            for &v in data.edge_vertices(EdgeId::new(e)) {
                frontier.extend_from_slice(data.incident_edges(VertexId::new(v)));
            }
        }
        frontier.sort_unstable();
        frontier.dedup();
        frontier.retain(|e| !edges.contains(e));
        if frontier.is_empty() {
            break;
        }
        edges.push(frontier[p as usize % frontier.len()]);
    }
    let mut vertices: Vec<u32> = edges
        .iter()
        .flat_map(|&e| data.edge_vertices(EdgeId::new(e)))
        .copied()
        .collect();
    vertices.sort_unstable();
    vertices.dedup();
    let mut b = HypergraphBuilder::new();
    for &v in &vertices {
        b.add_vertex(data.label(VertexId::new(v)));
    }
    for &e in &edges {
        let renumbered: Vec<u32> = data
            .edge_vertices(EdgeId::new(e))
            .iter()
            .map(|&v| vertices.binary_search(&v).unwrap() as u32)
            .collect();
        b.add_edge(renumbered).unwrap();
    }
    Some(b.build().unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn executors_agree(
        data in hypergraph_strategy(20, 30, 3),
        picks in proptest::collection::vec(0u8..255, 1..4),
    ) {
        let Some(query) = planted_query(&data, &picks, picks.len()) else {
            return Ok(());
        };
        let qg = QueryGraph::new(&query).unwrap();
        let plan = Planner::plan(&qg, &data).unwrap();

        let seq = CountSink::new();
        SequentialExecutor::run(&plan, &data, &seq, &MatchConfig::sequential());
        let bfs = CountSink::new();
        BfsExecutor::run(&plan, &data, &bfs, &MatchConfig::sequential());
        let par = CountSink::new();
        ParallelEngine::run(&plan, &data, &par, &MatchConfig::parallel(3));

        prop_assert!(seq.count() >= 1, "planted query must match");
        prop_assert_eq!(seq.count(), bfs.count());
        prop_assert_eq!(seq.count(), par.count());
    }

    #[test]
    fn embeddings_are_structurally_valid(
        data in hypergraph_strategy(16, 24, 2),
        picks in proptest::collection::vec(0u8..255, 2..4),
    ) {
        let Some(query) = planted_query(&data, &picks, picks.len()) else {
            return Ok(());
        };
        let qg = QueryGraph::new(&query).unwrap();
        let plan = Planner::plan(&qg, &data).unwrap();
        let sink = CollectSink::new();
        SequentialExecutor::run(&plan, &data, &sink, &MatchConfig::sequential());

        for m in sink.into_results() {
            // Tuple length and distinctness.
            prop_assert_eq!(m.len(), query.num_edges());
            let mut ids: Vec<u32> = m.raw().to_vec();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), m.len(), "matched data edges must be distinct");
            // Signatures match per query edge, and the mapped union has
            // exactly |V(q)| distinct vertices (Observation V.5 globally).
            let mut union: Vec<u32> = Vec::new();
            for (qe, de) in m.iter().enumerate() {
                prop_assert_eq!(
                    data.edge_signature(de),
                    data.interner().get(&hgmatch_hypergraph::Signature::new(
                        query
                            .edge_vertices(EdgeId::from_index(qe))
                            .iter()
                            .map(|&u| query.label(hgmatch_hypergraph::VertexId::new(u)))
                            .collect()
                    )).unwrap()
                );
                union.extend_from_slice(data.edge_vertices(de));
            }
            union.sort_unstable();
            union.dedup();
            prop_assert_eq!(union.len(), query.num_vertices());
        }
    }

    #[test]
    fn prune_non_incident_is_count_preserving(
        data in hypergraph_strategy(16, 24, 2),
        picks in proptest::collection::vec(0u8..255, 2..4),
    ) {
        let Some(query) = planted_query(&data, &picks, picks.len()) else {
            return Ok(());
        };
        let qg = QueryGraph::new(&query).unwrap();
        let plan = Planner::plan(&qg, &data).unwrap();
        let plain = CountSink::new();
        SequentialExecutor::run(&plan, &data, &plain, &MatchConfig::sequential());
        let pruned = CountSink::new();
        SequentialExecutor::run(
            &plan,
            &data,
            &pruned,
            &MatchConfig::sequential().with_prune_non_incident(true),
        );
        prop_assert_eq!(plain.count(), pruned.count());
    }

    #[test]
    fn first_k_returns_min_k_total(
        data in hypergraph_strategy(14, 20, 2),
        picks in proptest::collection::vec(0u8..255, 1..3),
        k in 1usize..5,
    ) {
        let Some(query) = planted_query(&data, &picks, picks.len()) else {
            return Ok(());
        };
        let matcher = hgmatch_core::Matcher::new(&data);
        let total = matcher.count(&query).unwrap() as usize;
        let first = matcher.find_first(&query, k).unwrap();
        prop_assert_eq!(first.len(), k.min(total));
    }
}
