//! Property test of the first-class aggregation modes (DESIGN.md §18.2):
//! on random planted instances, `CountOnly` / `TopK` / `Sampled` must
//! agree with a materialize-then-aggregate oracle computed in plain code
//! from the full sorted result set — under both kernel families
//! (`Auto` vs `ForceScalar`), worker counts 1 and 4, and forced
//! work-assist splitting (threshold 4, chunk 2).
//!
//! Determinism contract pinned here: top-k is byte-identical to the
//! oracle at *every* worker count (the (score desc, bytes asc) total
//! order leaves no schedule freedom), and the sample is a pure function
//! of (seed, result multiset) — reproducible across worker counts and
//! kernel families.

use hgmatch_core::aggregate::{hash_emb, AggregateMode, AggregateSummary};
use hgmatch_core::{Embedding, MatchConfig, Matcher, ScoreFn};
use hgmatch_datasets::testgen::{random_arity_hypergraph, random_subquery};
use hgmatch_hypergraph::setops::{self, KernelMode};
use proptest::prelude::*;
use std::sync::Mutex;

/// The kernel mode is process-global; every case serialises on this lock
/// so a concurrent case cannot flip the mode mid-run.
static MODE_LOCK: Mutex<()> = Mutex::new(());

fn lock_mode() -> std::sync::MutexGuard<'static, ()> {
    MODE_LOCK.lock().unwrap_or_else(|poisoned| {
        setops::set_kernel_mode(KernelMode::Auto);
        poisoned.into_inner()
    })
}

/// Oracle top-k: sort the full result set by (score desc, bytes asc) and
/// keep the first k — the same total order `TopKState` promises.
fn oracle_top_k(all: &[Embedding], k: usize, score: ScoreFn) -> (Vec<Embedding>, Vec<u64>) {
    let mut scored: Vec<(u64, Embedding)> = all
        .iter()
        .map(|e| (score.score(e.raw()), e.clone()))
        .collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    scored.truncate(k);
    let scores = scored.iter().map(|(s, _)| *s).collect();
    (scored.into_iter().map(|(_, e)| e).collect(), scores)
}

/// Oracle sample: keep the `budget` embeddings with the smallest
/// (priority, bytes) pairs under the seeded content hash, sorted — the
/// pure function of (seed, result multiset) `SampleState` implements.
fn oracle_sample(all: &[Embedding], budget: usize, seed: u64) -> Vec<Embedding> {
    let mut prioritised: Vec<(u64, Embedding)> = all
        .iter()
        .map(|e| (hash_emb(seed, e.raw()), e.clone()))
        .collect();
    prioritised.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    prioritised.truncate(budget);
    let mut embs: Vec<Embedding> = prioritised.into_iter().map(|(_, e)| e).collect();
    embs.sort_unstable();
    embs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn aggregation_modes_match_the_materialize_oracle(
        seed in 0u64..1 << 48,
        k in 1usize..4,
        topk_k in 1usize..5,
        budget in 1usize..5,
        sample_seed in 0u64..1 << 32,
    ) {
        let _guard = lock_mode();
        let data = random_arity_hypergraph(seed, 18, 40, 2, 2, 3);
        let Some(query) = random_subquery(&data, seed ^ 0xA5A5, k) else {
            return Ok(());
        };

        // Oracle: the full sorted result set from the reference run.
        let all = Matcher::new(&data).find_all(&query).unwrap();
        let total = all.len() as u64;
        prop_assert!(total >= 1, "planted query must match");
        let score = if topk_k % 2 == 0 { ScoreFn::EdgeIdSum } else { ScoreFn::MinEdge };
        let (want_topk, want_scores) = oracle_top_k(&all, topk_k, score);
        let want_sample = oracle_sample(&all, budget, sample_seed);

        for kernel in [KernelMode::Auto, KernelMode::ForceScalar] {
            setops::set_kernel_mode(kernel);
            for workers in [1usize, 4] {
                let tag = format!("seed={seed} kernel={kernel:?} workers={workers}");
                let config = MatchConfig::parallel(workers)
                    .with_split_threshold(4)
                    .with_split_chunk(2);
                let matcher = Matcher::with_config(&data, config);

                let out = matcher
                    .aggregate_with(&query, AggregateMode::CountOnly)
                    .unwrap();
                prop_assert_eq!(out.count, total, "count-only: {}", &tag);
                prop_assert!(out.embeddings.is_none(), "count-only materialised: {}", &tag);
                prop_assert_eq!(out.stats.metrics.materialized, 0, "count-only: {}", &tag);

                let out = matcher
                    .aggregate_with(&query, AggregateMode::Materialize)
                    .unwrap();
                prop_assert_eq!(out.count, total, "materialize: {}", &tag);
                prop_assert_eq!(out.embeddings.as_deref(), Some(&all[..]), "materialize: {}", &tag);

                let out = matcher
                    .aggregate_with(&query, AggregateMode::TopK { k: topk_k, score })
                    .unwrap();
                prop_assert_eq!(out.count, total, "top-k count: {}", &tag);
                prop_assert_eq!(
                    out.embeddings.as_deref(),
                    Some(&want_topk[..]),
                    "top-k kept set: {}", &tag
                );
                match &out.summary {
                    AggregateSummary::TopK { k: sk, score: ss, scores } => {
                        prop_assert_eq!(*sk, topk_k);
                        prop_assert_eq!(*ss, score);
                        prop_assert_eq!(scores, &want_scores, "top-k scores: {}", &tag);
                    }
                    other => prop_assert!(false, "wrong summary {other:?}: {}", &tag),
                }

                let mode = AggregateMode::Sampled { budget, seed: sample_seed };
                let out = matcher.aggregate_with(&query, mode).unwrap();
                prop_assert_eq!(out.count, total, "sampled count: {}", &tag);
                prop_assert_eq!(
                    out.embeddings.as_deref(),
                    Some(&want_sample[..]),
                    "sample not seed-reproducible: {}", &tag
                );
                match &out.summary {
                    AggregateSummary::Sampled { sampled, fraction, ci95, .. } => {
                        prop_assert_eq!(*sampled, (budget as u64).min(total));
                        prop_assert!(*fraction > 0.0 && *fraction <= 1.0);
                        prop_assert!(*ci95 >= 0.0);
                        if *sampled == total {
                            prop_assert_eq!(*ci95, 0.0, "full coverage has no CI: {}", &tag);
                        }
                    }
                    other => prop_assert!(false, "wrong summary {other:?}: {}", &tag),
                }
            }
        }
        setops::set_kernel_mode(KernelMode::Auto);
    }
}
