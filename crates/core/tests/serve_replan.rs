//! Serve-layer replanning under statistics drift (DESIGN.md §13.4): a
//! cached plan whose labels an update touched survives while its
//! cardinalities stay near plan time, is dropped (and counted in
//! `plans_replanned`) once an update stream pushes them past the replan
//! threshold, and the re-planned query still returns exactly the
//! embeddings a fresh sequential matcher finds on the same snapshot.

use std::sync::Arc;

use hgmatch_core::serve::{MatchServer, QueryOptions, ServeConfig};
use hgmatch_core::{Matcher, QueryOutcome};
use hgmatch_datasets::testgen::env_workers;
use hgmatch_datasets::{generate_update_stream, UpdateStreamConfig};
use hgmatch_hypergraph::{DynamicHypergraph, Hypergraph, HypergraphBuilder, Label};

/// Base data: a planner-adversary-shaped instance over labels {A, B, C}
/// whose {A,B} cardinality the test will inflate.
fn base_writer() -> DynamicHypergraph {
    let mut d = DynamicHypergraph::new();
    d.add_vertices(4, Label::new(0)); // A: 0..4
    d.add_vertices(4, Label::new(1)); // B: 4..8
    d.add_vertices(4, Label::new(2)); // C: 8..12
    for i in 0..4u32 {
        d.insert_hyperedge(vec![i, 4 + i]).unwrap(); // {A,B}
        d.insert_hyperedge(vec![4 + i, 8 + i]).unwrap(); // {B,C}
    }
    d
}

/// The standing query: an A–B–C path (two edges, shared B vertex).
fn standing_query() -> Hypergraph {
    let mut b = HypergraphBuilder::new();
    for &l in &[0u32, 1, 2] {
        b.add_vertex(Label::new(l));
    }
    b.add_edge(vec![0, 1]).unwrap();
    b.add_edge(vec![1, 2]).unwrap();
    b.build().unwrap()
}

/// Sorted embeddings of a fresh sequential run on `data` — the oracle the
/// served outcome must match exactly.
fn fresh_embeddings(data: &Hypergraph, query: &Hypergraph) -> Vec<hgmatch_core::Embedding> {
    Matcher::new(data).find_all(query).expect("fresh run")
}

fn served_embeddings(outcome: &QueryOutcome) -> &[hgmatch_core::Embedding] {
    outcome.embeddings.as_deref().expect("collected")
}

#[test]
fn replan_fires_past_drift_threshold_and_stays_correct() {
    let mut writer = base_writer();
    let first = writer.snapshot();
    let server = MatchServer::new(
        Arc::clone(&first.graph),
        ServeConfig::default()
            .with_threads(env_workers(2))
            .with_replan_drift(0.5),
    );
    let query = standing_query();

    // Prime the cache.
    let outcome = server.run(&query, QueryOptions::collect_all()).unwrap();
    assert!(!outcome.plan_cached);
    assert_eq!(
        served_embeddings(&outcome),
        fresh_embeddings(&first.graph, &query).as_slice()
    );

    // Small drift: one extra {A,B} edge (4 → 5, drift 0.25 ≤ 0.5). The
    // entry's labels are touched but it survives — reused, not re-planned.
    writer.insert_hyperedge(vec![0, 5]).unwrap();
    let delta = writer.snapshot();
    assert!(delta.sids_stable);
    server.update_data(
        Arc::clone(&delta.graph),
        &delta.touched_labels,
        delta.sids_stable,
    );
    let outcome = server.run(&query, QueryOptions::collect_all()).unwrap();
    assert!(
        outcome.plan_cached,
        "below-threshold drift must reuse the cached plan"
    );
    assert_eq!(server.stats().plans_replanned, 0);
    assert_eq!(
        served_embeddings(&outcome),
        fresh_embeddings(&delta.graph, &query).as_slice()
    );

    // Big drift: bulk-insert {A,B} edges until the cardinality has more
    // than doubled since plan time. The entry is dropped, the counter
    // bumps, and the next submission re-plans (a miss).
    for i in 0..8u32 {
        let a = writer.add_vertex(Label::new(0)).raw();
        writer.insert_hyperedge(vec![a, 4 + (i % 4)]).unwrap();
    }
    let delta = writer.snapshot();
    assert!(delta.sids_stable);
    server.update_data(
        Arc::clone(&delta.graph),
        &delta.touched_labels,
        delta.sids_stable,
    );
    let outcome = server.run(&query, QueryOptions::collect_all()).unwrap();
    assert!(!outcome.plan_cached, "drifted plan must be re-planned");
    assert_eq!(server.stats().plans_replanned, 1);
    assert_eq!(
        served_embeddings(&outcome),
        fresh_embeddings(&delta.graph, &query).as_slice()
    );

    // The re-planned entry is cached again at the new epoch.
    let outcome = server.run(&query, QueryOptions::collect_all()).unwrap();
    assert!(outcome.plan_cached);
}

/// A generated update stream drives epochs through the server while the
/// standing query re-answers after each one; every answer equals a fresh
/// sequential run on the pinned snapshot, and cumulative drift eventually
/// trips at least one replan.
#[test]
fn update_stream_replans_and_matches_fresh_runs() {
    let mut writer = base_writer();
    let first = writer.snapshot();
    let base = Arc::clone(&first.graph);
    let server = MatchServer::new(
        Arc::clone(&base),
        ServeConfig::default()
            .with_threads(env_workers(2))
            .with_replan_drift(0.25),
    );
    let query = standing_query();
    server.run(&query, QueryOptions::count()).unwrap();

    // Insert-heavy stream so cardinalities grow monotonically past any
    // threshold; batches of 8 ops per epoch.
    let stream = generate_update_stream(
        &base,
        &UpdateStreamConfig {
            ops: 96,
            insert_ratio: 0.9,
            seed: 0xBEEF,
            ..Default::default()
        },
    );
    for chunk in stream.chunks(8) {
        for op in chunk {
            writer.apply(op).expect("stream op applies");
        }
        let delta = writer.snapshot();
        server.update_data(
            Arc::clone(&delta.graph),
            &delta.touched_labels,
            delta.sids_stable,
        );
        let outcome = server.run(&query, QueryOptions::collect_all()).unwrap();
        assert_eq!(
            served_embeddings(&outcome),
            fresh_embeddings(&delta.graph, &query).as_slice(),
            "served embeddings diverge from a fresh run at epoch {}",
            outcome.data_epoch
        );
    }
    let stats = server.stats();
    assert!(
        stats.plans_replanned >= 1,
        "a 90% insert stream must eventually trip the 0.25 drift threshold \
         (replanned {}, invalidated {})",
        stats.plans_replanned,
        stats.plans_invalidated
    );
    assert!(stats.plans_replanned <= stats.plans_invalidated);
}
