//! Order-invariance differential harness (DESIGN.md §13.6): HGMatch's
//! match-by-hyperedge semantics guarantee the embedding *multiset* of a
//! query is independent of the matching order — any connected permutation
//! explores the same search space. `Planner::plan_with_order` makes every
//! order compilable, so this suite cross-checks, on random planted
//! instances:
//!
//! * the greedy Algorithm 3 order ([`Planner::plan_greedy`]),
//! * the cost-based order the production planner picks
//!   ([`Planner::plan`], margin-gated search),
//! * and ≥ 4 random valid connected orders,
//!
//! all × kernel modes {Auto, forced-scalar} × workers {1, 4}. Any
//! divergence — a candidate-generation bug that only bites a particular
//! anchor shape, a cost-model order that compiles wrong anchors, a
//! scheduler race — fails the property.
//!
//! The CI `plan-stress` job replays this suite with
//! `HGMATCH_PLAN_BEAM=2 HGMATCH_PLAN_EXHAUSTIVE=0`, forcing every
//! cost-based plan through the tiny-width beam-search path.

use std::sync::Mutex;

use hgmatch_core::{CollectSink, Embedding, MatchConfig, Matcher, Plan, Planner, QueryGraph};
use hgmatch_datasets::testgen::{random_arity_hypergraph, random_subquery, TestRng};
use hgmatch_hypergraph::setops::{self, KernelMode};
use hgmatch_hypergraph::Hypergraph;
use proptest::prelude::*;

/// Kernel mode is process-global: serialise mode-flipping tests.
static MODE_LOCK: Mutex<()> = Mutex::new(());

fn lock_mode() -> std::sync::MutexGuard<'static, ()> {
    MODE_LOCK.lock().unwrap_or_else(|poisoned| {
        setops::set_kernel_mode(KernelMode::Auto);
        poisoned.into_inner()
    })
}

/// Draws a random *connected* order: a random start edge, then uniformly
/// random connected extensions (any remaining edge once the connected
/// frontier is empty — mirrors the planner's disconnected-query fallback).
fn random_connected_order(query: &QueryGraph, rng: &mut TestRng) -> Vec<u32> {
    let ne = query.num_edges();
    let mut order = Vec::with_capacity(ne);
    let mut mask = 0u64;
    for step in 0..ne {
        let candidates: Vec<u32> = (0..ne as u32)
            .filter(|&e| {
                mask & (1 << e) == 0 && (step == 0 || query.adjacent_edges(e as usize) & mask != 0)
            })
            .collect();
        let pool: Vec<u32> = if candidates.is_empty() {
            (0..ne as u32).filter(|&e| mask & (1 << e) == 0).collect()
        } else {
            candidates
        };
        let e = pool[rng.below(pool.len() as u64) as usize];
        mask |= 1 << e;
        order.push(e);
    }
    order
}

/// Runs `plan` and returns the sorted embedding list (the multiset:
/// embeddings are distinct, so sorted-vector equality is multiset
/// equality).
fn run(plan: &Plan, data: &Hypergraph, threads: usize) -> Vec<Embedding> {
    let matcher = Matcher::with_config(data, MatchConfig::parallel(threads));
    let sink = CollectSink::new();
    matcher.run_plan(plan, &sink);
    sink.into_results()
}

/// The property: identical embedding multisets across all orders, kernel
/// modes and worker counts.
fn check_case(seed: u64, nv: usize, ne: usize, labels: u32, k: usize) -> Result<(), TestCaseError> {
    let data = random_arity_hypergraph(seed, nv, ne, labels, 2, 4);
    let Some(query) = random_subquery(&data, seed ^ 0xABCD, k) else {
        return Ok(()); // dead-end walk: nothing to check
    };
    let q = QueryGraph::new(&query).expect("planted query is valid");

    let mut plans: Vec<(String, Plan)> = vec![
        (
            "greedy".into(),
            Planner::plan_greedy(&q, &data).expect("greedy plans"),
        ),
        (
            "cost-based".into(),
            Planner::plan(&q, &data).expect("cost-based plans"),
        ),
    ];
    let mut rng = TestRng(seed.wrapping_mul(0x5851_F42D_4C95_7F2D));
    for i in 0..4 {
        let order = random_connected_order(&q, &mut rng);
        plans.push((
            format!("random-{i} {order:?}"),
            Planner::plan_with_order(&q, &data, order).expect("any permutation compiles"),
        ));
    }

    let _guard = lock_mode();
    let mut reference: Option<Vec<Embedding>> = None;
    for mode in [KernelMode::Auto, KernelMode::ForceScalar] {
        setops::set_kernel_mode(mode);
        for threads in [1usize, 4] {
            for (name, plan) in &plans {
                let found = run(plan, &data, threads);
                match &reference {
                    None => reference = Some(found),
                    Some(expected) => prop_assert_eq!(
                        &found,
                        expected,
                        "embedding multiset diverged: order {} mode {:?} threads {}",
                        name,
                        mode,
                        threads
                    ),
                }
            }
        }
    }
    setops::set_kernel_mode(KernelMode::Auto);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// 2-edge planted queries on mid-density instances.
    #[test]
    fn two_edge_queries_are_order_invariant(seed in 0u64..1u64 << 48) {
        check_case(seed, 24, 50, 3, 2)?;
    }

    /// 3-edge planted queries (6 permutations; randoms cover beyond the
    /// greedy/cost pair).
    #[test]
    fn three_edge_queries_are_order_invariant(seed in 0u64..1u64 << 48) {
        check_case(seed, 20, 44, 2, 3)?;
    }

    /// 4-edge planted queries on denser label-poor instances (bigger
    /// partitions, bitmap postings in Auto mode).
    #[test]
    fn four_edge_queries_are_order_invariant(seed in 0u64..1u64 << 48) {
        check_case(seed, 16, 60, 2, 4)?;
    }
}

/// The paper's Fig. 1 instance, exhaustively: all 6 orders of the 3-edge
/// query produce the same two embeddings in both kernel modes.
#[test]
fn paper_example_all_orders() {
    use hgmatch_datasets::testgen::{paper_data, paper_query};
    let data = paper_data();
    let query = paper_query();
    let q = QueryGraph::new(&query).unwrap();
    let _guard = lock_mode();
    for mode in [KernelMode::Auto, KernelMode::ForceScalar] {
        setops::set_kernel_mode(mode);
        for order in [
            [0u32, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ] {
            let plan = Planner::plan_with_order(&q, &data, order.to_vec()).unwrap();
            for threads in [1usize, 4] {
                assert_eq!(
                    run(&plan, &data, threads).len(),
                    2,
                    "order {order:?} mode {mode:?} threads {threads}"
                );
            }
        }
    }
    setops::set_kernel_mode(KernelMode::Auto);
}
