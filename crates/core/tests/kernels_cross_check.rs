//! Kernel-family cross-checks: every executor must produce identical
//! embedding counts whether the set-operation kernels run in `Auto` mode
//! (SIMD + bitmap representation switching) or pinned to the scalar merge
//! family. This is the end-to-end guarantee behind DESIGN.md §5's "the
//! scalar kernels are the oracle".

use hgmatch_core::engine::ParallelEngine;
use hgmatch_core::exec::{BfsExecutor, SequentialExecutor};
use hgmatch_core::{CountSink, MatchConfig, Planner, QueryGraph};
use hgmatch_hypergraph::setops::{self, KernelMode};
use hgmatch_hypergraph::{Hypergraph, HypergraphBuilder, Label};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Mutex;

/// The kernel mode is process-global; tests in this binary serialise on
/// this lock so a concurrent test cannot flip the mode mid-measurement.
/// (Counts are identical either way — this keeps the mode assertions
/// deterministic.)
static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Acquires [`MODE_LOCK`], recovering from a poisoned lock by clearing any
/// kernel mode a panicked prior test may have leaked.
fn lock_mode() -> std::sync::MutexGuard<'static, ()> {
    MODE_LOCK.lock().unwrap_or_else(|poisoned| {
        setops::set_kernel_mode(KernelMode::Auto);
        poisoned.into_inner()
    })
}

/// Deterministic random hypergraph. With few labels and low arity many
/// hyperedges share a signature, producing the large partitions the bitmap
/// and SIMD paths trigger on.
fn random_hypergraph(seed: u64, nv: usize, ne: usize, labels: u32, max_arity: usize) -> Hypergraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = HypergraphBuilder::new();
    for _ in 0..nv {
        b.add_vertex(Label::new(rng.random_range(0..labels)));
    }
    for _ in 0..ne {
        let arity = rng.random_range(2..=max_arity.min(nv));
        let mut edge: Vec<u32> = Vec::new();
        while edge.len() < arity {
            let v = rng.random_range(0..nv as u32);
            if !edge.contains(&v) {
                edge.push(v);
            }
        }
        let _ = b.add_edge(edge).unwrap();
    }
    b.build().unwrap()
}

/// Random-walk query with `k` edges (planted: must have ≥ 1 embedding).
fn random_walk_query(data: &Hypergraph, seed: u64, k: usize) -> Option<Hypergraph> {
    use hgmatch_hypergraph::{EdgeId, VertexId};
    let mut rng = StdRng::seed_from_u64(seed);
    if data.num_edges() < k {
        return None;
    }
    let mut edges = vec![rng.random_range(0..data.num_edges() as u32)];
    for _ in 1..k {
        let mut frontier: Vec<u32> = Vec::new();
        for &e in &edges {
            for &v in data.edge_vertices(EdgeId::new(e)) {
                frontier.extend_from_slice(data.incident_edges(VertexId::new(v)));
            }
        }
        frontier.sort_unstable();
        frontier.dedup();
        frontier.retain(|e| !edges.contains(e));
        if frontier.is_empty() {
            return None;
        }
        edges.push(frontier[rng.random_range(0..frontier.len())]);
    }
    let mut vertices: Vec<u32> = edges
        .iter()
        .flat_map(|&e| data.edge_vertices(EdgeId::new(e)))
        .copied()
        .collect();
    vertices.sort_unstable();
    vertices.dedup();
    let mut b = HypergraphBuilder::new();
    for &v in &vertices {
        b.add_vertex(data.label(VertexId::new(v)));
    }
    for &e in &edges {
        let renumbered: Vec<u32> = data
            .edge_vertices(EdgeId::new(e))
            .iter()
            .map(|&v| vertices.binary_search(&v).unwrap() as u32)
            .collect();
        b.add_edge(renumbered).unwrap();
    }
    Some(b.build().unwrap())
}

fn counts_under(mode: KernelMode, data: &Hypergraph, query: &Hypergraph) -> Vec<u64> {
    setops::set_kernel_mode(mode);
    let qg = QueryGraph::new(query).unwrap();
    let plan = Planner::plan(&qg, data).unwrap();
    let mut counts = Vec::new();

    let sink = CountSink::new();
    SequentialExecutor::run(&plan, data, &sink, &MatchConfig::sequential());
    counts.push(sink.count());

    let sink = CountSink::new();
    BfsExecutor::run(&plan, data, &sink, &MatchConfig::parallel(2));
    counts.push(sink.count());

    let sink = CountSink::new();
    ParallelEngine::run(&plan, data, &sink, &MatchConfig::parallel(4));
    counts.push(sink.count());

    let sink = CountSink::new();
    let pruned = MatchConfig::sequential().with_prune_non_incident(true);
    SequentialExecutor::run(&plan, data, &sink, &pruned);
    counts.push(sink.count());

    setops::set_kernel_mode(KernelMode::Auto);
    counts
}

#[test]
fn scalar_and_simd_kernels_agree_end_to_end() {
    let _guard = lock_mode();
    // Large two-label instance: {A,A}-style partitions hold hundreds of
    // rows, so the inverted index materialises dense bitmaps and the SIMD
    // kernels run on real posting lists.
    for seed in 0..4u64 {
        let data = random_hypergraph(seed, 40, 900, 2, 3);
        for k in [2usize, 3] {
            let Some(query) = random_walk_query(&data, seed * 13 + k as u64, k) else {
                continue;
            };
            let auto = counts_under(KernelMode::Auto, &data, &query);
            let scalar = counts_under(KernelMode::ForceScalar, &data, &query);
            assert_eq!(
                auto, scalar,
                "kernel families disagree (seed {seed}, k {k})"
            );
            assert!(
                auto[0] >= 1,
                "planted query must be found (seed {seed}, k {k})"
            );
            assert!(
                auto.iter().all(|&c| c == auto[0]),
                "executors disagree (seed {seed})"
            );
        }
    }
}

#[test]
fn kernel_mode_does_not_leak_between_runs() {
    let _guard = lock_mode();
    // Sanity: after a ForceScalar run the mode restores to Auto, and both
    // modes remain reproducible on the same instance.
    let data = random_hypergraph(77, 30, 400, 2, 3);
    let query = random_walk_query(&data, 5, 2).expect("query");
    let first = counts_under(KernelMode::ForceScalar, &data, &query);
    if !setops::env_forced_scalar() {
        // The env override pins ForceScalar process-wide; only without it
        // can the mode restore to Auto.
        assert_eq!(setops::kernel_mode(), KernelMode::Auto);
    }
    let second = counts_under(KernelMode::ForceScalar, &data, &query);
    assert_eq!(first, second);
}

#[test]
fn dense_hub_partition_agrees_across_kernel_families() {
    let _guard = lock_mode();
    // Star data around hub vertices: one giant {A,B} partition whose hub
    // posting list covers every row — the strongest bitmap-path trigger.
    let n = 800u32;
    let mut b = HypergraphBuilder::new();
    b.add_vertex(Label::new(0)); // hub A
    b.add_vertex(Label::new(0)); // second A vertex sharing leaves
    for _ in 0..n {
        b.add_vertex(Label::new(1));
    }
    for leaf in 0..n {
        b.add_edge(vec![0, 2 + leaf]).unwrap();
        if leaf % 2 == 0 {
            b.add_edge(vec![1, 2 + leaf]).unwrap();
        }
    }
    let data = b.build().unwrap();

    // Path query A–B–A: forces an anchored intersection through the leaves.
    let mut qb = HypergraphBuilder::new();
    qb.add_vertex(Label::new(0));
    qb.add_vertex(Label::new(1));
    qb.add_vertex(Label::new(0));
    qb.add_edge(vec![0, 1]).unwrap();
    qb.add_edge(vec![1, 2]).unwrap();
    let query = qb.build().unwrap();

    let auto = counts_under(KernelMode::Auto, &data, &query);
    let scalar = counts_under(KernelMode::ForceScalar, &data, &query);
    assert_eq!(auto, scalar);
    // Each even leaf connects the two hubs both ways: 2 per even leaf.
    assert_eq!(auto[0], u64::from(n / 2) * 2);
}
