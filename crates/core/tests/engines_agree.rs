//! Cross-executor integration tests: the sequential DFS executor, the BFS
//! executor and the parallel task engine must agree on every query, and
//! planted (random-walk) queries must always be found.

use std::time::Duration;

use hgmatch_core::engine::ParallelEngine;
use hgmatch_core::exec::{BfsExecutor, SequentialExecutor};
use hgmatch_core::{CollectSink, CountSink, MatchConfig, Matcher, Planner, QueryGraph};
use hgmatch_hypergraph::{Hypergraph, HypergraphBuilder, Label};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Deterministic random hypergraph without pulling in the datasets crate.
fn random_hypergraph(seed: u64, nv: usize, ne: usize, labels: u32, max_arity: usize) -> Hypergraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = HypergraphBuilder::new();
    for _ in 0..nv {
        b.add_vertex(Label::new(rng.random_range(0..labels)));
    }
    for _ in 0..ne {
        let arity = rng.random_range(1..=max_arity.min(nv));
        let mut edge: Vec<u32> = Vec::new();
        while edge.len() < arity {
            let v = rng.random_range(0..nv as u32);
            if !edge.contains(&v) {
                edge.push(v);
            }
        }
        let _ = b.add_edge(edge).unwrap();
    }
    b.build().unwrap()
}

/// Random-walk query with `k` edges (planted: must have ≥ 1 embedding).
fn random_walk_query(data: &Hypergraph, seed: u64, k: usize) -> Option<Hypergraph> {
    use hgmatch_hypergraph::{EdgeId, VertexId};
    let mut rng = StdRng::seed_from_u64(seed);
    if data.num_edges() < k {
        return None;
    }
    let mut edges = vec![rng.random_range(0..data.num_edges() as u32)];
    for _ in 1..k {
        let mut frontier: Vec<u32> = Vec::new();
        for &e in &edges {
            for &v in data.edge_vertices(EdgeId::new(e)) {
                frontier.extend_from_slice(data.incident_edges(VertexId::new(v)));
            }
        }
        frontier.sort_unstable();
        frontier.dedup();
        frontier.retain(|e| !edges.contains(e));
        if frontier.is_empty() {
            return None;
        }
        edges.push(frontier[rng.random_range(0..frontier.len())]);
    }
    // Extract into a standalone query hypergraph.
    let mut vertices: Vec<u32> = edges
        .iter()
        .flat_map(|&e| data.edge_vertices(EdgeId::new(e)))
        .copied()
        .collect();
    vertices.sort_unstable();
    vertices.dedup();
    let mut b = HypergraphBuilder::new();
    for &v in &vertices {
        b.add_vertex(data.label(VertexId::new(v)));
    }
    for &e in &edges {
        let renumbered: Vec<u32> = data
            .edge_vertices(EdgeId::new(e))
            .iter()
            .map(|&v| vertices.binary_search(&v).unwrap() as u32)
            .collect();
        b.add_edge(renumbered).unwrap();
    }
    Some(b.build().unwrap())
}

fn count_all_executors(data: &Hypergraph, query: &Hypergraph) -> Vec<(String, u64)> {
    let qg = QueryGraph::new(query).unwrap();
    let plan = Planner::plan(&qg, data).unwrap();
    let mut results = Vec::new();

    let sink = CountSink::new();
    SequentialExecutor::run(&plan, data, &sink, &MatchConfig::sequential());
    results.push(("sequential".to_string(), sink.count()));

    let sink = CountSink::new();
    BfsExecutor::run(&plan, data, &sink, &MatchConfig::sequential());
    results.push(("bfs".to_string(), sink.count()));

    let sink = CountSink::new();
    BfsExecutor::run(&plan, data, &sink, &MatchConfig::parallel(3));
    results.push(("bfs(3t)".to_string(), sink.count()));

    for threads in [1usize, 2, 4] {
        let sink = CountSink::new();
        ParallelEngine::run(&plan, data, &sink, &MatchConfig::parallel(threads));
        results.push((format!("engine({threads}t)"), sink.count()));
    }

    let sink = CountSink::new();
    let nostl = MatchConfig::parallel(3).with_work_stealing(false);
    ParallelEngine::run(&plan, data, &sink, &nostl);
    results.push(("engine(nostl)".to_string(), sink.count()));

    let sink = CountSink::new();
    let pruned = MatchConfig::sequential().with_prune_non_incident(true);
    SequentialExecutor::run(&plan, data, &sink, &pruned);
    results.push(("sequential(pruned)".to_string(), sink.count()));

    results
}

#[test]
fn executors_agree_on_random_instances() {
    for seed in 0..12u64 {
        let data = random_hypergraph(seed, 30, 60, 3, 4);
        for k in [1usize, 2, 3] {
            let Some(query) = random_walk_query(&data, seed * 31 + k as u64, k) else {
                continue;
            };
            let results = count_all_executors(&data, &query);
            let reference = results[0].1;
            assert!(
                reference >= 1,
                "planted query must be found (seed {seed}, k {k})"
            );
            for (name, count) in &results {
                assert_eq!(
                    *count, reference,
                    "{name} disagrees on seed {seed}, k {k}: {count} vs {reference}"
                );
            }
        }
    }
}

#[test]
fn executors_agree_on_skewed_labels() {
    // Single-label data maximises automorphism pressure on validation.
    for seed in 0..6u64 {
        let data = random_hypergraph(seed + 100, 20, 40, 1, 3);
        for k in [2usize, 3, 4] {
            let Some(query) = random_walk_query(&data, seed * 17 + k as u64, k) else {
                continue;
            };
            let results = count_all_executors(&data, &query);
            let reference = results[0].1;
            for (name, count) in &results {
                assert_eq!(*count, reference, "{name} seed {seed} k {k}");
            }
        }
    }
}

#[test]
fn collect_results_identical_across_executors() {
    let data = random_hypergraph(7, 25, 50, 2, 4);
    let query = random_walk_query(&data, 3, 3).expect("query");
    let qg = QueryGraph::new(&query).unwrap();
    let plan = Planner::plan(&qg, &data).unwrap();

    let seq = CollectSink::new();
    SequentialExecutor::run(&plan, &data, &seq, &MatchConfig::sequential());
    let par = CollectSink::new();
    ParallelEngine::run(&plan, &data, &par, &MatchConfig::parallel(4));
    let bfs = CollectSink::new();
    BfsExecutor::run(&plan, &data, &bfs, &MatchConfig::parallel(2));

    let seq = seq.into_results();
    assert_eq!(seq, par.into_results(), "parallel engine embeddings differ");
    assert_eq!(seq, bfs.into_results(), "bfs embeddings differ");
    assert!(!seq.is_empty());
}

#[test]
fn matching_order_does_not_change_counts() {
    let data = random_hypergraph(42, 24, 48, 2, 4);
    let query = random_walk_query(&data, 9, 3).expect("query");
    let qg = QueryGraph::new(&query).unwrap();
    let reference = {
        let plan = Planner::plan(&qg, &data).unwrap();
        let sink = CountSink::new();
        SequentialExecutor::run(&plan, &data, &sink, &MatchConfig::sequential());
        sink.count()
    };
    // All 6 permutations of 3 query edges.
    for order in [
        [0u32, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ] {
        let plan = Planner::plan_with_order(&qg, &data, order.to_vec()).unwrap();
        let sink = CountSink::new();
        SequentialExecutor::run(&plan, &data, &sink, &MatchConfig::sequential());
        assert_eq!(sink.count(), reference, "order {order:?} changed the count");
    }
}

#[test]
fn timeout_is_respected_not_ignored() {
    // Large instance, zero-ish timeout: must return quickly and flag it.
    let data = random_hypergraph(5, 60, 400, 1, 5);
    if let Some(query) = random_walk_query(&data, 2, 4) {
        let matcher = Matcher::with_config(
            &data,
            MatchConfig::parallel(2).with_timeout(Duration::from_millis(1)),
        );
        let started = std::time::Instant::now();
        let _ = matcher.count(&query);
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "timeout failed to stop the engine"
        );
    }
}

#[test]
fn matcher_facade_equivalences() {
    let data = random_hypergraph(11, 30, 60, 3, 4);
    let query = random_walk_query(&data, 4, 2).expect("query");
    let m1 = Matcher::new(&data);
    let m4 = Matcher::with_config(&data, MatchConfig::parallel(4));
    let c1 = m1.count(&query).unwrap();
    let c4 = m4.count(&query).unwrap();
    assert_eq!(c1, c4);
    assert_eq!(m1.find_all(&query).unwrap().len() as u64, c1);
    assert_eq!(m4.find_all(&query).unwrap().len() as u64, c1);
    let k = (c1 / 2).max(1) as usize;
    assert_eq!(m1.find_first(&query, k).unwrap().len(), k.min(c1 as usize));
}
