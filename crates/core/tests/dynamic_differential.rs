//! End-to-end differential tests of dynamic updates (ISSUE 3 acceptance
//! paths): embeddings from dynamic snapshots equal embeddings from
//! rebuilt-from-scratch static graphs, through both the sequential
//! executor and a concurrently mutated [`MatchServer`]; delta matching
//! agrees with full re-runs; plan-cache invalidation keeps answers fresh.
//!
//! Concurrency is controlled by `HGMATCH_WORKERS` (the CI matrix pins 1
//! and 4); kernel families are cross-checked both by the in-test
//! [`set_kernel_mode`] loop and by the CI `HGMATCH_FORCE_SCALAR=1` legs.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use hgmatch_core::serve::{MatchServer, QueryOptions, QueryStatus, ServeConfig};
use hgmatch_core::{delta_match, DeltaBatch, MatchConfig, Matcher};
use hgmatch_datasets::testgen::{
    env_workers, random_arity_hypergraph, rebuild_oracle, workload_queries,
};
use hgmatch_datasets::{
    generate_update_stream, sample_query, standard_settings, UpdateStreamConfig,
};
use hgmatch_hypergraph::setops::{set_kernel_mode, KernelMode};
use hgmatch_hypergraph::{
    env_shards, DynamicHypergraph, Hypergraph, HypergraphBuilder, Label, ShardedHypergraph,
    UpdateOp,
};

/// q2/q3 queries sampled from `graph` (planted, so they have embeddings).
fn sampled_queries(graph: &Hypergraph, seed: u64) -> Vec<Hypergraph> {
    let settings = standard_settings();
    let mut queries = Vec::new();
    for (i, setting) in settings.iter().take(2).enumerate() {
        for s in 0..3u64 {
            if let Some(q) = sample_query(graph, setting, seed + s * 13 + i as u64) {
                queries.push(q);
            }
        }
    }
    queries
}

/// Acceptance: embeddings from the dynamic graph equal embeddings from a
/// rebuilt static graph for q2/q3 queries, in both kernel modes, through
/// the sequential (threads=1) and parallel matchers.
#[test]
fn dynamic_snapshots_answer_like_rebuilt_static() {
    let base = random_arity_hypergraph(0xD1FF, 120, 260, 3, 2, 4);
    let mut dynamic = DynamicHypergraph::from_hypergraph(&base);
    let stream = generate_update_stream(
        &base,
        &UpdateStreamConfig {
            ops: 240,
            insert_ratio: 0.6,
            seed: 5,
            ..Default::default()
        },
    );

    for (checkpoint, chunk) in stream.chunks(80).enumerate() {
        for op in chunk {
            dynamic.apply(op).unwrap();
        }
        let snap = dynamic.snapshot().graph;
        let oracle = rebuild_oracle(&snap);
        assert_eq!(*snap, oracle, "checkpoint {checkpoint}: snapshot drifted");

        let queries = sampled_queries(&snap, 100 + checkpoint as u64);
        assert!(!queries.is_empty(), "checkpoint {checkpoint}: no queries");
        for mode in [KernelMode::Auto, KernelMode::ForceScalar] {
            set_kernel_mode(mode);
            for (qi, query) in queries.iter().enumerate() {
                let dyn_seq = Matcher::new(&snap).find_all(query).unwrap();
                let reb_seq = Matcher::new(&oracle).find_all(query).unwrap();
                assert!(
                    !dyn_seq.is_empty(),
                    "checkpoint {checkpoint} q{qi}: sampled query must match"
                );
                assert_eq!(
                    dyn_seq, reb_seq,
                    "checkpoint {checkpoint} q{qi} ({mode:?}): sequential differs"
                );
                let par = Matcher::with_config(&snap, MatchConfig::parallel(env_workers(4)))
                    .find_all(query)
                    .unwrap();
                assert_eq!(
                    par, reb_seq,
                    "checkpoint {checkpoint} q{qi} ({mode:?}): parallel differs"
                );
            }
        }
        set_kernel_mode(KernelMode::Auto);
    }
}

/// Acceptance (DESIGN.md §17): matching over a sharded data plane returns
/// the same embedding multiset as the monolithic build — for shard counts
/// {1, 2, 4} plus the CI matrix's `HGMATCH_SHARDS`, in both kernel modes,
/// through sequential and parallel matchers, across an update stream.
#[test]
fn sharded_data_plane_matches_like_monolithic() {
    let base = random_arity_hypergraph(0x5A4D, 110, 240, 3, 2, 4);
    let stream = generate_update_stream(
        &base,
        &UpdateStreamConfig {
            ops: 180,
            insert_ratio: 0.6,
            seed: 17,
            ..Default::default()
        },
    );

    let mut shard_counts = vec![1usize, 2, 4];
    if !shard_counts.contains(&env_shards()) {
        shard_counts.push(env_shards());
    }
    for num_shards in shard_counts {
        let mut mono = DynamicHypergraph::from_hypergraph(&base);
        let mut sharded = ShardedHypergraph::from_hypergraph(&base, num_shards).unwrap();
        for (checkpoint, chunk) in stream.chunks(90).enumerate() {
            for op in chunk {
                let a = mono.apply(op).unwrap();
                let b = sharded.apply(op).unwrap();
                assert_eq!(a, b, "{num_shards} shards: divergent effect for {op:?}");
            }
            let merged = sharded.snapshot().graph;
            let reference = mono.snapshot().graph;
            assert_eq!(
                *merged, *reference,
                "{num_shards} shards, checkpoint {checkpoint}: merged snapshot drifted"
            );

            let queries = sampled_queries(&reference, 400 + checkpoint as u64);
            assert!(!queries.is_empty(), "checkpoint {checkpoint}: no queries");
            for mode in [KernelMode::Auto, KernelMode::ForceScalar] {
                set_kernel_mode(mode);
                for (qi, query) in queries.iter().enumerate() {
                    let want = Matcher::new(&reference).find_all(query).unwrap();
                    let got = Matcher::new(&merged).find_all(query).unwrap();
                    assert_eq!(
                        got, want,
                        "{num_shards} shards q{qi} ({mode:?}): sequential differs"
                    );
                    let par = Matcher::with_config(&merged, MatchConfig::parallel(env_workers(4)))
                        .find_all(query)
                        .unwrap();
                    assert_eq!(
                        par, want,
                        "{num_shards} shards q{qi} ({mode:?}): parallel differs"
                    );
                }
            }
            set_kernel_mode(KernelMode::Auto);
        }
    }
}

/// Acceptance: ≥8 queries concurrently in flight on a [`MatchServer`]
/// while a writer publishes new epochs; every outcome must exactly equal a
/// sequential run against the snapshot its epoch pinned — i.e. no query
/// ever observes a torn snapshot.
#[test]
fn served_queries_never_observe_torn_snapshots() {
    let base = random_arity_hypergraph(0xBEE5, 200, 500, 3, 2, 4);
    let stream = generate_update_stream(
        &base,
        &UpdateStreamConfig {
            ops: 600,
            insert_ratio: 0.65,
            seed: 21,
            ..Default::default()
        },
    );

    let mut dynamic = DynamicHypergraph::from_hypergraph(&base);
    let first = dynamic.snapshot();
    let server = MatchServer::new(
        Arc::clone(&first.graph),
        ServeConfig::default()
            .with_threads(env_workers(4))
            .with_fairness_quantum(8),
    );
    let queries = workload_queries();
    assert!(queries.len() >= 8, "acceptance demands >= 8 queries");

    // Every published epoch's snapshot, for post-hoc verification.
    let published: Mutex<HashMap<u64, Arc<Hypergraph>>> = Mutex::new(HashMap::new());
    published.lock().unwrap().insert(0, first.graph);

    let num_chunks = stream.chunks(60).len();
    let outcomes: Mutex<Vec<(usize, hgmatch_core::QueryOutcome)>> = Mutex::new(Vec::new());
    // Wave/epoch handshake (no sleeps-as-synchronisation): the writer
    // waits for at least one full query wave after every publish, and the
    // reader keeps launching waves until the writer is done — so query
    // waves provably overlap every published epoch, on any core count.
    let waves_done = std::sync::atomic::AtomicU64::new(0);
    let writer_done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        use std::sync::atomic::Ordering;
        // Writer: apply the stream in chunks, publish after each chunk.
        let writer_server = &server;
        let writer_published = &published;
        let writer_waves = &waves_done;
        let writer_flag = &writer_done;
        scope.spawn(move || {
            for chunk in stream.chunks(60) {
                for op in chunk {
                    dynamic.apply(op).unwrap();
                }
                let delta = dynamic.snapshot();
                let epoch = writer_server.update_data(
                    Arc::clone(&delta.graph),
                    &delta.touched_labels,
                    delta.sids_stable,
                );
                writer_published.lock().unwrap().insert(epoch, delta.graph);
                let target = writer_waves.load(Ordering::Acquire) + 1;
                while writer_waves.load(Ordering::Acquire) < target {
                    std::thread::yield_now();
                }
            }
            writer_flag.store(true, Ordering::Release);
        });

        // Reader: waves of all workload queries in flight at once, racing
        // the writer's publishes.
        let reader_outcomes = &outcomes;
        let reader_queries = &queries;
        let reader_server = &server;
        let reader_waves = &waves_done;
        let reader_flag = &writer_done;
        scope.spawn(move || {
            while !reader_flag.load(Ordering::Acquire) {
                let handles: Vec<_> = reader_queries
                    .iter()
                    .map(|q| {
                        reader_server
                            .submit(q, QueryOptions::collect_all())
                            .unwrap()
                    })
                    .collect();
                let mut guard = reader_outcomes.lock().unwrap();
                for (qi, handle) in handles.into_iter().enumerate() {
                    guard.push((qi, handle.wait()));
                }
                drop(guard);
                reader_waves.fetch_add(1, Ordering::Release);
            }
        });
    });

    // Verify every outcome against the exact snapshot its epoch pinned.
    let published = published.into_inner().unwrap();
    let outcomes = outcomes.into_inner().unwrap();
    assert!(outcomes.len() >= num_chunks * queries.len());
    let mut expected: HashMap<(u64, usize), Vec<hgmatch_core::Embedding>> = HashMap::new();
    let mut epochs_seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for (qi, outcome) in &outcomes {
        assert_eq!(outcome.status, QueryStatus::Completed);
        let snapshot = published
            .get(&outcome.data_epoch)
            .unwrap_or_else(|| panic!("unknown epoch {}", outcome.data_epoch));
        let oracle = expected
            .entry((outcome.data_epoch, *qi))
            .or_insert_with(|| Matcher::new(snapshot).find_all(&queries[*qi]).unwrap());
        assert_eq!(
            outcome.embeddings.as_deref(),
            Some(&oracle[..]),
            "query {qi} at epoch {} saw a torn snapshot",
            outcome.data_epoch
        );
        epochs_seen.insert(outcome.data_epoch);
    }
    assert!(
        epochs_seen.len() >= 2,
        "queries must actually span several epochs (saw {epochs_seen:?})"
    );
}

/// Plan-cache invalidation: updates that change a query's candidate space
/// must not serve stale plans — including the extinction case where
/// partition ids shift — while label-disjoint queries keep their plans.
#[test]
fn plan_cache_invalidation_keeps_answers_fresh() {
    let mut dynamic = DynamicHypergraph::new();
    dynamic.add_vertices(6, Label::new(0)); // A-vertices 0..6
    dynamic.add_vertices(6, Label::new(1)); // B-vertices 6..12
    for i in 0..3u32 {
        dynamic.insert_hyperedge(vec![2 * i, 2 * i + 1]).unwrap(); // {A,A}
        dynamic
            .insert_hyperedge(vec![6 + 2 * i, 7 + 2 * i])
            .unwrap(); // {B,B}
    }
    let first = dynamic.snapshot();
    let server = MatchServer::new(first.graph, ServeConfig::default().with_threads(2));

    let aa = {
        let mut b = HypergraphBuilder::new();
        b.add_vertices(2, Label::new(0));
        b.add_edge(vec![0, 1]).unwrap();
        b.build().unwrap()
    };
    let bb = {
        let mut b = HypergraphBuilder::new();
        b.add_vertices(2, Label::new(1));
        b.add_edge(vec![0, 1]).unwrap();
        b.build().unwrap()
    };
    assert_eq!(server.run(&aa, QueryOptions::count()).unwrap().count, 3);
    assert_eq!(server.run(&bb, QueryOptions::count()).unwrap().count, 3);

    // Delete every {A,A} edge: the {B,B} partition's id shifts from 1 to 0
    // (sids unstable) — a stale {B,B} plan would scan the wrong partition.
    for i in 0..3u32 {
        dynamic.delete_hyperedge(&[2 * i, 2 * i + 1]).unwrap();
    }
    let delta = dynamic.snapshot();
    assert!(!delta.sids_stable);
    server.update_data(
        Arc::clone(&delta.graph),
        &delta.touched_labels,
        delta.sids_stable,
    );

    let aa_after = server.run(&aa, QueryOptions::count()).unwrap();
    assert_eq!(aa_after.count, 0, "deleted partition must be empty");
    assert!(!aa_after.plan_cached, "stale plan must not be served");
    let bb_after = server.run(&bb, QueryOptions::count()).unwrap();
    assert_eq!(bb_after.count, 3);
    assert!(server.stats().plans_invalidated >= 2);

    // Now touch only label 1 with a *small* drift (card 3 → 4, below the
    // default 0.5 replan threshold): both plans survive the epoch — the
    // {A,A} plan because its labels are disjoint, the {B,B} plan because
    // its cardinalities barely moved (DESIGN.md §13.4).
    dynamic.insert_hyperedge(vec![6, 8]).unwrap();
    let delta = dynamic.snapshot();
    assert!(delta.sids_stable);
    assert_eq!(delta.touched_labels, vec![Label::new(1)]);
    server.update_data(
        Arc::clone(&delta.graph),
        &delta.touched_labels,
        delta.sids_stable,
    );

    let aa_final = server.run(&aa, QueryOptions::count()).unwrap();
    assert_eq!(aa_final.count, 0);
    assert!(
        aa_final.plan_cached,
        "label-disjoint plan must survive the update"
    );
    let bb_final = server.run(&bb, QueryOptions::count()).unwrap();
    assert_eq!(bb_final.count, 4);
    assert!(
        bb_final.plan_cached,
        "below-threshold drift must keep the touched-label plan"
    );
    assert_eq!(server.stats().plans_replanned, 0);

    // Push the {B,B} cardinality past the drift threshold (3 at plan time
    // → 6, drift 1.0 > 0.5): the plan is dropped, counted as a replan, and
    // the next submission plans afresh — with correct results.
    dynamic.insert_hyperedge(vec![6, 10]).unwrap();
    dynamic.insert_hyperedge(vec![7, 9]).unwrap();
    let delta = dynamic.snapshot();
    assert!(delta.sids_stable);
    server.update_data(
        Arc::clone(&delta.graph),
        &delta.touched_labels,
        delta.sids_stable,
    );
    let bb_drifted = server.run(&bb, QueryOptions::count()).unwrap();
    assert_eq!(bb_drifted.count, 6);
    assert!(!bb_drifted.plan_cached, "drifted plan must re-plan");
    assert_eq!(server.stats().plans_replanned, 1);
}

/// Delta matching over generated streams: patching the old full result set
/// with the delta outcome equals a fresh full run on the new snapshot, for
/// q2/q3 queries, in both kernel modes.
#[test]
fn delta_match_agrees_with_full_rerun_on_streams() {
    let base = random_arity_hypergraph(0xDE17A, 100, 220, 3, 2, 4);
    let mut dynamic = DynamicHypergraph::from_hypergraph(&base);
    let old = dynamic.snapshot().graph;
    let queries = sampled_queries(&old, 900);
    assert!(queries.len() >= 3);

    let stream = generate_update_stream(
        &base,
        &UpdateStreamConfig {
            ops: 60,
            insert_ratio: 0.5,
            seed: 33,
            ..Default::default()
        },
    );
    for op in &stream {
        dynamic.apply(op).unwrap();
    }
    let new = dynamic.snapshot().graph;

    let batch = DeltaBatch::between(&old, &new);
    let effective: usize = stream
        .iter()
        .filter(|op| matches!(op, UpdateOp::Insert(_) | UpdateOp::Delete(_)))
        .count();
    assert!(!batch.is_empty());
    assert!(batch.inserted.len() + batch.deleted.len() <= effective);

    for mode in [KernelMode::Auto, KernelMode::ForceScalar] {
        set_kernel_mode(mode);
        for (qi, query) in queries.iter().enumerate() {
            let outcome = delta_match(&old, &new, query, &batch).unwrap();
            let old_results = Matcher::new(&old).find_all(query).unwrap();
            let fresh = Matcher::new(&new).find_all(query).unwrap();
            assert_eq!(
                outcome.patch(&old, &new, &old_results),
                fresh,
                "query {qi} ({mode:?}): delta patch != full rerun"
            );
        }
    }
    set_kernel_mode(KernelMode::Auto);
}
