//! End-to-end tests of the multi-query serving layer (ISSUE 2 acceptance
//! paths): concurrent-query correctness against the sequential oracle,
//! cancellation, timeouts, deterministic `max_results` early-exit and
//! plan-cache observability.

use std::sync::Arc;
use std::time::Duration;

use hgmatch_core::exec::SequentialExecutor;
use hgmatch_core::serve::{MatchServer, QueryOptions, QueryStatus, ServeConfig};
use hgmatch_core::sink::{CountSink, FirstKSink};
use hgmatch_core::{MatchConfig, Planner, QueryGraph};
use hgmatch_datasets::testgen::{blowup, paper_data, random_arity_hypergraph, workload_queries};
use hgmatch_hypergraph::{env_shards, Hypergraph, HypergraphBuilder, Label, ShardedHypergraph};

/// A deterministic random hypergraph over `nl` labels, arities 2–4.
fn random_data(nv: u32, nl: u32, ne: u32, seed: u64) -> Hypergraph {
    random_arity_hypergraph(seed, nv as usize, ne as usize, nl, 2, 4)
}

fn sequential_count(data: &Hypergraph, query: &Hypergraph) -> u64 {
    let q = QueryGraph::new(query).unwrap();
    let plan = Planner::plan(&q, data).unwrap();
    let sink = CountSink::new();
    let stats = SequentialExecutor::run(&plan, data, &sink, &MatchConfig::sequential());
    stats.embeddings()
}

/// Acceptance: ≥ 8 concurrent queries on one shared pool return the same
/// counts as running each alone through the sequential executor.
#[test]
fn concurrent_queries_match_sequential_counts() {
    let data = Arc::new(random_data(400, 3, 1200, 0xFEED));
    let queries = workload_queries();
    assert!(queries.len() >= 8, "acceptance demands >= 8 queries");
    let expected: Vec<u64> = queries.iter().map(|q| sequential_count(&data, q)).collect();
    assert!(
        expected.iter().any(|&c| c > 0),
        "workload must be non-trivial"
    );

    let server = MatchServer::new(
        Arc::clone(&data),
        ServeConfig::default()
            .with_threads(4)
            .with_fairness_quantum(8),
    );
    // Submit everything before waiting on anything: all queries are in
    // flight on the shared pool together.
    let handles: Vec<_> = queries
        .iter()
        .map(|q| server.submit(q, QueryOptions::count()).unwrap())
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let outcome = handle.wait();
        assert_eq!(outcome.status, QueryStatus::Completed, "query {i}");
        assert_eq!(outcome.count, expected[i], "query {i}");
    }
    let stats = server.stats();
    assert_eq!(stats.admitted, queries.len() as u64);
    assert_eq!(stats.completed, queries.len() as u64);
    assert_eq!(stats.active, 0);
}

/// Collected embeddings under concurrency equal the sequential executor's
/// full result sets, not just the counts.
#[test]
fn concurrent_collection_matches_sequential_embeddings() {
    let data = Arc::new(random_data(150, 3, 400, 0xBEEF));
    let queries = workload_queries();
    let server = MatchServer::new(Arc::clone(&data), ServeConfig::default().with_threads(3));
    let handles: Vec<_> = queries
        .iter()
        .map(|q| server.submit(q, QueryOptions::collect_all()).unwrap())
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let outcome = handle.wait();
        let q = QueryGraph::new(&queries[i]).unwrap();
        let plan = Planner::plan(&q, &data).unwrap();
        let sink = hgmatch_core::CollectSink::new();
        SequentialExecutor::run(&plan, &data, &sink, &MatchConfig::sequential());
        let expected = sink.into_results();
        assert_eq!(
            outcome.embeddings.as_deref(),
            Some(&expected[..]),
            "query {i}"
        );
    }
}

/// Cancellation mid-expansion releases the workers: the pool stays usable
/// and the cancelled query resolves promptly despite an astronomically
/// large search space.
#[test]
fn cancellation_releases_pool() {
    let (data, query) = blowup(60, 5);
    let data = Arc::new(data);
    let server = MatchServer::new(Arc::clone(&data), ServeConfig::default().with_threads(2));

    let handle = server.submit(&query, QueryOptions::count()).unwrap();
    // Let workers sink their teeth into the expansion before cancelling.
    std::thread::sleep(Duration::from_millis(20));
    handle.cancel();
    let outcome = handle.wait();
    assert_eq!(outcome.status, QueryStatus::Cancelled);

    // The pool must still serve new queries correctly.
    let mut b = HypergraphBuilder::new();
    b.add_vertices(2, Label::new(0));
    b.add_edge(vec![0, 1]).unwrap();
    let small = b.build().unwrap();
    let follow_up = server.submit(&small, QueryOptions::count()).unwrap().wait();
    assert_eq!(follow_up.status, QueryStatus::Completed);
    assert_eq!(follow_up.count, sequential_count(&data, &small));
    assert_eq!(server.stats().cancelled, 1);
}

/// A wall-clock timeout stops in-flight work, flags the outcome and leaves
/// the pool intact; the partial count is a valid lower bound.
#[test]
fn timeout_returns_partial_results_with_flag() {
    let (data, query) = blowup(60, 5);
    let data = Arc::new(data);
    let server = MatchServer::new(Arc::clone(&data), ServeConfig::default().with_threads(2));

    let outcome = server
        .run(
            &query,
            QueryOptions::count().with_timeout(Duration::from_millis(30)),
        )
        .unwrap();
    assert_eq!(outcome.status, QueryStatus::TimedOut);

    // Pool alive: a feasible follow-up completes exactly.
    let mut b = HypergraphBuilder::new();
    b.add_vertices(2, Label::new(0));
    b.add_edge(vec![0, 1]).unwrap();
    let small = b.build().unwrap();
    let follow_up = server.run(&small, QueryOptions::count()).unwrap();
    assert_eq!(follow_up.status, QueryStatus::Completed);
    assert_eq!(follow_up.count, sequential_count(&data, &small));
    assert_eq!(server.stats().timed_out, 1);
}

/// `max_results` early-exit on a single-worker pool returns exactly the
/// sequential executor's first-N: the serving scheduler emits extensions
/// so its LIFO pop order reproduces the sequential depth-first order.
#[test]
fn max_results_matches_sequential_first_n() {
    let (data, query) = blowup(10, 3);
    let data = Arc::new(data);
    let q = QueryGraph::new(&query).unwrap();
    let plan = Planner::plan(&q, &data).unwrap();

    for k in [1usize, 7, 23] {
        let oracle = FirstKSink::new(k);
        SequentialExecutor::run(&plan, &data, &oracle, &MatchConfig::sequential());
        let expected = oracle.into_results();
        assert_eq!(expected.len(), k, "oracle must saturate");

        let server = MatchServer::new(Arc::clone(&data), ServeConfig::default().with_threads(1));
        let outcome = server.run(&query, QueryOptions::first(k as u64)).unwrap();
        assert_eq!(outcome.status, QueryStatus::LimitReached, "k={k}");
        assert_eq!(outcome.count, k as u64, "k={k}");
        assert_eq!(
            outcome.embeddings.as_deref(),
            Some(&expected[..]),
            "k={k}: first-{k} must match the sequential executor"
        );
    }
}

/// A `max_results` limit also stops count-only expansion (not just result
/// recording): the task counter stays far below the exhaustive run's.
#[test]
fn max_results_stops_expansion_for_counting() {
    let (data, query) = blowup(40, 4);
    let data = Arc::new(data);
    let server = MatchServer::new(Arc::clone(&data), ServeConfig::default().with_threads(2));
    let outcome = server
        .run(&query, QueryOptions::count().with_max_results(100))
        .unwrap();
    assert_eq!(outcome.status, QueryStatus::LimitReached);
    assert_eq!(outcome.count, 100);
    // The exhaustive count is ~40⁴·automorphisms; stopping early must keep
    // the explored expansions orders of magnitude below that.
    assert!(
        outcome.metrics.expansions < 1_000_000,
        "expansion did not stop early: {} expansions",
        outcome.metrics.expansions
    );
}

/// A plan-cache hit is observable through both the per-query outcome and
/// the aggregate server stats, and cached plans still answer correctly.
#[test]
fn plan_cache_hits_are_observable() {
    let data = Arc::new(paper_data());
    let mut b = HypergraphBuilder::new();
    for &l in &[0u32, 2, 0, 0, 1] {
        b.add_vertex(Label::new(l));
    }
    b.add_edge(vec![2, 4]).unwrap();
    b.add_edge(vec![0, 1, 2]).unwrap();
    b.add_edge(vec![0, 1, 3, 4]).unwrap();
    let query = b.build().unwrap();

    let server = MatchServer::new(Arc::clone(&data), ServeConfig::default().with_threads(2));
    let first = server.run(&query, QueryOptions::count()).unwrap();
    let second = server.run(&query, QueryOptions::count()).unwrap();
    let third = server.run(&query, QueryOptions::count()).unwrap();
    assert_eq!((first.count, second.count, third.count), (2, 2, 2));
    assert!(!first.plan_cached);
    assert!(second.plan_cached && third.plan_cached);

    let stats = server.stats();
    assert_eq!(stats.plan_cache_hits, 2);
    assert_eq!(stats.plan_cache_misses, 1);
    assert_eq!(stats.plan_cache_size, 1);
}

/// Infeasible and empty-result queries resolve without touching the pool.
#[test]
fn trivial_queries_resolve_inline() {
    let data = Arc::new(paper_data());
    let server = MatchServer::new(Arc::clone(&data), ServeConfig::default().with_threads(1));
    let mut b = HypergraphBuilder::new();
    b.add_vertices(2, Label::new(9));
    b.add_edge(vec![0, 1]).unwrap();
    let infeasible = b.build().unwrap();
    let handle = server.submit(&infeasible, QueryOptions::count()).unwrap();
    assert!(handle.is_finished(), "infeasible query resolves at submit");
    let outcome = handle.wait();
    assert_eq!(outcome.status, QueryStatus::Completed);
    assert_eq!(outcome.count, 0);
    assert_eq!(server.stats().tasks_executed, 0);
}

/// Submission errors (empty query) surface as errors, not hangs.
#[test]
fn empty_query_errors() {
    let data = Arc::new(paper_data());
    let server = MatchServer::new(data, ServeConfig::default().with_threads(1));
    let empty = HypergraphBuilder::new().build().unwrap();
    assert!(server.submit(&empty, QueryOptions::count()).is_err());
}

/// Dropping the server cancels in-flight queries and wakes their waiters
/// instead of leaking a wedged pool.
#[test]
fn shutdown_cancels_in_flight_queries() {
    let (data, query) = blowup(60, 5);
    let server = MatchServer::new(Arc::new(data), ServeConfig::default().with_threads(2));
    let handle = server.submit(&query, QueryOptions::count()).unwrap();
    std::thread::sleep(Duration::from_millis(5));
    server.shutdown();
    let outcome = handle.wait();
    assert_eq!(outcome.status, QueryStatus::Cancelled);
}

/// With work stealing disabled each query is pinned to the worker that
/// claimed its seed: results stay correct and no steals happen.
#[test]
fn no_stealing_pins_queries_and_stays_correct() {
    let data = Arc::new(random_data(150, 3, 400, 0x1234));
    let queries = workload_queries();
    let expected: Vec<u64> = queries.iter().map(|q| sequential_count(&data, q)).collect();
    let mut config = ServeConfig::default().with_threads(3);
    config.match_config.work_stealing = false;
    let server = MatchServer::new(Arc::clone(&data), config);
    let handles: Vec<_> = queries
        .iter()
        .map(|q| server.submit(q, QueryOptions::count()).unwrap())
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        assert_eq!(handle.wait().count, expected[i], "query {i}");
    }
    assert_eq!(server.stats().steals, 0);
}

/// Many repeated submissions of a small workload stress admission,
/// finalisation and the plan cache together.
#[test]
fn repeated_mixed_workload_is_stable() {
    let data = Arc::new(random_data(200, 3, 600, 0xABCD));
    let queries = workload_queries();
    let expected: Vec<u64> = queries.iter().map(|q| sequential_count(&data, q)).collect();
    let server = MatchServer::new(
        Arc::clone(&data),
        ServeConfig::default()
            .with_threads(3)
            .with_fairness_quantum(4),
    );
    for round in 0..5 {
        let handles: Vec<_> = queries
            .iter()
            .map(|q| server.submit(q, QueryOptions::count()).unwrap())
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let outcome = h.wait();
            assert_eq!(outcome.count, expected[i], "round {round}, query {i}");
        }
    }
    let stats = server.stats();
    assert_eq!(stats.admitted, 5 * queries.len() as u64);
    // Every round after the first hits the plan cache for every query.
    assert_eq!(stats.plan_cache_hits, 4 * queries.len() as u64);
}

/// An update storm races a tiny plan cache: `update_data` bumps the epoch
/// (alternating label-touched and sids-shifted sweeps) while submissions
/// keep planning into a capacity-2 cache, so entries are concurrently
/// inserted, evicted and invalidated. Every published snapshot has the
/// same content, so any wrong answer means a query ran a plan from the
/// wrong epoch or a half-swept cache.
#[test]
fn serving_from_sharded_snapshots_matches_monolithic_counts() {
    // Honor the CI shard matrix (`HGMATCH_SHARDS` ∈ {2,4}); always also
    // exercise the merge path even when the env default of 1 applies.
    let mut shard_counts = vec![env_shards()];
    if !shard_counts.contains(&3) {
        shard_counts.push(3);
    }
    let base = random_data(140, 3, 350, 0x51A2D);
    let queries = workload_queries();
    for num_shards in shard_counts {
        let mut sharded = ShardedHypergraph::from_hypergraph(&base, num_shards).unwrap();
        let first = sharded.snapshot();
        let server = MatchServer::new(
            Arc::clone(&first.graph),
            ServeConfig::default().with_threads(3),
        );
        // Churn a few epochs through the facade; after each publish, served
        // counts must equal the sequential oracle on the merged snapshot.
        for round in 0..4u32 {
            for i in 0..25u32 {
                let e = vec![(round * 25 + i) % 140, ((round + 2) * 31 + i * 7) % 140];
                if e[0] != e[1] {
                    let _ = sharded.insert_hyperedge(e).unwrap();
                }
            }
            let delta = sharded.snapshot();
            server.update_data(
                Arc::clone(&delta.graph),
                &delta.touched_labels,
                delta.sids_stable,
            );
            for (qi, q) in queries.iter().enumerate() {
                let outcome = server.run(q, QueryOptions::count()).unwrap();
                assert_eq!(outcome.status, QueryStatus::Completed);
                assert_eq!(
                    outcome.count,
                    sequential_count(&delta.graph, q),
                    "{num_shards} shards, round {round}, q{qi}: served count drifted"
                );
            }
        }
        server.shutdown();
    }
}

#[test]
fn update_data_epoch_storm_keeps_results_exact() {
    let data = Arc::new(random_data(150, 3, 400, 0x5EED));
    let queries = workload_queries();
    let expected: Vec<u64> = queries.iter().map(|q| sequential_count(&data, q)).collect();
    let server = MatchServer::new(
        Arc::clone(&data),
        ServeConfig::default()
            .with_threads(3)
            .with_plan_cache_capacity(2),
    );
    let updates = 48u64;
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for i in 0..updates {
                server.update_data(Arc::clone(&data), &[Label::new((i % 3) as u32)], i % 5 != 4);
                std::thread::yield_now();
            }
        });
        for round in 0..8 {
            let handles: Vec<_> = queries
                .iter()
                .map(|q| server.submit(q, QueryOptions::count()).unwrap())
                .collect();
            for (i, h) in handles.into_iter().enumerate() {
                let outcome = h.wait();
                assert_eq!(
                    outcome.status,
                    QueryStatus::Completed,
                    "round {round} q {i}"
                );
                assert_eq!(outcome.count, expected[i], "round {round} q {i}");
                assert!(outcome.data_epoch <= updates, "round {round} q {i}");
            }
        }
    });
    let stats = server.stats();
    assert_eq!(stats.data_epoch, updates);
    assert_eq!(stats.admitted, 8 * queries.len() as u64);
    assert_eq!(stats.completed, 8 * queries.len() as u64);
    assert!(
        stats.plan_cache_size <= 2,
        "cache must stay within capacity through the storm"
    );
    server.shutdown();
}
