//! Scheduler-stress and determinism suites for the work-assisting
//! scheduler (DESIGN.md §12, ISSUE 4 acceptance paths).
//!
//! Two families:
//!
//! * **Determinism** — for random data/query pairs, the served embedding
//!   multiset must equal the sequential executor's, for every pool size in
//!   {1, 2, 8}, in both kernel modes, with splitting forced aggressively
//!   (threshold 4, chunk 2) so assist tickets saturate the schedule.
//! * **Accounting** — every spawned task (seed scans, children, assist
//!   tickets) is executed exactly once: after the pool drains,
//!   `tasks_spawned == tasks_executed`. A lost ticket would hang a query
//!   (pending never reaches zero); a double-executed one would double
//!   results — both are caught here and by the differential checks.
//!
//! The CI `sched-stress` job runs this suite with `HGMATCH_WORKERS=8` and
//! the `HGMATCH_SPLIT_*` env overrides, on top of the scalar×workers
//! matrix of the `dynamic` job.

use std::sync::Arc;

use hgmatch_core::exec::SequentialExecutor;
use hgmatch_core::serve::{MatchServer, QueryOptions, QueryStatus, ServeConfig};
use hgmatch_core::sink::CollectSink;
use hgmatch_core::{MatchConfig, Matcher, Planner, QueryGraph};
use hgmatch_datasets::testgen::{
    blowup, env_workers, random_arity_hypergraph, random_subquery, workload_queries,
};
use hgmatch_hypergraph::setops::{set_kernel_mode, KernelMode};
use hgmatch_hypergraph::Hypergraph;

/// Splitting forced far below the production threshold, so even the small
/// test graphs exercise shared candidate ranges and assist tickets.
fn splitty(threads: usize) -> MatchConfig {
    MatchConfig::parallel(threads)
        .with_split_threshold(4)
        .with_split_chunk(2)
}

fn sequential_embeddings(data: &Hypergraph, query: &Hypergraph) -> Vec<Vec<u32>> {
    let q = QueryGraph::new(query).unwrap();
    let plan = Planner::plan(&q, data).unwrap();
    let sink = CollectSink::new();
    SequentialExecutor::run(&plan, data, &sink, &MatchConfig::sequential());
    sink.into_results()
        .into_iter()
        .map(|e| e.raw().to_vec())
        .collect()
}

/// Property: for random planted queries, the served embedding multiset is
/// identical to the sequential engine's for every pool size in {1, 2, 8},
/// in both kernel modes, under forced splitting.
#[test]
fn served_embeddings_match_sequential_across_workers_and_kernels() {
    for mode in [KernelMode::Auto, KernelMode::ForceScalar] {
        set_kernel_mode(mode);
        for seed in 0..6u64 {
            let data = Arc::new(random_arity_hypergraph(
                0xA551_5700 + seed,
                120,
                420,
                3,
                2,
                4,
            ));
            let Some(query) = random_subquery(&data, 0xD0_0D + seed, 2 + (seed as usize % 2))
            else {
                continue;
            };
            // ServeSink sorts; sort the oracle once per seed the same way.
            let mut expected = sequential_embeddings(&data, &query);
            expected.sort_unstable();

            for workers in [1usize, 2, 8] {
                let server = MatchServer::new(
                    Arc::clone(&data),
                    ServeConfig {
                        threads: workers,
                        match_config: splitty(workers),
                        ..ServeConfig::default()
                    },
                );
                let outcome = server
                    .run(&query, QueryOptions::collect_all())
                    .expect("valid query");
                assert_eq!(outcome.status, QueryStatus::Completed);
                let got: Vec<Vec<u32>> = outcome
                    .embeddings
                    .expect("collected")
                    .into_iter()
                    .map(|e| e.raw().to_vec())
                    .collect();
                assert_eq!(
                    got, expected,
                    "seed {seed}, workers {workers}, mode {mode:?}"
                );
                let stats = server.stats();
                assert_eq!(
                    stats.tasks_spawned, stats.tasks_executed,
                    "seed {seed}, workers {workers}: every spawned task runs exactly once"
                );
                server.shutdown();
            }
        }
    }
    set_kernel_mode(KernelMode::Auto);
}

/// The one-shot engine under forced splitting agrees with itself unsplit,
/// in both kernel modes — the engine-side leg of the same property.
#[test]
fn engine_split_counts_match_unsplit() {
    for mode in [KernelMode::Auto, KernelMode::ForceScalar] {
        set_kernel_mode(mode);
        for seed in 0..4u64 {
            let data = random_arity_hypergraph(0xE9_1E00 + seed, 100, 380, 3, 2, 4);
            let Some(query) = random_subquery(&data, 0xBEE + seed, 2) else {
                continue;
            };
            let plain =
                Matcher::with_config(&data, MatchConfig::parallel(4).with_split_threshold(0))
                    .count(&query)
                    .unwrap();
            let split = Matcher::with_config(&data, splitty(4))
                .count(&query)
                .unwrap();
            assert_eq!(plain, split, "seed {seed}, mode {mode:?}");
        }
    }
    set_kernel_mode(KernelMode::Auto);
}

/// Stress: a combinatorial blow-up query (huge candidate lists at every
/// depth) races a mixed workload on one pool with aggressive splitting.
/// Checks exact counts, split activity, and exactly-once task accounting.
#[test]
fn blowup_under_forced_splitting_accounts_every_task() {
    let workers = env_workers(8);
    let (data, big) = blowup(11, 3);
    let data = Arc::new(data);
    let queries = workload_queries();

    let expected_big = sequential_embeddings(&data, &big).len() as u64;
    let expected: Vec<u64> = queries
        .iter()
        .map(|q| sequential_embeddings(&data, q).len() as u64)
        .collect();

    let server = MatchServer::new(
        Arc::clone(&data),
        ServeConfig {
            threads: workers,
            fairness_quantum: 8,
            match_config: splitty(workers),
            ..ServeConfig::default()
        },
    );
    // The big query and the mixed workload in flight together, twice over.
    for _round in 0..2 {
        let big_handle = server.submit(&big, QueryOptions::count()).unwrap();
        let handles: Vec<_> = queries
            .iter()
            .map(|q| server.submit(q, QueryOptions::count()).unwrap())
            .collect();
        assert_eq!(big_handle.wait().count, expected_big);
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.wait().count, expected[i], "query {i}");
        }
    }

    let stats = server.stats();
    assert_eq!(stats.active, 0);
    assert_eq!(
        stats.tasks_spawned, stats.tasks_executed,
        "no lost or double-executed tasks"
    );
    if workers > 1 {
        assert!(
            stats.splits > 0,
            "threshold 4 on a blow-up instance must split (stats: {stats:?})"
        );
    } else {
        assert_eq!(stats.splits, 0, "a lone worker must never split");
    }
    server.shutdown();
}

/// Cancellation mid-split releases the pool: unclaimed chunks of shared
/// candidate ranges are dropped, pending still reaches zero, and the
/// accounting invariant holds even for degenerate (post-stop) tickets.
#[test]
fn cancellation_mid_split_drains_cleanly() {
    let workers = env_workers(8);
    let (data, query) = blowup(13, 4);
    let data = Arc::new(data);
    let server = MatchServer::new(
        Arc::clone(&data),
        ServeConfig {
            threads: workers,
            match_config: splitty(workers),
            ..ServeConfig::default()
        },
    );
    let handle = server.submit(&query, QueryOptions::count()).unwrap();
    handle.cancel();
    let outcome = handle.wait();
    assert_eq!(outcome.status, QueryStatus::Cancelled);

    // A fresh query on the same pool still answers exactly: the pool
    // survived the mid-split teardown.
    let after = server
        .run(&workload_queries()[0], QueryOptions::count())
        .unwrap();
    assert_eq!(after.status, QueryStatus::Completed);
    let stats = server.stats();
    assert_eq!(stats.active, 0);
    assert_eq!(stats.tasks_spawned, stats.tasks_executed);
    server.shutdown();
}

/// `max_results` under forced splitting: expansion stops, results are
/// valid embeddings, and with one worker the first-k set is exactly the
/// sequential executor's (splitting is suppressed at pool size 1).
#[test]
fn max_results_under_splitting() {
    let (data, query) = blowup(9, 3);
    let data = Arc::new(data);
    let expected = sequential_embeddings(&data, &query);
    assert!(expected.len() > 10);

    // Multi-worker: any 5 valid embeddings.
    let server = MatchServer::new(
        Arc::clone(&data),
        ServeConfig {
            threads: 4,
            match_config: splitty(4),
            ..ServeConfig::default()
        },
    );
    let outcome = server.run(&query, QueryOptions::first(5)).unwrap();
    assert_eq!(outcome.status, QueryStatus::LimitReached);
    let got = outcome.embeddings.unwrap();
    assert_eq!(got.len(), 5);
    for e in &got {
        assert!(
            expected.iter().any(|x| x == e.raw()),
            "served a non-embedding"
        );
    }
    let stats = server.stats();
    assert_eq!(stats.tasks_spawned, stats.tasks_executed);
    server.shutdown();

    // Single worker: exactly the sequential first-k, even with the split
    // knobs forced low (pool size 1 suppresses splitting).
    let server = MatchServer::new(
        Arc::clone(&data),
        ServeConfig {
            threads: 1,
            match_config: splitty(1),
            ..ServeConfig::default()
        },
    );
    let outcome = server.run(&query, QueryOptions::first(5)).unwrap();
    let got: Vec<Vec<u32>> = outcome
        .embeddings
        .unwrap()
        .into_iter()
        .map(|e| e.raw().to_vec())
        .collect();
    // Sequential first-5 via the engine's own early-exit sink.
    let q = QueryGraph::new(&query).unwrap();
    let plan = Planner::plan(&q, &data).unwrap();
    let sink = hgmatch_core::sink::FirstKSink::new(5);
    SequentialExecutor::run(&plan, &data, &sink, &MatchConfig::sequential());
    let mut first5: Vec<Vec<u32>> = sink
        .into_results()
        .into_iter()
        .map(|e| e.raw().to_vec())
        .collect();
    first5.sort_unstable();
    assert_eq!(got, first5);
    server.shutdown();
}
