//! Tests pinning the paper's worked examples and stated guarantees:
//! Example III.1 (the two embeddings), Example V.1 (candidate generation),
//! Example V.2 / Fig. 4 (profile validation rejects), Fig. 5 (dataflow
//! shape), and Theorem VI.1 (memory bound).

use hgmatch_core::engine::ParallelEngine;
use hgmatch_core::operators::{Dataflow, Operator};
use hgmatch_core::{CountSink, MatchConfig, Matcher, Planner, QueryGraph};
use hgmatch_hypergraph::{Hypergraph, HypergraphBuilder, Label};

fn paper_data() -> Hypergraph {
    let mut b = HypergraphBuilder::new();
    for &l in &[0u32, 2, 0, 0, 1, 2, 0] {
        b.add_vertex(Label::new(l));
    }
    b.add_edge(vec![2, 4]).unwrap();
    b.add_edge(vec![4, 6]).unwrap();
    b.add_edge(vec![0, 1, 2]).unwrap();
    b.add_edge(vec![3, 5, 6]).unwrap();
    b.add_edge(vec![0, 1, 4, 6]).unwrap();
    b.add_edge(vec![2, 3, 4, 5]).unwrap();
    b.build().unwrap()
}

fn paper_query() -> Hypergraph {
    let mut b = HypergraphBuilder::new();
    for &l in &[0u32, 2, 0, 0, 1] {
        b.add_vertex(Label::new(l));
    }
    b.add_edge(vec![2, 4]).unwrap();
    b.add_edge(vec![0, 1, 2]).unwrap();
    b.add_edge(vec![0, 1, 3, 4]).unwrap();
    b.build().unwrap()
}

/// Example III.1: exactly the embeddings (e1,e3,e5) and (e2,e4,e6) —
/// 0-indexed (e0,e2,e4), (e1,e3,e5) — and the partial query {u2,u4} has
/// partial embeddings (e1) and (e2) → our (e0), (e1).
#[test]
fn example_iii_1() {
    let data = paper_data();
    let full = Matcher::new(&data).find_all(&paper_query()).unwrap();
    let raw: Vec<&[u32]> = full.iter().map(|m| m.raw()).collect();
    assert_eq!(raw, vec![&[0u32, 2, 4][..], &[1u32, 3, 5][..]]);

    let mut b = HypergraphBuilder::new();
    b.add_vertex(Label::new(0));
    b.add_vertex(Label::new(1));
    b.add_edge(vec![0, 1]).unwrap();
    let partial = b.build().unwrap();
    let partial_embeddings = Matcher::new(&data).find_all(&partial).unwrap();
    let raw: Vec<&[u32]> = partial_embeddings.iter().map(|m| m.raw()).collect();
    assert_eq!(raw, vec![&[0u32][..], &[1u32][..]]);
}

/// Fig. 5a: the dataflow for the paper's plan is SCAN → EXPAND → EXPAND →
/// SINK with the cardinality-2 partitions.
#[test]
fn fig5_dataflow_shape() {
    let data = paper_data();
    let query = QueryGraph::new(&paper_query()).unwrap();
    let plan = Planner::plan_with_order(&query, &data, vec![0, 1, 2]).unwrap();
    let dataflow = Dataflow::from_plan(&plan, &data);
    match dataflow.operators() {
        [Operator::Scan {
            query_edge: 0,
            cardinality: 2,
        }, Operator::Expand {
            query_edge: 1,
            cardinality: 2,
            ..
        }, Operator::Expand {
            query_edge: 2,
            cardinality: 2,
            ..
        }, Operator::Sink] => {}
        other => panic!("unexpected dataflow {other:?}"),
    }
}

/// Theorem VI.1: the engine's accounted intermediate-result memory stays
/// within O(aq · |E(q)|² · |E(H)|) — checked with an explicit constant.
#[test]
fn theorem_vi_1_memory_bound() {
    // A denser instance than Fig. 1 so the bound is non-trivial.
    let mut b = HypergraphBuilder::new();
    b.add_vertices(30, Label::new(0));
    for i in 0..30u32 {
        for j in (i + 1)..30 {
            if (i + j) % 3 != 0 {
                b.add_edge(vec![i, j]).unwrap();
            }
        }
    }
    let data = b.build().unwrap();

    let mut b = HypergraphBuilder::new();
    b.add_vertices(4, Label::new(0));
    b.add_edge(vec![0, 1]).unwrap();
    b.add_edge(vec![1, 2]).unwrap();
    b.add_edge(vec![2, 3]).unwrap();
    let query = b.build().unwrap();

    let qg = QueryGraph::new(&query).unwrap();
    let plan = Planner::plan(&qg, &data).unwrap();
    let sink = CountSink::new();
    let stats = ParallelEngine::run(&plan, &data, &sink, &MatchConfig::parallel(2));
    assert!(sink.count() > 0);

    let aq = qg.average_arity().ceil() as i64;
    let eq = query.num_edges() as i64;
    let eh = data.num_edges() as i64;
    // 48 bytes/task is generous for ids + boxed-slice + queue overhead.
    let bound = aq * eq * eq * eh * 48;
    assert!(
        stats.peak_memory_bytes <= bound,
        "peak {} exceeds Theorem VI.1 bound {}",
        stats.peak_memory_bytes,
        bound
    );
}

/// §IV-B size analysis: table + index storage is O(a_H · |E(H)|) — the
/// byte count divided by total incidences must be a small constant.
#[test]
fn storage_size_analysis() {
    if hgmatch_hypergraph::inverted::forced_repr().is_some() {
        return; // forced representations void the adaptive size bound
    }
    let data = paper_data();
    let incidences: usize = data.iter_edges().map(|(_, vs)| vs.len()).sum();
    let per_incidence =
        (data.table_size_bytes() + data.index_size_bytes()) as f64 / incidences as f64;
    // Tables store 4 bytes/incidence + 4/edge; the index ≤ 12/incidence
    // (posting + key + offset). Anything under 32 B/incidence is "linear
    // with a small constant".
    assert!(per_incidence < 32.0, "{per_incidence} bytes per incidence");
}

/// The matching-order planner prefers the smallest-cardinality hyperedge
/// first and then maximises overlap — Algorithm 3's tie-breaking on the
/// paper example (all cardinalities are 2, so index order wins, and every
/// later edge connects).
#[test]
fn algorithm3_order_on_paper_example() {
    let data = paper_data();
    let query = QueryGraph::new(&paper_query()).unwrap();
    // The paper's greedy Algorithm 3: all cardinalities are 2, so the
    // tie-break starts at edge 0.
    let greedy = Planner::plan_greedy(&query, &data).unwrap();
    assert_eq!(greedy.order()[0], 0);
    // Both the greedy and the cost-based default produce connected orders.
    for plan in [greedy, Planner::plan(&query, &data).unwrap()] {
        for (i, step) in plan.steps().iter().enumerate().skip(1) {
            assert!(
                !step.anchors.is_empty(),
                "step {i} must connect to the partial query (connected order)"
            );
        }
    }
}

/// Engines treat queries that are *larger* than the data gracefully.
#[test]
fn query_larger_than_data() {
    let data = paper_data();
    let mut b = HypergraphBuilder::new();
    b.add_vertices(12, Label::new(0));
    for i in 0..11u32 {
        b.add_edge(vec![i, i + 1]).unwrap();
    }
    let query = b.build().unwrap();
    assert_eq!(Matcher::new(&data).count(&query).unwrap(), 0);
}

/// Identical query and data: at least the identity embedding is found, and
/// every matched tuple is a permutation-free assignment.
#[test]
fn self_match_finds_identity() {
    let data = paper_data();
    let embeddings = Matcher::new(&data).find_all(&data.clone()).unwrap();
    assert!(embeddings
        .iter()
        .any(|m| m.raw() == (0..data.num_edges() as u32).collect::<Vec<_>>()));
}

/// Arity-1 hyperedges (singleton sets) flow through every stage.
#[test]
fn singleton_hyperedges_match() {
    let mut b = HypergraphBuilder::new();
    b.add_vertex(Label::new(0));
    b.add_vertex(Label::new(0));
    b.add_vertex(Label::new(1));
    b.add_edge(vec![0]).unwrap();
    b.add_edge(vec![1]).unwrap();
    b.add_edge(vec![0, 2]).unwrap();
    let data = b.build().unwrap();

    let mut b = HypergraphBuilder::new();
    b.add_vertex(Label::new(0));
    b.add_vertex(Label::new(1));
    b.add_edge(vec![0]).unwrap();
    b.add_edge(vec![0, 1]).unwrap();
    let query = b.build().unwrap();

    // {A} singleton attached to an {A,B} edge: only v0 has both.
    assert_eq!(Matcher::new(&data).count(&query).unwrap(), 1);
}
