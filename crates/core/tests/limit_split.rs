//! Regression: `max_results` / first-k truncation racing assist-ticket
//! splits (DESIGN.md §18).
//!
//! The fixture is a hub-star: one selective anchor edge plus one huge
//! last-step expansion of `N` sibling edges. With the split threshold
//! forced down to 4, that expansion is published for work assisting and
//! every worker chews on a chunk of it concurrently. Before the fix,
//! workers flushed their bulk counts only at chunk end and probed
//! `Sink::is_satisfied` only every `CHECK_INTERVAL` rows — so a k=5 limit
//! against a 20 000-wide expansion materialised thousands of embeddings
//! and overshot the count by orders of magnitude. After the fix (counts
//! flush every `COUNT_FLUSH` deliveries, satisfaction probed per row),
//! the overshoot is bounded by a small per-worker constant.

use hgmatch_core::serve::{MatchServer, QueryOptions, QueryStatus, ServeConfig};
use hgmatch_core::{FirstKSink, MatchConfig, Matcher};
use hgmatch_hypergraph::{Hypergraph, HypergraphBuilder, Label};
use std::sync::Arc;

/// Embeddings a k-limited run may deliver to the sink past the limit:
/// a descheduled worker can finish its claimed assist chunk (pinned to 2
/// rows below, like the sched-stress CI matrix) plus up to `COUNT_FLUSH`
/// (64) deliveries in flight before its next probe. Generous headroom on
/// top keeps the test schedule-proof on oversubscribed single-core
/// runners while staying ~40x below the pre-fix overshoot (the full
/// 20 000).
const OVERSHOOT_PER_WORKER: u64 = 128;

const N: usize = 20_000;
const K: u64 = 5;

/// Hub-star data graph: vertex 0 is the hub (label 1), vertex 1 the
/// anchor (label 2), vertices 2..N+2 leaves (label 0). Edges: the single
/// anchor edge {0,1} plus N star edges {0, 2+i}.
fn hub_star(n: usize) -> Hypergraph {
    let mut b = HypergraphBuilder::new();
    b.add_vertex(Label::new(1));
    b.add_vertex(Label::new(2));
    for _ in 0..n {
        b.add_vertex(Label::new(0));
    }
    b.add_edge(vec![0, 1]).unwrap();
    for i in 0..n {
        b.add_edge(vec![0, 2 + i as u32]).unwrap();
    }
    b.build().unwrap()
}

/// 2-path query: {hub, anchor} + {hub, leaf}. The anchor edge has exactly
/// one candidate; the leaf edge has N — one giant final expansion.
fn two_path_query() -> Hypergraph {
    let mut b = HypergraphBuilder::new();
    b.add_vertex(Label::new(1));
    b.add_vertex(Label::new(2));
    b.add_vertex(Label::new(0));
    b.add_edge(vec![0, 1]).unwrap();
    b.add_edge(vec![0, 2]).unwrap();
    b.build().unwrap()
}

/// One-shot engine path: `find_first` under forced splitting returns
/// exactly k embeddings and the sink sees a bounded number of deliveries.
#[test]
fn first_k_is_exact_under_forced_splits() {
    let data = hub_star(N);
    let query = two_path_query();
    for workers in [2usize, 8] {
        let config = MatchConfig::parallel(workers)
            .with_split_threshold(4)
            .with_split_chunk(2);
        let matcher = Matcher::with_config(&data, config);

        let results = matcher.find_first(&query, K as usize).unwrap();
        assert_eq!(results.len(), K as usize, "workers={workers}");

        // The sink-level view: deliveries past the limit stay bounded.
        let sink = FirstKSink::new(K as usize);
        let stats = matcher.run(&query, &sink).unwrap();
        let bound = K + workers as u64 * OVERSHOOT_PER_WORKER;
        assert!(
            stats.metrics.materialized <= bound,
            "workers={workers}: materialized {} > bound {bound} \
             (limit truncation raced the splits)",
            stats.metrics.materialized,
        );
        assert_eq!(sink.into_results().len(), K as usize);
    }
}

/// Resident-pool path: a `max_results` query stops exactly once with
/// `LimitReached`, reports exactly k, and materializes a bounded number
/// of embeddings even though the final expansion was split N/chunk ways.
#[test]
fn serve_limit_stops_exactly_once_under_forced_splits() {
    let data = Arc::new(hub_star(N));
    let query = two_path_query();
    for workers in [2usize, 8] {
        let mut config = ServeConfig::default().with_threads(workers);
        config.match_config = config
            .match_config
            .with_split_threshold(4)
            .with_split_chunk(2);
        let server = MatchServer::new(Arc::clone(&data), config);

        let outcome = server.run(&query, QueryOptions::first(K)).unwrap();
        assert_eq!(
            outcome.status,
            QueryStatus::LimitReached,
            "workers={workers}"
        );
        assert_eq!(outcome.count, K, "workers={workers}");
        let embs = outcome.embeddings.as_ref().expect("materialize mode");
        assert_eq!(embs.len(), K as usize, "workers={workers}");
        let bound = K + workers as u64 * OVERSHOOT_PER_WORKER;
        assert!(
            outcome.metrics.materialized <= bound,
            "workers={workers}: materialized {} > bound {bound}",
            outcome.metrics.materialized,
        );

        // Count-only limit: same exact stop without materializing anything.
        let outcome = server
            .run(&query, QueryOptions::count().with_max_results(K))
            .unwrap();
        assert_eq!(outcome.status, QueryStatus::LimitReached);
        assert_eq!(outcome.count, K);
        assert_eq!(outcome.metrics.materialized, 0);
        assert!(outcome.embeddings.is_none());

        let stats = server.stats();
        assert_eq!(stats.limit_reached, 2, "workers={workers}");
        // Exactly-once stop: the limit fired once per query, and the
        // splits recorded alongside prove the expansion really was shared.
        assert!(
            stats.splits > 0,
            "workers={workers}: no splits — fixture degenerated"
        );
    }
}
