//! First-class result aggregation modes (DESIGN.md §18).
//!
//! Everything downstream of `Sink::consume` used to be all-or-nothing:
//! either materialise every embedding or only count. Analytics-style
//! workloads want the points in between — an exact count with *zero*
//! materialization, the best k embeddings by some score, or a fixed-size
//! uniform sample with confidence bounds — and they want them without a
//! post-hoc pass over a result set that may not fit in memory.
//!
//! The modes here are deliberately *schedule-independent* in what they
//! return:
//!
//! * **CountOnly** — counts ride the existing bulk `add_count` path, so
//!   the result is exact regardless of worker count or split timing.
//! * **TopK** — a total order (score descending, embedding bytes
//!   ascending as the tiebreak) makes the kept set a pure function of the
//!   result multiset. Workers fast-reject through a lock-free score
//!   floor; only contenders touch the shared bounded heap.
//! * **Sampled** — priority sampling: every embedding gets a priority
//!   from a seeded hash of its *content*, and the `budget` smallest
//!   priorities win. Because priorities ignore arrival order entirely,
//!   the sample is identical for any schedule and reproducible across
//!   runs with the same seed, while still being a uniform random subset
//!   over the seed choice.
//!
//! Sinks (`crate::sink`, `crate::serve::query`) wrap [`TopKState`] /
//! [`SampleState`]; the summary side of a finished query is
//! [`AggregateSummary`].

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::embedding::Embedding;

/// Pluggable per-embedding score used by [`AggregateMode::TopK`]. Scores
/// are computed from the embedding's data-edge ids (query-edge order), so
/// they are schedule-independent by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreFn {
    /// Sum of the data edge ids — a cheap stand-in for "prefer embeddings
    /// over recent edges" (higher ids are appended later).
    EdgeIdSum,
    /// `u32::MAX - min(edge id)`: prefers embeddings whose *oldest* edge
    /// is still recent.
    MinEdge,
    /// Seeded content hash — an arbitrary but deterministic total order,
    /// useful for exercising top-k machinery without a domain score.
    Hash,
}

impl ScoreFn {
    /// Scores one embedding (data edge ids in query-edge order).
    #[inline]
    pub fn score(self, emb: &[u32]) -> u64 {
        match self {
            ScoreFn::EdgeIdSum => emb.iter().map(|&e| e as u64).sum(),
            ScoreFn::MinEdge => (u32::MAX - emb.iter().copied().min().unwrap_or(u32::MAX)) as u64,
            ScoreFn::Hash => hash_emb(0x5C0_12EF, emb),
        }
    }

    /// Stable wire/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            ScoreFn::EdgeIdSum => "edge_id_sum",
            ScoreFn::MinEdge => "min_edge",
            ScoreFn::Hash => "hash",
        }
    }

    /// Parses a wire/CLI name (see [`ScoreFn::name`]).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "edge_id_sum" => Some(ScoreFn::EdgeIdSum),
            "min_edge" => Some(ScoreFn::MinEdge),
            "hash" => Some(ScoreFn::Hash),
            _ => None,
        }
    }
}

/// How a query's results are aggregated (DESIGN.md §18.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateMode {
    /// Materialise every embedding (the pre-existing behaviour).
    Materialize,
    /// Exact count with zero embedding materialization.
    CountOnly,
    /// Keep the `k` best embeddings by `score` (score descending,
    /// embedding bytes ascending as the deterministic tiebreak).
    TopK {
        /// Number of embeddings to keep.
        k: usize,
        /// Scoring function.
        score: ScoreFn,
    },
    /// Keep a seed-reproducible uniform sample of at most `budget`
    /// embeddings; the count stays exact.
    Sampled {
        /// Maximum sample size.
        budget: usize,
        /// Hash seed; same seed + same result set ⇒ same sample.
        seed: u64,
    },
}

impl AggregateMode {
    /// Stable wire/CLI/metrics name of the mode.
    pub fn name(self) -> &'static str {
        match self {
            AggregateMode::Materialize => "materialize",
            AggregateMode::CountOnly => "count_only",
            AggregateMode::TopK { .. } => "top_k",
            AggregateMode::Sampled { .. } => "sampled",
        }
    }

    /// Whether executors must materialise embeddings for this mode.
    pub fn needs_embeddings(self) -> bool {
        !matches!(self, AggregateMode::CountOnly)
    }
}

/// Mode-specific summary attached to a finished query's outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum AggregateSummary {
    /// Every embedding was materialised; nothing to summarise.
    Materialized,
    /// Count-only: the outcome's `count` is the whole answer.
    Count,
    /// Top-k: per-kept-embedding scores, best first (parallel to the
    /// outcome's embedding list).
    TopK {
        /// Requested k.
        k: usize,
        /// Scoring function used.
        score: ScoreFn,
        /// Scores of the kept embeddings, best first.
        scores: Vec<u64>,
    },
    /// Sampled: sample size, sampling fraction and a 95% confidence
    /// half-width for fraction-of-total estimates computed on the sample.
    Sampled {
        /// Requested budget.
        budget: usize,
        /// Seed used.
        seed: u64,
        /// Embeddings actually sampled (`min(budget, count)`).
        sampled: u64,
        /// `sampled / count` (1.0 when the count is 0).
        fraction: f64,
        /// 95% confidence half-width for a proportion estimated on the
        /// sample, with finite-population correction.
        ci95: f64,
    },
}

impl AggregateSummary {
    /// The mode name this summary belongs to (see [`AggregateMode::name`]).
    pub fn mode_name(&self) -> &'static str {
        match self {
            AggregateSummary::Materialized => "materialize",
            AggregateSummary::Count => "count_only",
            AggregateSummary::TopK { .. } => "top_k",
            AggregateSummary::Sampled { .. } => "sampled",
        }
    }
}

/// SplitMix64 finalizer — the standard avalanche used by seeded hashers.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded content hash of an embedding: folds every edge id through
/// SplitMix64. Order-sensitive within the embedding (positions matter)
/// but independent of delivery order across embeddings.
#[inline]
pub fn hash_emb(seed: u64, emb: &[u32]) -> u64 {
    let mut h = splitmix64(seed ^ 0xD6E8_FEB8_6659_FD93);
    for &e in emb {
        h = splitmix64(h ^ e as u64);
    }
    h
}

/// 95% confidence half-width for a proportion estimated from a uniform
/// sample of `sampled` out of `total`, at the conservative p=0.5 variance,
/// with finite-population correction. 0 when the sample covers everything.
pub fn ci95_half_width(sampled: u64, total: u64) -> f64 {
    if sampled == 0 || total <= 1 || sampled >= total {
        return 0.0;
    }
    let n = sampled as f64;
    let big_n = total as f64;
    let fpc = ((big_n - n) / (big_n - 1.0)).sqrt();
    1.96 * (0.25 / n).sqrt() * fpc
}

/// Heap entry ordered so a `BinaryHeap`'s max is the *worst* kept
/// embedding: lower score first, then *larger* embedding bytes first
/// (ties on score evict the lexicographically largest).
#[derive(Debug, Clone, PartialEq, Eq)]
struct HeapWorst {
    score: u64,
    emb: Embedding,
}

impl Ord for HeapWorst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .score
            .cmp(&self.score)
            .then_with(|| self.emb.cmp(&other.emb))
    }
}

impl PartialOrd for HeapWorst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Shared top-k accumulator: a bounded heap behind a mutex, guarded by a
/// lock-free score floor so the hot path (an embedding that cannot make
/// the cut) costs one relaxed load. The floor only ever rises; a stale
/// (low) read merely over-admits into the locked path, never rejects a
/// qualifying embedding — so the kept set is exact.
#[derive(Debug)]
pub struct TopKState {
    k: usize,
    score: ScoreFn,
    /// Worst kept score once the heap is full; 0 (reject nothing) before.
    floor: AtomicU64,
    heap: Mutex<std::collections::BinaryHeap<HeapWorst>>,
}

impl TopKState {
    /// Creates an accumulator keeping the best `k` embeddings by `score`.
    pub fn new(k: usize, score: ScoreFn) -> Self {
        Self {
            k,
            score,
            floor: AtomicU64::new(0),
            heap: Mutex::new(std::collections::BinaryHeap::with_capacity(k.min(4096))),
        }
    }

    /// Offers one embedding. Thread-safe; call from any worker.
    pub fn offer(&self, emb: &[u32]) {
        if self.k == 0 {
            return;
        }
        let s = self.score.score(emb);
        // Fast reject: strictly below the floor can never displace the
        // worst kept entry (equal scores still contend on the tiebreak).
        if s < self.floor.load(Ordering::Relaxed) {
            return;
        }
        let mut heap = self.heap.lock();
        if heap.len() < self.k {
            heap.push(HeapWorst {
                score: s,
                emb: Embedding::new(emb.to_vec()),
            });
            if heap.len() == self.k {
                self.floor
                    .store(heap.peek().unwrap().score, Ordering::Relaxed);
            }
            return;
        }
        let worst = heap.peek().unwrap();
        let cand = HeapWorst {
            score: s,
            emb: Embedding::new(emb.to_vec()),
        };
        // `cand < worst` in HeapWorst order ⇔ cand ranks better (higher
        // score, or equal score with smaller bytes).
        if cand < *worst {
            heap.pop();
            heap.push(cand);
            self.floor
                .store(heap.peek().unwrap().score, Ordering::Relaxed);
        }
    }

    /// Finishes: the kept embeddings best-first (score descending,
    /// bytes ascending on ties) with their scores.
    pub fn finish(&self) -> (Vec<Embedding>, Vec<u64>) {
        let mut entries: Vec<HeapWorst> = std::mem::take(&mut *self.heap.lock()).into_vec();
        // HeapWorst's Ord sorts worst-last ascending; best-first is the
        // plain sort (smallest HeapWorst = best embedding).
        entries.sort_unstable();
        let scores = entries.iter().map(|e| e.score).collect();
        (entries.into_iter().map(|e| e.emb).collect(), scores)
    }
}

/// Heap entry for sampling, max-heap by (priority, bytes): the max is the
/// entry to evict — the largest priority, largest bytes on priority ties.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct HeapSample {
    priority: u64,
    emb: Embedding,
}

/// Shared priority-sampling accumulator: keeps the `budget` embeddings
/// with the smallest seeded content-hash priorities. The kept set is a
/// pure function of (seed, result multiset) — no schedule dependence —
/// and a uniform random subset over the choice of seed. A lock-free
/// threshold (largest kept priority) fast-rejects the hot path the same
/// way [`TopKState`]'s floor does.
#[derive(Debug)]
pub struct SampleState {
    budget: usize,
    seed: u64,
    /// Largest kept priority once full; u64::MAX (reject nothing) before.
    threshold: AtomicU64,
    heap: Mutex<std::collections::BinaryHeap<HeapSample>>,
}

impl SampleState {
    /// Creates a sampler keeping at most `budget` embeddings under `seed`.
    pub fn new(budget: usize, seed: u64) -> Self {
        Self {
            budget,
            seed,
            threshold: AtomicU64::new(u64::MAX),
            heap: Mutex::new(std::collections::BinaryHeap::with_capacity(
                budget.min(4096),
            )),
        }
    }

    /// Offers one embedding. Thread-safe; call from any worker.
    pub fn offer(&self, emb: &[u32]) {
        if self.budget == 0 {
            return;
        }
        let p = hash_emb(self.seed, emb);
        if p > self.threshold.load(Ordering::Relaxed) {
            return;
        }
        let mut heap = self.heap.lock();
        if heap.len() < self.budget {
            heap.push(HeapSample {
                priority: p,
                emb: Embedding::new(emb.to_vec()),
            });
            if heap.len() == self.budget {
                self.threshold
                    .store(heap.peek().unwrap().priority, Ordering::Relaxed);
            }
            return;
        }
        let cand = HeapSample {
            priority: p,
            emb: Embedding::new(emb.to_vec()),
        };
        if cand < *heap.peek().unwrap() {
            heap.pop();
            heap.push(cand);
            self.threshold
                .store(heap.peek().unwrap().priority, Ordering::Relaxed);
        }
    }

    /// Finishes: the sampled embeddings in sorted (deterministic) order.
    pub fn finish(&self) -> Vec<Embedding> {
        let mut embs: Vec<Embedding> = std::mem::take(&mut *self.heap.lock())
            .into_vec()
            .into_iter()
            .map(|e| e.emb)
            .collect();
        embs.sort_unstable();
        embs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emb(ids: &[u32]) -> Embedding {
        Embedding::new(ids.to_vec())
    }

    #[test]
    fn score_fns_are_deterministic() {
        assert_eq!(ScoreFn::EdgeIdSum.score(&[1, 2, 3]), 6);
        assert_eq!(ScoreFn::MinEdge.score(&[7, 3, 9]), (u32::MAX - 3) as u64);
        assert_eq!(ScoreFn::Hash.score(&[1, 2]), ScoreFn::Hash.score(&[1, 2]));
        assert_ne!(ScoreFn::Hash.score(&[1, 2]), ScoreFn::Hash.score(&[2, 1]));
        for f in [ScoreFn::EdgeIdSum, ScoreFn::MinEdge, ScoreFn::Hash] {
            assert_eq!(ScoreFn::parse(f.name()), Some(f));
        }
        assert_eq!(ScoreFn::parse("nope"), None);
    }

    #[test]
    fn mode_names_and_needs() {
        assert_eq!(AggregateMode::Materialize.name(), "materialize");
        assert_eq!(AggregateMode::CountOnly.name(), "count_only");
        assert!(!AggregateMode::CountOnly.needs_embeddings());
        assert!(AggregateMode::Materialize.needs_embeddings());
        let tk = AggregateMode::TopK {
            k: 3,
            score: ScoreFn::EdgeIdSum,
        };
        assert!(tk.needs_embeddings());
        assert_eq!(tk.name(), "top_k");
    }

    #[test]
    fn topk_keeps_best_with_deterministic_ties() {
        let st = TopKState::new(2, ScoreFn::EdgeIdSum);
        st.offer(&[1, 1]); // score 2
        st.offer(&[5, 5]); // score 10
        st.offer(&[2, 8]); // score 10, larger bytes than [5,5]? [2,8] < [5,5]
        st.offer(&[0, 1]); // score 1, rejected by floor after heap fills
        let (embs, scores) = st.finish();
        assert_eq!(scores, vec![10, 10]);
        // Ties break on ascending bytes: [2,8] before [5,5].
        assert_eq!(embs, vec![emb(&[2, 8]), emb(&[5, 5])]);
    }

    #[test]
    fn topk_matches_oracle_under_threads() {
        let all: Vec<Vec<u32>> = (0..5000u32).map(|i| vec![i % 97, i / 97]).collect();
        let st = TopKState::new(25, ScoreFn::EdgeIdSum);
        std::thread::scope(|s| {
            for chunk in all.chunks(1250) {
                let st = &st;
                s.spawn(move || {
                    for e in chunk {
                        st.offer(e);
                    }
                });
            }
        });
        let (embs, scores) = st.finish();
        // Oracle: sort everything by (score desc, bytes asc), take 25.
        let mut oracle: Vec<(u64, Embedding)> = all
            .iter()
            .map(|e| (ScoreFn::EdgeIdSum.score(e), emb(e)))
            .collect();
        oracle.sort_unstable_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        oracle.truncate(25);
        assert_eq!(scores, oracle.iter().map(|o| o.0).collect::<Vec<_>>());
        assert_eq!(embs, oracle.into_iter().map(|o| o.1).collect::<Vec<_>>());
    }

    #[test]
    fn topk_zero_keeps_nothing() {
        let st = TopKState::new(0, ScoreFn::Hash);
        st.offer(&[1]);
        let (embs, scores) = st.finish();
        assert!(embs.is_empty() && scores.is_empty());
    }

    #[test]
    fn sample_is_schedule_independent_and_seeded() {
        let all: Vec<Vec<u32>> = (0..2000u32).map(|i| vec![i, i ^ 7]).collect();
        let run = |order_rev: bool, seed: u64| {
            let st = SampleState::new(64, seed);
            if order_rev {
                for e in all.iter().rev() {
                    st.offer(e);
                }
            } else {
                for e in &all {
                    st.offer(e);
                }
            }
            st.finish()
        };
        let a = run(false, 42);
        let b = run(true, 42);
        assert_eq!(a, b, "delivery order must not change the sample");
        assert_eq!(a.len(), 64);
        let c = run(false, 43);
        assert_ne!(a, c, "different seeds should give different samples");
    }

    #[test]
    fn sample_under_budget_keeps_everything() {
        let st = SampleState::new(10, 7);
        for i in 0..5u32 {
            st.offer(&[i]);
        }
        let got = st.finish();
        assert_eq!(got.len(), 5);
        let want: Vec<Embedding> = (0..5u32).map(|i| emb(&[i])).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn ci95_bounds() {
        assert_eq!(ci95_half_width(0, 100), 0.0);
        assert_eq!(ci95_half_width(100, 100), 0.0);
        let w = ci95_half_width(64, 10_000);
        assert!(w > 0.0 && w < 0.13, "w={w}");
        // More samples ⇒ tighter bound.
        assert!(ci95_half_width(256, 10_000) < w);
    }
}
