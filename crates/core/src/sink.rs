//! Result sinks — the SINK dataflow operator's consumption strategies.
//!
//! The paper's SINK operator either counts or outputs embeddings (§VI-A).
//! Executors deliver counts in bulk per worker (`add_count`), so counting
//! costs one relaxed atomic add per task rather than per embedding; full
//! embeddings are only materialised when `needs_embeddings()` says so.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::aggregate::{SampleState, ScoreFn, TopKState};
use crate::embedding::Embedding;

/// Consumes match results. Implementations must be thread-safe: workers
/// call methods concurrently.
pub trait Sink: Sync {
    /// Whether the executor should materialise embeddings and call
    /// [`Sink::consume`] (otherwise it only counts).
    fn needs_embeddings(&self) -> bool {
        false
    }

    /// Delivers one complete embedding (data edge ids in query-edge order).
    /// Only called when [`Sink::needs_embeddings`] returns `true`.
    fn consume(&self, _embedding: &[u32]) {}

    /// Delivers a batch of `n` matches (always called, possibly per task).
    fn add_count(&self, n: u64);

    /// When `true`, executors stop producing new results as soon as
    /// practical (used by first-k search).
    fn is_satisfied(&self) -> bool {
        false
    }
}

/// Counts embeddings.
#[derive(Debug, Default)]
pub struct CountSink {
    count: AtomicU64,
}

impl CountSink {
    /// Creates a zeroed counter sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total matches delivered so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

impl Sink for CountSink {
    fn add_count(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
    }
}

/// Collects every embedding.
#[derive(Debug, Default)]
pub struct CollectSink {
    count: AtomicU64,
    results: Mutex<Vec<Embedding>>,
}

impl CollectSink {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the collected embeddings, sorted for determinism.
    pub fn into_results(self) -> Vec<Embedding> {
        let mut v = self.results.into_inner();
        v.sort_unstable();
        v
    }

    /// Number of embeddings collected.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

impl Sink for CollectSink {
    fn needs_embeddings(&self) -> bool {
        true
    }

    fn consume(&self, embedding: &[u32]) {
        self.results.lock().push(Embedding::new(embedding.to_vec()));
    }

    fn add_count(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
    }
}

/// Collects up to `k` embeddings then asks executors to stop. May collect
/// slightly more than `k` under parallel execution; excess is trimmed.
#[derive(Debug)]
pub struct FirstKSink {
    k: usize,
    count: AtomicU64,
    satisfied: AtomicBool,
    results: Mutex<Vec<Embedding>>,
}

impl FirstKSink {
    /// Creates a sink that stops after `k` embeddings.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            count: AtomicU64::new(0),
            satisfied: AtomicBool::new(k == 0),
            results: Mutex::new(Vec::new()),
        }
    }

    /// Takes at most `k` collected embeddings, sorted for determinism.
    pub fn into_results(self) -> Vec<Embedding> {
        let mut v = self.results.into_inner();
        v.sort_unstable();
        v.truncate(self.k);
        v
    }
}

impl Sink for FirstKSink {
    fn needs_embeddings(&self) -> bool {
        true
    }

    fn consume(&self, embedding: &[u32]) {
        let mut guard = self.results.lock();
        if guard.len() < self.k {
            guard.push(Embedding::new(embedding.to_vec()));
        }
        if guard.len() >= self.k {
            self.satisfied.store(true, Ordering::Release);
        }
    }

    fn add_count(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    fn is_satisfied(&self) -> bool {
        self.satisfied.load(Ordering::Acquire)
    }
}

/// Keeps the best `k` embeddings by a pluggable score
/// ([`crate::aggregate::TopKState`]): deterministic for a fixed result
/// multiset regardless of worker count, never satisfied early (every
/// embedding must be seen to know the best k).
#[derive(Debug)]
pub struct TopKSink {
    count: AtomicU64,
    state: TopKState,
}

impl TopKSink {
    /// Creates a sink keeping the best `k` embeddings by `score`.
    pub fn new(k: usize, score: ScoreFn) -> Self {
        Self {
            count: AtomicU64::new(0),
            state: TopKState::new(k, score),
        }
    }

    /// Total matches delivered so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The kept embeddings best-first, with their scores.
    pub fn into_results(self) -> (Vec<Embedding>, Vec<u64>) {
        self.state.finish()
    }
}

impl Sink for TopKSink {
    fn needs_embeddings(&self) -> bool {
        true
    }

    fn consume(&self, embedding: &[u32]) {
        self.state.offer(embedding);
    }

    fn add_count(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
    }
}

/// Keeps a seed-reproducible uniform sample of at most `budget`
/// embeddings ([`crate::aggregate::SampleState`]); the count stays exact.
#[derive(Debug)]
pub struct SampleSink {
    count: AtomicU64,
    state: SampleState,
}

impl SampleSink {
    /// Creates a sink sampling at most `budget` embeddings under `seed`.
    pub fn new(budget: usize, seed: u64) -> Self {
        Self {
            count: AtomicU64::new(0),
            state: SampleState::new(budget, seed),
        }
    }

    /// Total matches delivered so far (exact, not the sample size).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The sampled embeddings in sorted order.
    pub fn into_results(self) -> Vec<Embedding> {
        self.state.finish()
    }
}

impl Sink for SampleSink {
    fn needs_embeddings(&self) -> bool {
        true
    }

    fn consume(&self, embedding: &[u32]) {
        self.state.offer(embedding);
    }

    fn add_count(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
    }
}

/// Streams each embedding to a callback.
pub struct CallbackSink<F: Fn(&[u32]) + Sync> {
    count: AtomicU64,
    callback: F,
}

impl<F: Fn(&[u32]) + Sync> CallbackSink<F> {
    /// Wraps `callback`; it is invoked once per embedding, concurrently.
    pub fn new(callback: F) -> Self {
        Self {
            count: AtomicU64::new(0),
            callback,
        }
    }

    /// Number of embeddings streamed.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

impl<F: Fn(&[u32]) + Sync> Sink for CallbackSink<F> {
    fn needs_embeddings(&self) -> bool {
        true
    }

    fn consume(&self, embedding: &[u32]) {
        (self.callback)(embedding);
    }

    fn add_count(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_sink_accumulates() {
        let s = CountSink::new();
        s.add_count(3);
        s.add_count(4);
        assert_eq!(s.count(), 7);
        assert!(!s.needs_embeddings());
        assert!(!s.is_satisfied());
    }

    #[test]
    fn collect_sink_sorts() {
        let s = CollectSink::new();
        s.consume(&[5, 6]);
        s.consume(&[1, 2]);
        s.add_count(2);
        assert_eq!(s.count(), 2);
        assert!(s.needs_embeddings());
        let results = s.into_results();
        assert_eq!(results[0].raw(), &[1, 2]);
        assert_eq!(results[1].raw(), &[5, 6]);
    }

    #[test]
    fn first_k_stops() {
        let s = FirstKSink::new(2);
        assert!(!s.is_satisfied());
        s.consume(&[1]);
        assert!(!s.is_satisfied());
        s.consume(&[2]);
        assert!(s.is_satisfied());
        s.consume(&[3]); // ignored: already full
        assert_eq!(s.into_results().len(), 2);
    }

    #[test]
    fn first_zero_is_immediately_satisfied() {
        let s = FirstKSink::new(0);
        assert!(s.is_satisfied());
        assert!(s.into_results().is_empty());
    }

    #[test]
    fn topk_sink_counts_all_keeps_best() {
        let s = TopKSink::new(2, ScoreFn::EdgeIdSum);
        s.consume(&[1, 1]);
        s.consume(&[9, 9]);
        s.consume(&[4, 4]);
        s.add_count(3);
        assert_eq!(s.count(), 3);
        assert!(s.needs_embeddings());
        assert!(!s.is_satisfied());
        let (embs, scores) = s.into_results();
        assert_eq!(scores, vec![18, 8]);
        assert_eq!(embs[0].raw(), &[9, 9]);
    }

    #[test]
    fn sample_sink_exact_count_bounded_sample() {
        let s = SampleSink::new(3, 17);
        for i in 0..10u32 {
            s.consume(&[i]);
        }
        s.add_count(10);
        assert_eq!(s.count(), 10);
        assert_eq!(s.into_results().len(), 3);
    }

    #[test]
    fn callback_sink_streams() {
        use std::sync::atomic::AtomicU64;
        let seen = AtomicU64::new(0);
        let s = CallbackSink::new(|emb: &[u32]| {
            seen.fetch_add(emb.iter().map(|&e| e as u64).sum(), Ordering::Relaxed);
        });
        s.consume(&[1, 2]);
        s.consume(&[3]);
        s.add_count(2);
        assert_eq!(seen.load(Ordering::Relaxed), 6);
        assert_eq!(s.count(), 2);
    }
}
