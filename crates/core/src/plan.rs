//! Execution planning: matching order and per-step matching structure.
//!
//! [`Planner::plan`] picks the matching order with the statistics-driven
//! cost model of [`crate::cost`] (DESIGN.md §13): bounded enumeration of
//! connected orders scored by estimated per-step candidate counts.
//! [`Planner::plan_greedy`] keeps the paper's one-shot Algorithm 3 rule —
//! smallest cardinality `Card(e, H)` first, then minimal
//! `Card(e, H) / |Vϕ ∩ e|` among connected hyperedges — as the comparison
//! baseline, and [`Planner::plan_with_order`] compiles any caller-chosen
//! valid order (the differential-test hook: the embedding multiset is
//! order-invariant).
//!
//! The resulting [`Plan`] precomputes everything the runtime operators need
//! at every step: the target partition, the candidate-generation *anchors*
//! (one per `(previous adjacent edge, shared vertex)` pair of Algorithm 4),
//! the non-adjacent previous positions (Observation V.3), and the static
//! query-side vertex profiles used by validation (Algorithm 5).

use hgmatch_hypergraph::{Hypergraph, Label, SignatureId};

use crate::cost::CostModel;
use crate::error::Result;
use crate::query::QueryGraph;

/// One candidate-generation anchor: a `(previous edge, shared vertex)` pair
/// of Algorithm 4 lines 3–6, compiled to what the runtime actually needs.
///
/// At runtime the anchor selects, from the data hyperedge matched at
/// `prev_pos`, the vertices with label `label` whose degree *within the
/// partial embedding* equals `required_degree` (Observation V.4); the
/// candidate hyperedge must be incident to at least one of them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Anchor {
    /// Position (in matching order) of the previously matched adjacent edge.
    pub prev_pos: u32,
    /// Label the shared query vertex carries.
    pub label: Label,
    /// `d_q'(u)`: the shared vertex's degree in the partial query *before*
    /// this step.
    pub required_degree: u32,
}

/// A static query-side vertex profile: the label of a vertex of the current
/// query hyperedge and the mask (over matching-order positions `0..=step`)
/// of query hyperedges incident to it (Definition V.3, compiled to masks).
pub type QueryProfile = (Label, u64);

/// One step of the plan: how to match the query hyperedge at this position.
#[derive(Debug, Clone)]
pub struct Step {
    /// Index of the query hyperedge matched at this step.
    pub query_edge: u32,
    /// Data partition holding candidates (`None` ⇒ the query signature does
    /// not occur in the data and the query has zero embeddings).
    pub partition: Option<SignatureId>,
    /// Arity of the query hyperedge.
    pub arity: u32,
    /// `|V(q')|` after this step (Observation V.5 check).
    pub vertices_after: u32,
    /// Candidate-generation anchors (empty at step 0, or when the query is
    /// disconnected and this step starts a new component).
    pub anchors: Vec<Anchor>,
    /// Positions `< step` whose query edges are *not* adjacent to this one;
    /// their matched vertices must not occur in the candidate
    /// (Observation V.3, used to build `V_n_incdt`).
    pub nonadjacent_prev: Vec<u32>,
    /// Sorted static vertex profiles of the current query hyperedge's
    /// vertices, masks taken over positions `0..=step`.
    pub profiles: Vec<QueryProfile>,
}

/// A compiled execution plan: matching order plus per-step structure.
#[derive(Debug, Clone)]
pub struct Plan {
    steps: Vec<Step>,
    /// `order[pos]` = query edge index matched at `pos`.
    order: Vec<u32>,
    /// `position[query edge]` = matching-order position.
    position: Vec<u32>,
    num_query_vertices: u32,
    /// Whether some step has no partition (zero results guaranteed).
    infeasible: bool,
    /// Estimated total cost of this order under the model the plan was
    /// compiled with ([`crate::cost::CostModel`]).
    cost: f64,
    /// Per-position estimated candidate counts (partials produced at each
    /// step) under the same model — the baseline the adaptive re-optimizer
    /// compares observed [`crate::StepCounts`] against (DESIGN.md §15).
    est_candidates: Vec<f64>,
}

impl Plan {
    /// The matching order ϕ as query-edge indices.
    #[inline]
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Position of query edge `e` in the matching order.
    #[inline]
    pub fn position_of(&self, e: u32) -> u32 {
        self.position[e as usize]
    }

    /// All steps, `steps()[0]` being the SCAN step.
    #[inline]
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of steps (= number of query hyperedges).
    #[inline]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Plans are never empty (planning an empty query errors).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `|V(q)|`.
    #[inline]
    pub fn num_query_vertices(&self) -> u32 {
        self.num_query_vertices
    }

    /// `true` when some query signature is absent from the data hypergraph,
    /// so the query trivially has zero embeddings.
    #[inline]
    pub fn is_infeasible(&self) -> bool {
        self.infeasible
    }

    /// Estimated execution cost of this plan's order under the cost model
    /// it was compiled against (comparable only between plans for the same
    /// query and data snapshot).
    #[inline]
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Estimated candidates (partials produced) per matching-order position
    /// under the plan's cost model — `est_candidates()[pos]` corresponds to
    /// the observed [`crate::StepCounts::partials`] at `pos`. The adaptive
    /// re-optimizer's trigger compares the two (DESIGN.md §15).
    #[inline]
    pub fn est_candidates(&self) -> &[f64] {
        &self.est_candidates
    }

    /// Reorders an embedding from matching-order positions to query-edge
    /// order: `out[e] = emb[position_of(e)]`.
    pub fn to_query_order(&self, emb_positions: &[u32]) -> Vec<u32> {
        let mut out = Vec::new();
        self.to_query_order_into(emb_positions, &mut out);
        out
    }

    /// Allocation-free variant of [`Plan::to_query_order`]: writes into
    /// `out` (cleared first), for reuse on the delivery hot path.
    pub fn to_query_order_into(&self, emb_positions: &[u32], out: &mut Vec<u32>) {
        out.clear();
        out.resize(emb_positions.len(), 0);
        for (edge, &pos) in self.position.iter().enumerate() {
            out[edge] = emb_positions[pos as usize];
        }
    }
}

/// Computes matching orders and compiles plans.
#[derive(Debug, Clone, Copy, Default)]
pub struct Planner;

impl Planner {
    /// Compiles the cost-based plan for `query` against `data`: the
    /// cheapest connected order under the statistics-driven model of
    /// [`crate::cost::CostModel`] (exhaustive with branch-and-bound for
    /// small queries, beam search above the exhaustive bound; DESIGN.md
    /// §13), then per-step anchor/profile compilation. The searched order
    /// replaces the greedy Algorithm 3 baseline only when the model
    /// predicts a win beyond the confidence margin
    /// (`HGMATCH_PLAN_MARGIN`); near-ties keep the baseline.
    pub fn plan(query: &QueryGraph, data: &Hypergraph) -> Result<Plan> {
        let model = CostModel::new(query, data);
        let order = model.choose_order(
            Self::greedy_order(query, data),
            model.best_order(),
            crate::config::default_plan_margin(),
        );
        Ok(Self::compile_with_model(query, data, order, &model))
    }

    /// Compiles a plan using the paper's greedy Algorithm 3 order — the
    /// baseline the cost-based planner is compared against (`explain`,
    /// `plan_quality`).
    pub fn plan_greedy(query: &QueryGraph, data: &Hypergraph) -> Result<Plan> {
        Ok(Self::compile(query, data, Self::greedy_order(query, data)))
    }

    /// Compiles a plan with a caller-chosen matching order. The order must
    /// be a permutation of `0..query.num_edges()`; HGMatch works with any
    /// connected order (§V-A).
    pub fn plan_with_order(query: &QueryGraph, data: &Hypergraph, order: Vec<u32>) -> Result<Plan> {
        Self::assert_permutation(query, &order);
        Ok(Self::compile(query, data, order))
    }

    /// Like [`Planner::plan_with_order`], but compiles against a
    /// caller-supplied cost model instead of fresh statistics. The adaptive
    /// re-optimizer uses this to stamp a re-planned suffix with estimates
    /// from the observation-corrected model (so the new plan's own
    /// `est_candidates` reflect what the runtime has already measured and
    /// the trigger does not immediately re-fire), and the `plan_adaptive`
    /// bench uses it to simulate planning from deliberately stale
    /// statistics.
    pub fn plan_with_order_costed(
        query: &QueryGraph,
        data: &Hypergraph,
        order: Vec<u32>,
        model: &CostModel<'_>,
    ) -> Result<Plan> {
        Self::assert_permutation(query, &order);
        Ok(Self::compile_with_model(query, data, order, model))
    }

    fn assert_permutation(query: &QueryGraph, order: &[u32]) {
        assert_eq!(
            order.len(),
            query.num_edges(),
            "order must cover all query edges"
        );
        let mut seen = vec![false; order.len()];
        for &e in order {
            assert!(
                !std::mem::replace(&mut seen[e as usize], true),
                "order must be a permutation"
            );
        }
    }

    /// Algorithm 3: greedy cardinality-over-connectivity order.
    pub fn greedy_order(query: &QueryGraph, data: &Hypergraph) -> Vec<u32> {
        let ne = query.num_edges();
        let card = |e: usize| data.cardinality(query.signature(e)) as f64;

        // Start with the smallest-cardinality hyperedge.
        let first = (0..ne)
            .min_by(|&a, &b| card(a).total_cmp(&card(b)).then(a.cmp(&b)))
            .expect("query has at least one edge");

        let mut order = vec![first as u32];
        let mut in_order = 1u64 << first;
        // Vϕ as a bitset over query vertices.
        let mut covered = vec![false; query.num_vertices()];
        for &v in query.edge(first) {
            covered[v as usize] = true;
        }

        while order.len() != ne {
            let mut best: Option<(f64, usize, usize)> = None; // (score, -overlap, edge)
            for e in 0..ne {
                if in_order & (1 << e) != 0 {
                    continue;
                }
                let overlap = query
                    .edge(e)
                    .iter()
                    .filter(|&&v| covered[v as usize])
                    .count();
                if overlap == 0 {
                    continue;
                }
                let score = card(e) / overlap as f64;
                let key = (score, usize::MAX - overlap, e);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
            let next = match best {
                Some((_, _, e)) => e,
                // Disconnected query: start a new component at the smallest
                // remaining cardinality (graceful extension of the paper,
                // which assumes connected queries).
                None => (0..ne)
                    .filter(|&e| in_order & (1 << e) == 0)
                    .min_by(|&a, &b| card(a).total_cmp(&card(b)).then(a.cmp(&b)))
                    .expect("some edge remains"),
            };
            order.push(next as u32);
            in_order |= 1 << next;
            for &v in query.edge(next) {
                covered[v as usize] = true;
            }
        }
        order
    }

    fn compile(query: &QueryGraph, data: &Hypergraph, order: Vec<u32>) -> Plan {
        let model = CostModel::new(query, data);
        Self::compile_with_model(query, data, order, &model)
    }

    fn compile_with_model(
        query: &QueryGraph,
        data: &Hypergraph,
        order: Vec<u32>,
        model: &CostModel<'_>,
    ) -> Plan {
        let estimate = model.estimate_order(&order);
        let cost = estimate.total_cost;
        let est_candidates: Vec<f64> = estimate.steps.iter().map(|s| s.partials_out).collect();
        let ne = order.len();
        let mut position = vec![0u32; ne];
        for (pos, &e) in order.iter().enumerate() {
            position[e as usize] = pos as u32;
        }

        let mut steps = Vec::with_capacity(ne);
        let mut infeasible = false;
        // Mask (over *query-edge indices*) of edges matched before each step
        // and running vertex cover.
        let mut matched_mask = 0u64;
        let mut covered = vec![false; query.num_vertices()];
        let mut vertices_so_far = 0u32;

        for (pos, &eq) in order.iter().enumerate() {
            let eq_us = eq as usize;
            let partition = data.interner().get(query.signature(eq_us));
            if partition.is_none() {
                infeasible = true;
            }

            // Anchors: previously matched edges adjacent to eq; one anchor
            // per (prev edge, shared vertex) pair, deduplicated when two
            // shared vertices compile to the identical constraint.
            let mut anchors: Vec<Anchor> = Vec::new();
            let adjacent_matched = query.adjacent_edges(eq_us) & matched_mask;
            let mut am = adjacent_matched;
            while am != 0 {
                let prev_edge = am.trailing_zeros();
                am &= am - 1;
                let prev_pos = position[prev_edge as usize];
                for &u in query.edge(prev_edge as usize) {
                    if query.incident_edges(u) & (1 << eq) == 0 {
                        continue; // u not shared with eq
                    }
                    let anchor = Anchor {
                        prev_pos,
                        label: query.label(u),
                        // d_q'(u): degree among edges matched before this step.
                        required_degree: query.degree_within(u, matched_mask),
                    };
                    if !anchors.contains(&anchor) {
                        anchors.push(anchor);
                    }
                }
            }

            // Non-adjacent previously matched positions.
            let nonadj = matched_mask & !query.adjacent_edges(eq_us);
            let mut nonadjacent_prev: Vec<u32> = Vec::new();
            let mut nm = nonadj;
            while nm != 0 {
                let e = nm.trailing_zeros();
                nm &= nm - 1;
                nonadjacent_prev.push(position[e as usize]);
            }
            nonadjacent_prev.sort_unstable();

            // Static query profiles for the new edge's vertices: masks over
            // matching-order *positions* of incident query edges among
            // matched ∪ {eq}.
            let after_mask = matched_mask | (1 << eq);
            let mut profiles: Vec<QueryProfile> = query
                .edge(eq_us)
                .iter()
                .map(|&u| {
                    let mut mask = 0u64;
                    let mut inc = query.incident_edges(u) & after_mask;
                    while inc != 0 {
                        let e = inc.trailing_zeros();
                        inc &= inc - 1;
                        mask |= 1 << position[e as usize];
                    }
                    (query.label(u), mask)
                })
                .collect();
            profiles.sort_unstable();

            for &v in query.edge(eq_us) {
                if !std::mem::replace(&mut covered[v as usize], true) {
                    vertices_so_far += 1;
                }
            }

            steps.push(Step {
                query_edge: eq,
                partition,
                arity: query.edge(eq_us).len() as u32,
                vertices_after: vertices_so_far,
                anchors,
                nonadjacent_prev,
                profiles,
            });
            matched_mask |= 1 << eq;
            let _ = pos;
        }

        Plan {
            steps,
            order,
            position,
            num_query_vertices: query.num_vertices() as u32,
            infeasible,
            cost,
            est_candidates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgmatch_hypergraph::{HypergraphBuilder, Label};

    fn paper_data() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1, 2, 0] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![4, 6]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![3, 5, 6]).unwrap();
        b.add_edge(vec![0, 1, 4, 6]).unwrap();
        b.add_edge(vec![2, 3, 4, 5]).unwrap();
        b.build().unwrap()
    }

    fn paper_query() -> QueryGraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap(); // q0 {A,B}
        b.add_edge(vec![0, 1, 2]).unwrap(); // q1 {A,A,C}
        b.add_edge(vec![0, 1, 3, 4]).unwrap(); // q2 {A,A,B,C}
        QueryGraph::new(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn order_is_permutation_and_connected() {
        let data = paper_data();
        for plan in [
            Planner::plan(&paper_query(), &data).unwrap(),
            Planner::plan_greedy(&paper_query(), &data).unwrap(),
        ] {
            let mut order = plan.order().to_vec();
            order.sort_unstable();
            assert_eq!(order, vec![0, 1, 2]);
            assert!(!plan.is_infeasible());
            assert!(plan.cost().is_finite() && plan.cost() > 0.0);
            // Each subsequent edge must connect (anchors non-empty).
            for step in &plan.steps()[1..] {
                assert!(!step.anchors.is_empty(), "connected order expected");
            }
        }
        // All cardinalities are 2, so greedy starts at edge 0 (tie-break).
        let greedy = Planner::plan_greedy(&paper_query(), &data).unwrap();
        assert_eq!(greedy.order()[0], 0);
    }

    #[test]
    fn cardinality_drives_start_edge() {
        // Data where signature {A,A,C} is rarer than {A,B}.
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1, 2, 0, 1, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap(); // {A,B}
        b.add_edge(vec![2, 7]).unwrap(); // {A,B}
        b.add_edge(vec![2, 8]).unwrap(); // {A,B}
        b.add_edge(vec![0, 1, 2]).unwrap(); // {A,A,C}
        b.add_edge(vec![0, 1, 3, 4]).unwrap(); // {A,A,B,C}
        let data = b.build().unwrap();
        // q1 has signature {A,A,C} with cardinality 1 → greedy starts there.
        let greedy = Planner::plan_greedy(&paper_query(), &data).unwrap();
        assert_eq!(greedy.order()[0], 1);
        // The cost-based order is never estimated worse than greedy.
        let plan = Planner::plan(&paper_query(), &data).unwrap();
        assert!(plan.cost() <= greedy.cost() + 1e-9);
    }

    #[test]
    fn vertices_after_accumulates() {
        let data = paper_data();
        let plan = Planner::plan(&paper_query(), &data).unwrap();
        let last = plan.steps().last().unwrap();
        assert_eq!(last.vertices_after, 5);
        assert_eq!(plan.num_query_vertices(), 5);
        // Monotone non-decreasing.
        let mut prev = 0;
        for s in plan.steps() {
            assert!(s.vertices_after >= prev);
            prev = s.vertices_after;
        }
    }

    #[test]
    fn infeasible_when_signature_missing() {
        let mut b = HypergraphBuilder::new();
        b.add_vertices(2, Label::new(9)); // labels unseen in query
        b.add_edge(vec![0, 1]).unwrap();
        let data = b.build().unwrap();
        let plan = Planner::plan(&paper_query(), &data).unwrap();
        assert!(plan.is_infeasible());
        assert!(plan.steps().iter().any(|s| s.partition.is_none()));
    }

    #[test]
    fn profiles_are_sorted_and_cover_edge() {
        let data = paper_data();
        let plan = Planner::plan(&paper_query(), &data).unwrap();
        for (i, step) in plan.steps().iter().enumerate() {
            assert_eq!(step.profiles.len(), step.arity as usize);
            assert!(step.profiles.windows(2).all(|w| w[0] <= w[1]));
            for &(_, mask) in &step.profiles {
                // Every profile contains the current position's bit.
                assert!(mask & (1 << i) != 0);
                // And no bits beyond the current position.
                assert_eq!(mask >> (i + 1), 0);
            }
        }
    }

    #[test]
    fn to_query_order_inverts_positions() {
        let data = paper_data();
        let plan = Planner::plan(&paper_query(), &data).unwrap();
        // Pretend embedding at positions = [10, 20, 30].
        let emb = plan.to_query_order(&[10, 20, 30]);
        for e in 0..3u32 {
            assert_eq!(emb[e as usize], [10, 20, 30][plan.position_of(e) as usize]);
        }
    }

    #[test]
    fn explicit_order_respected() {
        let data = paper_data();
        let q = paper_query();
        let plan = Planner::plan_with_order(&q, &data, vec![2, 0, 1]).unwrap();
        assert_eq!(plan.order(), &[2, 0, 1]);
        assert_eq!(plan.steps()[0].query_edge, 2);
    }

    #[test]
    fn est_candidates_match_model_estimate() {
        let data = paper_data();
        let q = paper_query();
        let plan = Planner::plan(&q, &data).unwrap();
        assert_eq!(plan.est_candidates().len(), plan.len());
        let model = CostModel::new(&q, &data);
        let est = model.estimate_order(plan.order());
        for (pos, step) in est.steps.iter().enumerate() {
            assert!((plan.est_candidates()[pos] - step.partials_out).abs() < 1e-9);
        }
        // A doctored model changes the stamped estimates but not the
        // compiled structure.
        let mut scaled = CostModel::new(&q, &data);
        scaled.scale_edge(plan.order()[0], 0.125);
        let costed =
            Planner::plan_with_order_costed(&q, &data, plan.order().to_vec(), &scaled).unwrap();
        assert_eq!(costed.order(), plan.order());
        assert!(costed.est_candidates()[0] < plan.est_candidates()[0]);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn non_permutation_order_panics() {
        let data = paper_data();
        let _ = Planner::plan_with_order(&paper_query(), &data, vec![0, 0, 1]);
    }

    #[test]
    fn disconnected_query_plans_without_anchors() {
        let mut b = HypergraphBuilder::new();
        b.add_vertices(4, Label::new(0));
        b.add_edge(vec![0, 1]).unwrap();
        b.add_edge(vec![2, 3]).unwrap();
        let q = QueryGraph::new(&b.build().unwrap()).unwrap();

        let mut d = HypergraphBuilder::new();
        d.add_vertices(4, Label::new(0));
        d.add_edge(vec![0, 1]).unwrap();
        d.add_edge(vec![2, 3]).unwrap();
        let data = d.build().unwrap();

        let plan = Planner::plan(&q, &data).unwrap();
        assert_eq!(plan.len(), 2);
        // Second step starts a new component: no anchors, one non-adjacent
        // previous position.
        assert!(plan.steps()[1].anchors.is_empty());
        assert_eq!(plan.steps()[1].nonadjacent_prev, vec![0]);
    }
}
