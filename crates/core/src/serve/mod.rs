//! The multi-query serving layer: one resident worker pool, many
//! concurrent queries.
//!
//! The one-shot [`crate::engine::ParallelEngine`] spins a pool up and down
//! per `run()` — perfect for benchmarks, wasteful for a server answering a
//! stream of queries against one immutable data hypergraph. This module
//! provides [`MatchServer`]: worker threads that live for the process
//! lifetime and multiplex every admitted query over one shared,
//! [`Arc`]'d data hypergraph (with its signature partitions and inverted
//! indexes built once). Under dynamic updates the data is an *epoch
//! sequence* of such snapshots: [`MatchServer::update_data`] publishes
//! the next epoch (typically a
//! [`hgmatch_hypergraph::DynamicHypergraph`] snapshot) while queries in
//! flight finish on the epoch they pinned at submission — no query ever
//! observes a half-applied update (DESIGN.md §11.3).
//!
//! What the server adds over the engine (DESIGN.md §8):
//!
//! * **Admission & fair interleaving** — each query is planned once (or
//!   fetched from the plan cache) and seeded as a single root scan task;
//!   workers pick seeds up round-robin and, after a fairness quantum of
//!   consecutive tasks on one query, prioritise other queries' seeds, so a
//!   huge query cannot starve small ones.
//! * **Per-query control** — cooperative cancellation
//!   ([`QueryHandle::cancel`]), wall-clock timeouts and `max_results`
//!   early-exit all stop *expansion* (workers drop the query's remaining
//!   tasks and abandon candidate loops mid-way), not just result
//!   recording; a stopped query releases its workers to other queries
//!   without touching the pool.
//! * **Work-assisting intra-query parallelism** — beyond deque stealing,
//!   a hot expansion whose candidate list reaches
//!   [`crate::MatchConfig::split_threshold`] is *split mid-flight*
//!   (DESIGN.md §12): idle workers claim disjoint chunks of the in-flight
//!   candidate range through stolen assist tickets, so a single giant
//!   query spreads across the pool instead of pinning one worker.
//!   Observable via [`ServeStats::splits`]/[`ServeStats::assists`] and the
//!   per-worker busy spread of [`MatchServer::worker_stats`].
//! * **Plan caching** — repeated query shapes skip Algorithm 3 entirely,
//!   keyed by the query's canonical form: its label vector plus its
//!   canonicalised hyperedge lists, the same canonicalisation
//!   [`hgmatch_hypergraph::Signature`] applies to label multisets lifted
//!   to the whole query. Hits are observable via [`MatchServer::stats`]
//!   and per-outcome [`QueryOutcome::plan_cached`].
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use hgmatch_core::serve::{MatchServer, QueryOptions, QueryStatus, ServeConfig};
//! use hgmatch_hypergraph::{HypergraphBuilder, Label};
//!
//! // Data: two triangles sharing a vertex (labels A=0, B=1).
//! let mut b = HypergraphBuilder::new();
//! for &l in &[0u32, 0, 1, 0, 0] {
//!     b.add_vertex(Label::new(l));
//! }
//! b.add_edge(vec![0, 1, 2]).unwrap();
//! b.add_edge(vec![2, 3, 4]).unwrap();
//! let data = Arc::new(b.build().unwrap());
//!
//! // Query: one {A, A, B} hyperedge.
//! let mut q = HypergraphBuilder::new();
//! for &l in &[0u32, 0, 1] {
//!     q.add_vertex(Label::new(l));
//! }
//! q.add_edge(vec![0, 1, 2]).unwrap();
//! let query = q.build().unwrap();
//!
//! let server = MatchServer::new(Arc::clone(&data), ServeConfig::default());
//! // Submit twice: the second submission hits the plan cache.
//! let first = server.run(&query, QueryOptions::default()).unwrap();
//! let second = server.run(&query, QueryOptions::default()).unwrap();
//! assert_eq!(first.status, QueryStatus::Completed);
//! assert_eq!((first.count, second.count), (2, 2));
//! assert!(!first.plan_cached && second.plan_cached);
//! assert_eq!(server.stats().plan_cache_hits, 1);
//! ```

pub(crate) mod cache;
pub(crate) mod query;
pub(crate) mod worker;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::deque::{Stealer, Worker as Deque};
use hgmatch_hypergraph::Hypergraph;
use parking_lot::Mutex;

use crate::adaptive::AdaptiveState;
use crate::aggregate::{AggregateMode, AggregateSummary};
use crate::config::MatchConfig;
use crate::embedding::Embedding;
use crate::engine::task::Task;
use crate::error::Result;
use crate::metrics::MatchMetrics;
use crate::query::QueryGraph;

use cache::PlanCache;
use query::{ActiveQuery, StopCause};
use worker::{worker_loop, ServeTask};

/// Configuration of a [`MatchServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Resident worker threads. Must be ≥ 1.
    pub threads: usize,
    /// Consecutive tasks a worker may execute for one query before other
    /// queries' waiting seeds take priority (fair interleaving).
    pub fairness_quantum: u32,
    /// Plans kept in the LRU plan cache (0 disables caching).
    pub plan_cache_capacity: usize,
    /// Relative cardinality drift (vs. plan time) past which a cached plan
    /// whose labels an update touched is dropped and the shape re-planned
    /// on its next submission (DESIGN.md §13.4). Below the threshold the
    /// entry carries over — its partition ids are still valid and its
    /// order still near-optimal. Default: `HGMATCH_REPLAN_DRIFT` or 0.5.
    pub replan_drift: f64,
    /// Timeout applied to queries that do not set their own.
    pub default_timeout: Option<Duration>,
    /// Aggregation mode applied to queries that neither set
    /// [`QueryOptions::aggregate`] nor ask to collect; `None` keeps the
    /// historical default (count-only). Lets a deployment flip its whole
    /// result path to e.g. sampled estimates without touching clients.
    pub default_aggregate: Option<AggregateMode>,
    /// Execution knobs shared by all queries (scan chunking, work
    /// stealing, pruning). Its `threads` and `timeout` fields are ignored:
    /// the pool size is [`ServeConfig::threads`] and timeouts are
    /// per-query. Disabling `work_stealing` pins each query to the worker
    /// that claimed its seed (parallelism across queries, not within one).
    pub match_config: MatchConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            fairness_quantum: 64,
            plan_cache_capacity: 128,
            replan_drift: crate::config::default_replan_drift(),
            default_timeout: None,
            default_aggregate: None,
            match_config: MatchConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Sets the worker-thread count, builder style.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the default per-query timeout, builder style.
    pub fn with_default_timeout(mut self, timeout: Duration) -> Self {
        self.default_timeout = Some(timeout);
        self
    }

    /// Sets the plan-cache capacity, builder style.
    pub fn with_plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.plan_cache_capacity = capacity;
        self
    }

    /// Sets the fairness quantum, builder style.
    pub fn with_fairness_quantum(mut self, quantum: u32) -> Self {
        self.fairness_quantum = quantum.max(1);
        self
    }

    /// Sets the replan drift threshold, builder style (negative clamps
    /// to 0: re-plan on any cardinality change of a touched label).
    pub fn with_replan_drift(mut self, drift: f64) -> Self {
        self.replan_drift = drift.max(0.0);
        self
    }

    /// Sets the server-wide default aggregation mode, builder style.
    pub fn with_default_aggregate(mut self, mode: AggregateMode) -> Self {
        self.default_aggregate = Some(mode);
        self
    }
}

/// Per-query execution options.
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Wall-clock budget; overrides [`ServeConfig::default_timeout`].
    pub timeout: Option<Duration>,
    /// Stop after this many embeddings. Expansion stops too — remaining
    /// tasks of the query are dropped, releasing workers.
    pub max_results: Option<u64>,
    /// Materialise embeddings (otherwise the query only counts).
    /// Subsumed by [`QueryOptions::aggregate`], which wins when set; kept
    /// for source compatibility with pre-aggregation callers.
    pub collect: bool,
    /// Explicit aggregation mode. `None` falls back to `collect`
    /// (materialize), then to [`ServeConfig::default_aggregate`], then to
    /// count-only.
    pub aggregate: Option<AggregateMode>,
}

impl QueryOptions {
    /// Count-only options with no limits.
    pub fn count() -> Self {
        Self::default()
    }

    /// Collects every embedding.
    pub fn collect_all() -> Self {
        Self {
            collect: true,
            ..Self::default()
        }
    }

    /// Collects at most `k` embeddings, stopping expansion once found.
    pub fn first(k: u64) -> Self {
        Self {
            collect: true,
            max_results: Some(k),
            ..Self::default()
        }
    }

    /// Keeps the best `k` embeddings by `score` (exact count included).
    pub fn top_k(k: usize, score: crate::aggregate::ScoreFn) -> Self {
        Self {
            aggregate: Some(AggregateMode::TopK { k, score }),
            ..Self::default()
        }
    }

    /// Keeps a seed-reproducible sample of at most `budget` embeddings
    /// (exact count included).
    pub fn sampled(budget: usize, seed: u64) -> Self {
        Self {
            aggregate: Some(AggregateMode::Sampled { budget, seed }),
            ..Self::default()
        }
    }

    /// Sets the timeout, builder style.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Sets the result limit, builder style.
    pub fn with_max_results(mut self, limit: u64) -> Self {
        self.max_results = Some(limit);
        self
    }

    /// Sets the aggregation mode, builder style.
    pub fn with_aggregate(mut self, mode: AggregateMode) -> Self {
        self.aggregate = Some(mode);
        self
    }

    /// Resolves the mode this query runs under: an explicit
    /// [`QueryOptions::aggregate`] wins, then the `collect` flag
    /// (materialize), then the server default, then count-only.
    pub fn effective_aggregate(&self, server_default: Option<AggregateMode>) -> AggregateMode {
        self.aggregate.unwrap_or_else(|| {
            if self.collect {
                AggregateMode::Materialize
            } else {
                server_default.unwrap_or(AggregateMode::CountOnly)
            }
        })
    }
}

/// Terminal status of a served query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStatus {
    /// The search space was exhausted; results are exact.
    Completed,
    /// `max_results` was reached and expansion stopped early. The results
    /// are the first to be *found*: with one worker that is exactly the
    /// sequential executor's first-N (DESIGN.md §8.3); with several
    /// workers it is N valid embeddings whose identity depends on
    /// scheduling.
    LimitReached,
    /// The wall-clock budget expired; results are a lower bound.
    TimedOut,
    /// The query was cancelled; results are whatever was found first.
    Cancelled,
}

impl std::fmt::Display for QueryStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Completed => "completed",
            Self::LimitReached => "limit-reached",
            Self::TimedOut => "timed-out",
            Self::Cancelled => "cancelled",
        })
    }
}

/// Final result of a served query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Server-assigned query id (also on the [`QueryHandle`]).
    pub id: u64,
    /// How the query ended.
    pub status: QueryStatus,
    /// Embeddings found (exact only when `status` is
    /// [`QueryStatus::Completed`] or [`QueryStatus::LimitReached`]).
    pub count: u64,
    /// Embeddings the aggregation mode kept: everything (sorted) under
    /// materialize, `None` under count-only, the best k (best first) under
    /// top-k, the sample (sorted) under sampled.
    pub embeddings: Option<Vec<Embedding>>,
    /// Mode-specific summary: top-k scores, sample fraction and confidence
    /// half-width, or a bare marker for materialize/count-only.
    pub aggregate: AggregateSummary,
    /// Merged execution counters.
    pub metrics: MatchMetrics,
    /// Submission-to-completion latency
    /// (`= queue_wait + execution`, always).
    pub elapsed: Duration,
    /// Share of [`QueryOutcome::elapsed`] spent waiting for the first
    /// worker pickup. Under overload this is the queueing delay — the
    /// number an admission controller should watch, because it grows with
    /// load while [`QueryOutcome::execution`] does not.
    pub queue_wait: Duration,
    /// Share of [`QueryOutcome::elapsed`] after the first worker pickup —
    /// the engine's actual execution latency, independent of how long the
    /// query sat in the admission queue.
    pub execution: Duration,
    /// Peak bytes of materialised partial embeddings for this query.
    pub peak_memory_bytes: i64,
    /// Whether planning was skipped via the plan cache.
    pub plan_cached: bool,
    /// Epoch of the data snapshot this query executed against (pinned at
    /// submission; see [`MatchServer::update_data`]).
    pub data_epoch: u64,
}

/// A handle to an in-flight (or finished) query.
///
/// Dropping the handle does *not* cancel the query; call
/// [`QueryHandle::cancel`] for that.
#[derive(Debug)]
pub struct QueryHandle {
    query: Arc<ActiveQuery>,
}

impl QueryHandle {
    /// The server-assigned query id.
    pub fn id(&self) -> u64 {
        self.query.id
    }

    /// Requests cooperative cancellation: workers drop the query's
    /// remaining tasks and abandon in-progress expansions at the next
    /// probe. The pool itself keeps running.
    pub fn cancel(&self) {
        self.query.stop(StopCause::Cancelled);
    }

    /// Whether the outcome is ready (non-blocking).
    pub fn is_finished(&self) -> bool {
        self.query.is_finished()
    }

    /// Blocks until the query finishes and returns its outcome.
    pub fn wait(self) -> QueryOutcome {
        self.query.wait_outcome()
    }
}

/// Aggregate serving counters, snapshot via [`MatchServer::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries admitted (including already-finished ones).
    pub admitted: u64,
    /// Queries finished, by terminal status.
    pub completed: u64,
    /// Queries that ended at their result limit.
    pub limit_reached: u64,
    /// Queries that hit their wall-clock budget.
    pub timed_out: u64,
    /// Queries cancelled by their submitter (or by shutdown).
    pub cancelled: u64,
    /// Queries currently admitted and not yet finished.
    pub active: usize,
    /// Tasks spawned across all queries: seed scans plus every child task
    /// and assist ticket emitted by executions. After the pool drains this
    /// equals [`ServeStats::tasks_executed`] — the scheduler-stress suites
    /// assert that invariant (no task is lost or run twice).
    pub tasks_spawned: u64,
    /// Tasks executed across all queries.
    pub tasks_executed: u64,
    /// Successful inter-worker steal operations.
    pub steals: u64,
    /// Expansions whose candidate range was split for the work-assisting
    /// scheduler (DESIGN.md §12).
    pub splits: u64,
    /// Assist tickets that claimed at least one chunk of another worker's
    /// split expansion (mid-flight intra-query parallelism actually
    /// realised, not just offered).
    pub assists: u64,
    /// Plan-cache hits (planning skipped).
    pub plan_cache_hits: u64,
    /// Plan-cache misses (planning ran).
    pub plan_cache_misses: u64,
    /// Plans currently cached.
    pub plan_cache_size: usize,
    /// Plan-cache entries dropped by data updates
    /// ([`MatchServer::update_data`]).
    pub plans_invalidated: u64,
    /// Plan-cache entries dropped because their cardinality statistics
    /// drifted past [`ServeConfig::replan_drift`] — the affected query
    /// shapes re-plan against the new statistics on their next submission
    /// (a subset of [`ServeStats::plans_invalidated`]).
    pub plans_replanned: u64,
    /// Suffix re-plans adopted *mid-query* by the adaptive trigger
    /// (DESIGN.md §15): executions whose observed candidate counts
    /// crossed [`crate::MatchConfig::replan_ratio`] × the plan's estimate
    /// and switched to a corrected order at a step boundary.
    pub replans_midquery: u64,
    /// Observation-corrected plans written back to the plan cache after a
    /// mid-query re-plan, so repeated submissions of the shape start from
    /// the corrected order (a consequence of
    /// [`ServeStats::replans_midquery`], gated on the entry's epoch).
    pub estimate_corrections: u64,
    /// Total time finished queries spent waiting for their first worker
    /// pickup (sum of [`QueryOutcome::queue_wait`] over finished queries).
    /// Divergence of this from [`ServeStats::execution_total`] under load
    /// is the saturation signal the front door's admission control reads.
    pub queue_wait_total: Duration,
    /// Total time finished queries spent executing after first pickup
    /// (sum of [`QueryOutcome::execution`] over finished queries).
    pub execution_total: Duration,
    /// Epoch of the currently published data snapshot.
    pub data_epoch: u64,
    /// Embeddings found across finished queries (the logical result count,
    /// summed over outcomes — exact in every aggregation mode).
    pub results_found: u64,
    /// Embeddings actually materialised across finished queries (converted
    /// to query order and handed to the sink); diverges from
    /// [`ServeStats::results_found`] under count-only/top-k/sampled modes.
    pub results_materialized: u64,
    /// Finished queries that ran under materialize aggregation.
    pub queries_materialize: u64,
    /// Finished queries that ran under count-only aggregation.
    pub queries_count_only: u64,
    /// Finished queries that ran under top-k aggregation.
    pub queries_top_k: u64,
    /// Finished queries that ran under sampled aggregation.
    pub queries_sampled: u64,
}

#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) admitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) limit_reached: AtomicU64,
    pub(crate) timed_out: AtomicU64,
    pub(crate) cancelled: AtomicU64,
    pub(crate) spawned: AtomicU64,
    pub(crate) tasks: AtomicU64,
    pub(crate) steals: AtomicU64,
    pub(crate) splits: AtomicU64,
    pub(crate) assists: AtomicU64,
    pub(crate) replans_midquery: AtomicU64,
    pub(crate) queue_wait_ns: AtomicU64,
    pub(crate) execution_ns: AtomicU64,
    pub(crate) results_found: AtomicU64,
    pub(crate) results_materialized: AtomicU64,
    pub(crate) queries_materialize: AtomicU64,
    pub(crate) queries_count_only: AtomicU64,
    pub(crate) queries_top_k: AtomicU64,
    pub(crate) queries_sampled: AtomicU64,
}

/// Per-worker accounting of the serving pool, snapshot via
/// [`MatchServer::worker_stats`]. Busy time is the scheduling experiments'
/// load-balance signal: with work assisting a single big query spreads its
/// busy time across the pool, while under pinned (no-steal) pickup one
/// worker carries it all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerServeStats {
    /// Wall-clock spent executing tasks (excludes idle and steal spinning).
    pub busy: Duration,
    /// Tasks this worker executed.
    pub tasks: u64,
}

/// The currently published data snapshot and its epoch. Queries pin the
/// pair at submission; [`MatchServer::update_data`] swaps it atomically.
#[derive(Debug)]
pub(crate) struct CurrentData {
    pub(crate) graph: Arc<Hypergraph>,
    pub(crate) epoch: u64,
}

/// State shared between the server front-end and its workers.
#[derive(Debug)]
pub(crate) struct ServeShared {
    pub(crate) data: Mutex<CurrentData>,
    pub(crate) config: MatchConfig,
    pub(crate) replan_drift: f64,
    pub(crate) fairness_quantum: u32,
    /// Admitted, unfinished queries (seed-slot scan order = admission
    /// order; finalisation removes entries).
    pub(crate) queries: Mutex<Vec<Arc<ActiveQuery>>>,
    pub(crate) stealers: Vec<Stealer<ServeTask>>,
    /// Per-worker busy nanoseconds and task counts (indexed by worker id).
    pub(crate) worker_busy_ns: Vec<AtomicU64>,
    pub(crate) worker_tasks: Vec<AtomicU64>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) idle_mutex: StdMutex<()>,
    pub(crate) idle_cv: Condvar,
    pub(crate) counters: Counters,
    pub(crate) cache: PlanCache,
    next_id: AtomicU64,
}

impl ServeShared {
    /// Retires a finished query: removes it from the admission registry,
    /// resolves its outcome, bumps counters and wakes waiters. Called by
    /// exactly one thread per query (the one retiring its last pending
    /// task, or the submitter for trivially-empty queries).
    pub(crate) fn finalize(&self, query: &Arc<ActiveQuery>) {
        self.queries.lock().retain(|q| q.id != query.id);
        let status = query.status();
        match status {
            QueryStatus::Completed => &self.counters.completed,
            QueryStatus::LimitReached => &self.counters.limit_reached,
            QueryStatus::TimedOut => &self.counters.timed_out,
            QueryStatus::Cancelled => &self.counters.cancelled,
        }
        .fetch_add(1, Ordering::Relaxed);
        let metrics = *query.metrics.lock();
        if metrics.replans > 0 {
            self.counters
                .replans_midquery
                .fetch_add(metrics.replans, Ordering::Relaxed);
            // Convergence (DESIGN.md §15.4): feed the corrected order back
            // into the cached plan for this shape, so repeated submissions
            // start corrected instead of re-triggering the same re-plan.
            // Gated on the entry's epoch still matching the epoch this
            // query was pinned to — never clobber a newer epoch's plan.
            if let (Some(ad), Some(key)) = (query.adaptive.as_ref(), query.cache_key.as_ref()) {
                if let Some(corrected) = ad.corrected_plan() {
                    self.cache.write_back(key, corrected, query.data_epoch);
                }
            }
        }
        let (count, embeddings, aggregate) = query.sink.take_output();
        match aggregate {
            AggregateSummary::Materialized => &self.counters.queries_materialize,
            AggregateSummary::Count => &self.counters.queries_count_only,
            AggregateSummary::TopK { .. } => &self.counters.queries_top_k,
            AggregateSummary::Sampled { .. } => &self.counters.queries_sampled,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.counters
            .results_found
            .fetch_add(count, Ordering::Relaxed);
        self.counters
            .results_materialized
            .fetch_add(metrics.materialized, Ordering::Relaxed);
        let elapsed = query.submitted.elapsed();
        let (queue_wait, execution) = query.latency_split(elapsed);
        self.counters
            .queue_wait_ns
            .fetch_add(queue_wait.as_nanos() as u64, Ordering::Relaxed);
        self.counters
            .execution_ns
            .fetch_add(execution.as_nanos() as u64, Ordering::Relaxed);
        query.complete(QueryOutcome {
            id: query.id,
            status,
            count,
            embeddings,
            aggregate,
            metrics,
            elapsed: queue_wait + execution,
            queue_wait,
            execution,
            peak_memory_bytes: query.tracker.peak_bytes(),
            plan_cached: query.plan_cached,
            data_epoch: query.data_epoch,
        });
    }
}

/// A resident multi-query matching server over one shared data hypergraph.
///
/// Workers are spawned in [`MatchServer::new`] and joined on drop (or via
/// [`MatchServer::shutdown`]); queries in flight at shutdown are cancelled
/// and their waiters woken with [`QueryStatus::Cancelled`] outcomes.
#[derive(Debug)]
pub struct MatchServer {
    shared: Arc<ServeShared>,
    workers: Vec<JoinHandle<()>>,
    default_timeout: Option<Duration>,
    default_aggregate: Option<AggregateMode>,
}

impl MatchServer {
    /// Spawns the worker pool over `data`.
    pub fn new(data: Arc<Hypergraph>, config: ServeConfig) -> Self {
        let threads = config.threads.max(1);
        let deques: Vec<Deque<ServeTask>> = (0..threads).map(|_| Deque::new_lifo()).collect();
        let stealers: Vec<Stealer<ServeTask>> = deques.iter().map(Deque::stealer).collect();

        // The task core gates work-assisting splits on the pool size (a
        // lone worker never splits), so the shared config must carry it —
        // ServeConfig::threads is authoritative, not match_config.threads.
        let mut match_config = config.match_config.clone();
        match_config.threads = threads;

        let shared = Arc::new(ServeShared {
            data: Mutex::new(CurrentData {
                graph: data,
                epoch: 0,
            }),
            config: match_config,
            replan_drift: config.replan_drift.max(0.0),
            fairness_quantum: config.fairness_quantum.max(1),
            queries: Mutex::new(Vec::new()),
            stealers,
            worker_busy_ns: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            worker_tasks: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            shutdown: AtomicBool::new(false),
            idle_mutex: StdMutex::new(()),
            idle_cv: Condvar::new(),
            counters: Counters::default(),
            cache: PlanCache::new(config.plan_cache_capacity),
            next_id: AtomicU64::new(0),
        });
        let default_timeout = config.default_timeout;
        let default_aggregate = config.default_aggregate;

        let workers = deques
            .into_iter()
            .enumerate()
            .map(|(wid, deque)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hgmatch-serve-{wid}"))
                    .spawn(move || worker_loop(wid, deque, shared))
                    .expect("spawn serve worker")
            })
            .collect();

        Self {
            shared,
            workers,
            default_timeout,
            default_aggregate,
        }
    }

    /// Admits `query`: plans it (or hits the plan cache), registers it
    /// with the pool and returns a handle for cancellation and waiting.
    ///
    /// # Errors
    /// Fails when the query is empty or exceeds the engine's 64-hyperedge
    /// limit (same conditions as [`crate::Matcher`]).
    pub fn submit(&self, query: &Hypergraph, options: QueryOptions) -> Result<QueryHandle> {
        let shared = &self.shared;
        // Pin the published snapshot and its epoch together: everything
        // below (planning, seeding, execution) sees this one view, however
        // many updates land concurrently.
        let (data, epoch) = {
            let current = shared.data.lock();
            (Arc::clone(&current.graph), current.epoch)
        };
        let (plan, cached) = shared.cache.plan_for(query, &data, epoch)?;
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        let deadline = options
            .timeout
            .or(self.default_timeout)
            .map(|t| Instant::now() + t);
        // Arm mid-query re-optimization (DESIGN.md §15) when the trigger
        // is enabled and the plan has a suffix to re-order. The cache key
        // is kept so finalisation can write a corrected plan back.
        let adaptive =
            if shared.config.replan_ratio > 0.0 && plan.len() > 1 && !plan.is_infeasible() {
                Some(AdaptiveState::new(
                    QueryGraph::new(query)?,
                    Arc::clone(&plan),
                    shared.config.replan_ratio,
                ))
            } else {
                None
            };
        let cache_key = adaptive.as_ref().map(|_| cache::PlanKey::new(query));
        let mode = options.effective_aggregate(self.default_aggregate);
        let active = Arc::new(ActiveQuery::new(
            id, data, epoch, plan, &options, mode, cached, deadline, adaptive, cache_key,
        ));
        shared.counters.admitted.fetch_add(1, Ordering::Relaxed);

        let scan_rows = if active.plan.is_infeasible() {
            0
        } else {
            active
                .data
                .partition(active.plan.steps()[0].partition.expect("feasible"))
                .len() as u32
        };
        if scan_rows == 0 {
            // Nothing to do: resolve inline, never touching the pool.
            shared.finalize(&active);
        } else {
            shared.counters.spawned.fetch_add(1, Ordering::Relaxed);
            active.pending.store(1, Ordering::Relaxed);
            *active.seed.lock() = Some(Task::Scan {
                start: 0,
                end: scan_rows,
            });
            shared.queries.lock().push(Arc::clone(&active));
            shared.idle_cv.notify_all();
        }
        Ok(QueryHandle { query: active })
    }

    /// Submits `query` and blocks for its outcome — the convenience path
    /// for callers that do not interleave submissions.
    pub fn run(&self, query: &Hypergraph, options: QueryOptions) -> Result<QueryOutcome> {
        Ok(self.submit(query, options)?.wait())
    }

    /// Plans `query` (through the plan cache) against the currently
    /// published snapshot and returns the cost model's total-cost estimate
    /// *without admitting it* — the front door's admission-control signal
    /// for rejecting predicted-expensive queries under load. The compiled
    /// plan stays cached, so an admitted follow-up [`MatchServer::submit`]
    /// of the same shape reuses it instead of planning twice (and counts
    /// as a cache hit). An infeasible shape (a signature absent from the
    /// data) estimates 0: it resolves inline with no engine work.
    ///
    /// # Errors
    /// Same conditions as [`MatchServer::submit`]: an empty query or one
    /// past the engine's 64-hyperedge limit.
    pub fn estimate_cost(&self, query: &Hypergraph) -> Result<f64> {
        let (data, epoch) = {
            let current = self.shared.data.lock();
            (Arc::clone(&current.graph), current.epoch)
        };
        let (plan, _cached) = self.shared.cache.plan_for(query, &data, epoch)?;
        Ok(if plan.is_infeasible() {
            0.0
        } else {
            plan.cost()
        })
    }

    /// Publishes a new data snapshot: queries submitted from now on pin
    /// `data`, while queries already in flight finish on the epoch they
    /// pinned at submission — no query ever observes a half-applied
    /// update. Plan-cache entries whose labels intersect `touched_labels`
    /// are dropped; the rest carry over to the new epoch (all of them are
    /// dropped when `sids_stable` is false, i.e. partition ids shifted).
    ///
    /// Returns the new epoch. With a
    /// [`hgmatch_hypergraph::DynamicHypergraph`] writer, pass the fields of
    /// the [`hgmatch_hypergraph::SnapshotDelta`] it produced:
    ///
    /// ```
    /// # use std::sync::Arc;
    /// # use hgmatch_core::serve::{MatchServer, ServeConfig};
    /// # use hgmatch_hypergraph::{DynamicHypergraph, Label};
    /// let mut writer = DynamicHypergraph::new();
    /// writer.add_vertices(2, Label::new(0));
    /// writer.insert_hyperedge(vec![0, 1]).unwrap();
    /// let server = MatchServer::new(writer.snapshot().graph, ServeConfig::default());
    ///
    /// writer.add_vertices(2, Label::new(1));
    /// writer.insert_hyperedge(vec![2, 3]).unwrap();
    /// let delta = writer.snapshot();
    /// let epoch = server.update_data(delta.graph, &delta.touched_labels, delta.sids_stable);
    /// assert_eq!(epoch, 1);
    /// ```
    pub fn update_data(
        &self,
        data: Arc<Hypergraph>,
        touched_labels: &[hgmatch_hypergraph::Label],
        sids_stable: bool,
    ) -> u64 {
        let mut current = self.shared.data.lock();
        let epoch = current.epoch + 1;
        *current = CurrentData { graph: data, epoch };
        // Revalidate under the data lock so no submission can race a plan
        // of the new epoch past an unswept cache.
        self.shared.cache.revalidate(
            epoch,
            touched_labels,
            sids_stable,
            &current.graph,
            self.shared.replan_drift,
        );
        epoch
    }

    /// Snapshot of the aggregate serving counters.
    pub fn stats(&self) -> ServeStats {
        let c = &self.shared.counters;
        ServeStats {
            admitted: c.admitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            limit_reached: c.limit_reached.load(Ordering::Relaxed),
            timed_out: c.timed_out.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            active: self.shared.queries.lock().len(),
            tasks_spawned: c.spawned.load(Ordering::Relaxed),
            tasks_executed: c.tasks.load(Ordering::Relaxed),
            steals: c.steals.load(Ordering::Relaxed),
            splits: c.splits.load(Ordering::Relaxed),
            assists: c.assists.load(Ordering::Relaxed),
            plan_cache_hits: self.shared.cache.hits(),
            plan_cache_misses: self.shared.cache.misses(),
            plan_cache_size: self.shared.cache.len(),
            plans_invalidated: self.shared.cache.invalidated(),
            plans_replanned: self.shared.cache.replanned(),
            replans_midquery: c.replans_midquery.load(Ordering::Relaxed),
            estimate_corrections: self.shared.cache.corrections(),
            queue_wait_total: Duration::from_nanos(c.queue_wait_ns.load(Ordering::Relaxed)),
            execution_total: Duration::from_nanos(c.execution_ns.load(Ordering::Relaxed)),
            data_epoch: self.shared.data.lock().epoch,
            results_found: c.results_found.load(Ordering::Relaxed),
            results_materialized: c.results_materialized.load(Ordering::Relaxed),
            queries_materialize: c.queries_materialize.load(Ordering::Relaxed),
            queries_count_only: c.queries_count_only.load(Ordering::Relaxed),
            queries_top_k: c.queries_top_k.load(Ordering::Relaxed),
            queries_sampled: c.queries_sampled.load(Ordering::Relaxed),
        }
    }

    /// Per-worker busy time and task counts (index = worker id). The busy
    /// spread is the scheduling experiments' load-balance signal — see
    /// [`WorkerServeStats`].
    pub fn worker_stats(&self) -> Vec<WorkerServeStats> {
        self.shared
            .worker_busy_ns
            .iter()
            .zip(&self.shared.worker_tasks)
            .map(|(busy, tasks)| WorkerServeStats {
                busy: Duration::from_nanos(busy.load(Ordering::Relaxed)),
                tasks: tasks.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// The currently published data snapshot (queries in flight may be
    /// pinned to older epochs).
    pub fn data(&self) -> Arc<Hypergraph> {
        Arc::clone(&self.shared.data.lock().graph)
    }

    /// Worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.workers.len().max(1)
    }

    /// Cancels in-flight queries, drains the pool and joins the workers.
    /// Dropping the server does the same.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.shared.shutdown.store(true, Ordering::Release);
        for q in self.shared.queries.lock().iter() {
            q.stop(StopCause::Cancelled);
        }
        self.shared.idle_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for MatchServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}
