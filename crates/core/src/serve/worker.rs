//! The resident worker pool: one set of OS threads multiplexing every
//! admitted query.
//!
//! Each worker owns a LIFO deque of [`ServeTask`]s — tasks tagged with the
//! query they belong to — so tasks of many queries interleave freely. Work
//! discovery is a three-level cascade:
//!
//! 1. **local deque** (hot end) — depth-first on whatever the worker
//!    touched last, preserving the engine's memory bound per query;
//! 2. **seed slots** — admitted queries whose root scan task nobody has
//!    picked up yet, visited round-robin so admission order is fair;
//! 3. **stealing** — batches from a random victim's cold end, which holds
//!    the *oldest* (coarsest) tasks, exactly as in the one-shot engine.
//!    Since the work-assisting scheduler (DESIGN.md §12) the cold end also
//!    holds *assist tickets*: claims on the in-flight candidate range of a
//!    splittable expansion, pushed below the owner's children so thieves
//!    preferentially join the hottest expansion instead of peeling off a
//!    leaf task.
//!
//! Fairness against monopolisation: after [`ServeConfig::fairness_quantum`]
//! consecutive tasks of the same query, a worker offers waiting seed slots
//! priority over its own deque. A freshly admitted small query is therefore
//! picked up within a bounded number of task executions even while a huge
//! query keeps every deque non-empty — and because deques are LIFO, the
//! small query's tasks then run ahead of the big query's backlog on that
//! worker while thieves keep draining the backlog's cold end.
//!
//! [`ServeConfig::fairness_quantum`]: super::ServeConfig::fairness_quantum

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::deque::Worker as Deque;

use crate::engine::task::{
    execute_task, steal_from_victims, ExecScratch, QueryEnv, Task, CHECK_INTERVAL,
};
use crate::metrics::MatchMetrics;
use crate::sink::Sink;

use super::query::{ActiveQuery, StopCause};
use super::ServeShared;

/// A task tagged with the query it belongs to.
#[derive(Debug)]
pub(crate) struct ServeTask {
    pub(crate) query: Arc<ActiveQuery>,
    pub(crate) task: Task,
}

/// Idle polls (with yields) before a worker parks on the condvar.
const IDLE_SPINS: u32 = 16;

/// How long a parked worker sleeps before re-polling for work. Submissions
/// notify the condvar, so this only bounds wake-up latency for work that
/// appears via stealing-visible spawns.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

pub(crate) fn worker_loop(wid: usize, local: Deque<ServeTask>, shared: Arc<ServeShared>) {
    let mut scratch = ExecScratch::new();
    let mut rng = 0x9E37_79B9 ^ (wid as u64 + 1).wrapping_mul(0x2545_F491_4F6C_DD1D);
    let mut cursor = wid;
    let mut consecutive = 0u32;
    let mut last_query = u64::MAX;
    let mut idle = 0u32;

    loop {
        // Quantum bookkeeping: after `fairness_quantum` consecutive tasks
        // of one query, probe other queries' seeds once and start a fresh
        // quantum — so an empty probe costs one registry scan per quantum,
        // not one per task.
        let probe_seeds = consecutive >= shared.fairness_quantum;
        if probe_seeds {
            consecutive = 0;
        }
        let next = find_task(
            wid,
            &local,
            &shared,
            &mut rng,
            &mut cursor,
            probe_seeds,
            last_query,
        );
        let Some(ServeTask { query, task }) = next else {
            if shared.shutdown.load(Ordering::Acquire) && shared.queries.lock().is_empty() {
                break;
            }
            idle += 1;
            if idle < IDLE_SPINS {
                std::thread::yield_now();
            } else {
                let guard = shared.idle_mutex.lock().unwrap_or_else(|e| e.into_inner());
                let _ = shared
                    .idle_cv
                    .wait_timeout(guard, PARK_TIMEOUT)
                    .unwrap_or_else(|e| e.into_inner());
            }
            continue;
        };
        idle = 0;
        if query.id == last_query {
            consecutive += 1;
        } else {
            consecutive = 0;
            last_query = query.id;
        }
        run_one(wid, &query, task, &local, &shared, &mut scratch);
    }
}

/// Executes one task of `query`, spawning children into the worker's local
/// deque (tagged with the same query). The worker that retires the query's
/// last pending task finalises it.
fn run_one(
    wid: usize,
    query: &Arc<ActiveQuery>,
    task: Task,
    local: &Deque<ServeTask>,
    shared: &ServeShared,
    scratch: &mut ExecScratch,
) {
    // First pickup of any of this query's tasks ends its queue-wait phase
    // (the latency split reported on the outcome and in ServeStats).
    query.mark_picked_up();
    // Resolve the plan version this task runs under (DESIGN.md §15) —
    // per task, at the step boundary, before any step state is built.
    let (resolved, ver) = match query.adaptive.as_ref() {
        Some(ad) => {
            let (plan, ver) = ad.resolve_task(&task);
            (Some(plan), ver)
        }
        None => (None, 0),
    };
    let env = QueryEnv {
        plan: resolved.as_deref().unwrap_or(&query.plan),
        // Each task runs against the snapshot its query pinned at
        // submission, not whatever the server currently publishes.
        data: &query.data,
        sink: &query.sink,
        config: &shared.config,
        tracker: &query.tracker,
        ver,
        adaptive: query.adaptive.as_ref(),
    };
    let begin = Instant::now();
    let was_assist = matches!(task, Task::Assist { .. });
    let mut task_metrics = MatchMetrics::default();
    let mut probes = 0u64;
    execute_task(
        &env,
        scratch,
        &mut task_metrics,
        task,
        &mut || should_stop(query, &mut probes),
        &mut |t| {
            query.pending.fetch_add(1, Ordering::Relaxed);
            shared.counters.spawned.fetch_add(1, Ordering::Relaxed);
            local.push(ServeTask {
                query: Arc::clone(query),
                task: t,
            });
        },
    );
    if !task_metrics.is_empty() {
        query.metrics.lock().merge(&task_metrics);
        if task_metrics.split_expansions > 0 {
            shared
                .counters
                .splits
                .fetch_add(task_metrics.split_expansions, Ordering::Relaxed);
        }
        if was_assist && task_metrics.assist_chunks > 0 {
            shared.counters.assists.fetch_add(1, Ordering::Relaxed);
        }
    }
    shared.counters.tasks.fetch_add(1, Ordering::Relaxed);
    shared.worker_busy_ns[wid].fetch_add(begin.elapsed().as_nanos() as u64, Ordering::Relaxed);
    shared.worker_tasks[wid].fetch_add(1, Ordering::Relaxed);
    if query.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
        shared.finalize(query);
    }
}

/// Per-query cooperative stop check: an already-raised stop and limit
/// satisfaction are honoured on *every* probe (two cheap atomic loads —
/// with counts flushing mid-task, a `max_results` limit must land within
/// one probe of saturation, not one [`CHECK_INTERVAL`] window of
/// ABORT_PROBE-sized strides); only the `Instant::now()` deadline check
/// stays on the interval cadence.
#[inline]
fn should_stop(query: &ActiveQuery, probes: &mut u64) -> bool {
    *probes += 1;
    if query.stopped() {
        return true;
    }
    if query.sink.is_satisfied() {
        query.stop(StopCause::Limit);
        return true;
    }
    if (probes.is_multiple_of(CHECK_INTERVAL) || *probes == 1)
        && query.deadline.is_some_and(|d| Instant::now() >= d)
    {
        query.stop(StopCause::Timeout);
        return true;
    }
    false
}

#[allow(clippy::too_many_arguments)]
fn find_task(
    wid: usize,
    local: &Deque<ServeTask>,
    shared: &ServeShared,
    rng: &mut u64,
    cursor: &mut usize,
    probe_seeds: bool,
    last_query: u64,
) -> Option<ServeTask> {
    // Fairness: after a full quantum on one query, waiting seeds of *other*
    // queries take priority over the local deque (the caller sets
    // `probe_seeds` once per quantum).
    if probe_seeds {
        if let Some(t) = take_seed(shared, cursor, last_query) {
            return Some(t);
        }
    }
    if let Some(t) = local.pop() {
        return Some(t);
    }
    if let Some(t) = take_seed(shared, cursor, u64::MAX) {
        return Some(t);
    }
    // Random-victim batch stealing from the cold (oldest-task) end. With
    // stealing disabled each query stays on the worker that claimed its
    // seed: parallelism across queries, not within one.
    if !shared.config.work_stealing {
        return None;
    }
    let stolen = steal_from_victims(&shared.stealers, local, wid, rng);
    if stolen.is_some() {
        shared.counters.steals.fetch_add(1, Ordering::Relaxed);
    }
    stolen
}

/// Claims the seed task of some admitted-but-unstarted query, round-robin
/// from `cursor`, skipping `exclude` (the quantum-exceeded query).
fn take_seed(shared: &ServeShared, cursor: &mut usize, exclude: u64) -> Option<ServeTask> {
    let queries = shared.queries.lock();
    let n = queries.len();
    for k in 0..n {
        let idx = (*cursor + k) % n;
        let q = &queries[idx];
        if q.id == exclude {
            continue;
        }
        if let Some(task) = q.seed.lock().take() {
            *cursor = idx + 1;
            return Some(ServeTask {
                query: Arc::clone(q),
                task,
            });
        }
    }
    None
}
