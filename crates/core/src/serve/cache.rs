//! The plan cache: repeated query shapes skip Algorithm 3.
//!
//! A serving workload repeats query shapes constantly (the same template
//! with different parameters, the same dashboard query every few seconds),
//! so the server memoises compiled [`Plan`]s. The cache key is the query's
//! *canonical form*: its vertex-label vector plus its canonicalised
//! (sorted) hyperedge lists — the same canonicalisation
//! [`hgmatch_hypergraph::Signature`] applies to label multisets, lifted to
//! the whole query. The per-edge `Signature`s themselves are *not* stored
//! in the key: they are a pure function of the labels and edge lists, so
//! they cannot distinguish any queries the key does not already
//! distinguish — they are rebuilt (and interned) during planning on a
//! miss, and a hit touches only the label/edge comparison.
//!
//! Plans are valid for exactly one data hypergraph (Algorithm 3 orders by
//! the data's signature cardinalities and steps embed `SignatureId`s of its
//! interner). Under dynamic updates the server publishes a new snapshot per
//! epoch ([`MatchServer::update_data`]), so every entry is tagged with the
//! epoch it is valid for: a key match whose epoch lags the current one is a
//! miss. [`PlanCache::revalidate`] decides, per published epoch, which
//! entries survive — an entry whose query labels are disjoint from the
//! update's touched labels saw no cardinality change, so its plan is
//! re-tagged to the new epoch instead of dropped (and when partition ids
//! shifted, `sids_stable == false`, nothing survives).
//!
//! Eviction is least-recently-used over a bounded capacity; hits, misses
//! and invalidations are observable through [`MatchServer::stats`].
//!
//! [`MatchServer::update_data`]: super::MatchServer::update_data
//!
//! [`MatchServer`]: super::MatchServer
//! [`MatchServer::stats`]: super::MatchServer::stats

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hgmatch_hypergraph::fxhash::FxHashMap;
use hgmatch_hypergraph::{Hypergraph, Label};
use parking_lot::Mutex;

use crate::error::Result;
use crate::plan::{Plan, Planner};
use crate::query::QueryGraph;

/// Canonical cache key of a query hypergraph.
///
/// Two queries collide exactly when they have the same vertex labels and
/// the same (sorted) hyperedge vertex lists — i.e. when they are the *same*
/// labelled hypergraph, for which the planner provably produces the same
/// plan against a fixed data hypergraph. Isomorphic-but-relabelled queries
/// plan afresh: full canonical labelling would cost more than Algorithm 3
/// saves on the paper's ≤ 6-edge queries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    labels: Box<[Label]>,
    edges: Box<[Box<[u32]>]>,
}

impl PlanKey {
    fn new(query: &Hypergraph) -> Self {
        Self {
            labels: query.labels().into(),
            edges: query.iter_edges().map(|(_, vs)| Box::from(vs)).collect(),
        }
    }
}

#[derive(Debug)]
struct Entry {
    plan: Arc<Plan>,
    last_used: u64,
    /// Data epoch this plan is valid for. A key match at a stale epoch is
    /// a miss (the entry is replaced by the re-planned result).
    epoch: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: FxHashMap<PlanKey, Entry>,
    tick: u64,
}

/// A bounded LRU cache of compiled plans, keyed by canonical query form
/// and tagged with the data epoch each plan was compiled against.
#[derive(Debug)]
pub(crate) struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans (0 disables
    /// caching: every submission plans afresh).
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
        }
    }

    /// Returns the plan for `query` against `data` (the snapshot of
    /// `epoch`), reusing a cached one when the canonical form matches at
    /// the same epoch. The boolean is `true` on a hit.
    pub(crate) fn plan_for(
        &self,
        query: &Hypergraph,
        data: &Hypergraph,
        epoch: u64,
    ) -> Result<(Arc<Plan>, bool)> {
        if self.capacity == 0 {
            let q = QueryGraph::new(query)?;
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::new(Planner::plan(&q, data)?), false));
        }

        let key = PlanKey::new(query);
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(&key) {
                if entry.epoch == epoch {
                    entry.last_used = tick;
                    let plan = Arc::clone(&entry.plan);
                    drop(inner);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((plan, true));
                }
                // Stale epoch (e.g. inserted by a submission racing an
                // update): fall through to re-plan and overwrite.
            }
        }

        // Plan outside the lock: Algorithm 3 is cheap but not free, and
        // submissions should not serialise behind each other's planning.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let q = QueryGraph::new(query)?;
        let plan = Arc::new(Planner::plan(&q, data)?);

        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            // Evict the least-recently-used entry (linear scan: serving
            // caches are small, eviction is rare).
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
            }
        }
        let entry = inner.map.entry(key).or_insert(Entry {
            plan: Arc::clone(&plan),
            last_used: tick,
            epoch,
        });
        if entry.epoch < epoch {
            // Overwrite a stale entry in place; never downgrade a fresher
            // one a racing submitter installed meanwhile.
            *entry = Entry {
                plan: Arc::clone(&plan),
                last_used: tick,
                epoch,
            };
        }
        Ok((plan, false))
    }

    /// Reconciles the cache with a newly published data epoch: entries
    /// whose query labels intersect `touched_labels` (or every entry, when
    /// `sids_stable` is false) are dropped; the survivors are re-tagged to
    /// `epoch` — their cardinalities did not change, so their plans remain
    /// optimal and their embedded partition ids remain valid.
    ///
    /// Only entries at the epoch being superseded (`epoch - 1`) are
    /// eligible to survive: an entry lagging further behind was inserted
    /// by a submission that raced an earlier update (planning happens
    /// outside the data lock) and never passed that update's invalidation,
    /// so its plan may embed re-numbered partition ids even though its
    /// labels are disjoint from *this* update's.
    pub(crate) fn revalidate(&self, epoch: u64, touched_labels: &[Label], sids_stable: bool) {
        let mut inner = self.inner.lock();
        let before = inner.map.len();
        if sids_stable {
            inner.map.retain(|key, entry| {
                let keep = entry.epoch + 1 == epoch
                    && !key.labels.iter().any(|l| touched_labels.contains(l));
                if keep {
                    entry.epoch = epoch;
                }
                keep
            });
        } else {
            inner.map.clear();
        }
        let dropped = (before - inner.map.len()) as u64;
        drop(inner);
        self.invalidated.fetch_add(dropped, Ordering::Relaxed);
    }

    /// Cache hits so far.
    pub(crate) fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far (planning happened).
    pub(crate) fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries dropped by [`PlanCache::revalidate`] so far.
    pub(crate) fn invalidated(&self) -> u64 {
        self.invalidated.load(Ordering::Relaxed)
    }

    /// Plans currently cached.
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgmatch_hypergraph::HypergraphBuilder;

    fn tiny_data() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 1, 0, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![0, 1]).unwrap();
        b.add_edge(vec![2, 3]).unwrap();
        b.build().unwrap()
    }

    fn ab_query(extra: u32) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        b.add_vertex(Label::new(0));
        b.add_vertex(Label::new(extra));
        b.add_edge(vec![0, 1]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn hit_on_identical_query() {
        let data = tiny_data();
        let cache = PlanCache::new(4);
        let (p1, hit1) = cache.plan_for(&ab_query(1), &data, 0).unwrap();
        let (p2, hit2) = cache.plan_for(&ab_query(1), &data, 0).unwrap();
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn different_labels_miss() {
        let data = tiny_data();
        let cache = PlanCache::new(4);
        cache.plan_for(&ab_query(1), &data, 0).unwrap();
        let (_, hit) = cache.plan_for(&ab_query(0), &data, 0).unwrap();
        assert!(!hit);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_evicts_lru() {
        let data = tiny_data();
        let cache = PlanCache::new(2);
        let q1 = ab_query(1);
        let q2 = ab_query(0);
        cache.plan_for(&q1, &data, 0).unwrap(); // {q1}
        cache.plan_for(&q2, &data, 0).unwrap(); // {q1, q2}
        cache.plan_for(&q1, &data, 0).unwrap(); // touch q1

        // A third shape evicts q2 (least recently used), not q1.
        let mut b = HypergraphBuilder::new();
        b.add_vertices(3, Label::new(0));
        b.add_edge(vec![0, 1, 2]).unwrap();
        let q3 = b.build().unwrap();
        cache.plan_for(&q3, &data, 0).unwrap();
        assert_eq!(cache.len(), 2);

        let (_, hit1) = cache.plan_for(&q1, &data, 0).unwrap();
        assert!(hit1, "recently-used entry must survive eviction");
        let (_, hit2) = cache.plan_for(&q2, &data, 0).unwrap();
        assert!(!hit2, "LRU entry must have been evicted");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let data = tiny_data();
        let cache = PlanCache::new(0);
        cache.plan_for(&ab_query(1), &data, 0).unwrap();
        let (_, hit) = cache.plan_for(&ab_query(1), &data, 0).unwrap();
        assert!(!hit);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn planning_errors_propagate() {
        let data = tiny_data();
        let cache = PlanCache::new(4);
        let empty = HypergraphBuilder::new().build().unwrap();
        assert!(cache.plan_for(&empty, &data, 0).is_err());
    }

    #[test]
    fn stale_epoch_is_a_miss() {
        let data = tiny_data();
        let cache = PlanCache::new(4);
        cache.plan_for(&ab_query(1), &data, 0).unwrap();
        let (_, hit) = cache.plan_for(&ab_query(1), &data, 1).unwrap();
        assert!(!hit, "entry tagged epoch 0 must not serve epoch 1");
        // The entry was upgraded in place: epoch 1 now hits.
        let (_, hit) = cache.plan_for(&ab_query(1), &data, 1).unwrap();
        assert!(hit);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn revalidate_drops_touched_and_keeps_disjoint() {
        let data = tiny_data();
        let cache = PlanCache::new(8);
        cache.plan_for(&ab_query(1), &data, 0).unwrap(); // labels {0,1}
        cache.plan_for(&ab_query(2), &data, 0).unwrap(); // labels {0,2}
                                                         // Label 2 touched: only the {0,2} query drops; {0,1} re-tags.
        cache.revalidate(1, &[Label::new(2)], true);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.invalidated(), 1);
        let (_, hit) = cache.plan_for(&ab_query(1), &data, 1).unwrap();
        assert!(hit, "label-disjoint entry survives at the new epoch");
        let (_, hit) = cache.plan_for(&ab_query(2), &data, 1).unwrap();
        assert!(!hit, "touched entry was dropped");
    }

    #[test]
    fn revalidate_drops_entries_that_skipped_an_epoch() {
        let data = tiny_data();
        let cache = PlanCache::new(8);
        // An entry a racing submitter inserted at epoch 0 *after* the
        // epoch-1 invalidation swept (so it never passed it)…
        cache.plan_for(&ab_query(1), &data, 0).unwrap();
        // …must not be promoted by a later label-disjoint update: it is
        // dropped even though no touched label matches.
        cache.revalidate(2, &[Label::new(9)], true);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.invalidated(), 1);
        // The normal chain (entry at the superseded epoch) still carries.
        cache.plan_for(&ab_query(1), &data, 2).unwrap();
        cache.revalidate(3, &[Label::new(9)], true);
        let (_, hit) = cache.plan_for(&ab_query(1), &data, 3).unwrap();
        assert!(hit, "contiguous-epoch entry survives");
    }

    #[test]
    fn revalidate_clears_everything_when_sids_shift() {
        let data = tiny_data();
        let cache = PlanCache::new(8);
        cache.plan_for(&ab_query(1), &data, 0).unwrap();
        cache.plan_for(&ab_query(2), &data, 0).unwrap();
        cache.revalidate(1, &[], false);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.invalidated(), 2);
    }
}
