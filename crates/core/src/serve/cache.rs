//! The plan cache: repeated query shapes skip Algorithm 3.
//!
//! A serving workload repeats query shapes constantly (the same template
//! with different parameters, the same dashboard query every few seconds),
//! so the server memoises compiled [`Plan`]s. The cache key is the query's
//! *canonical form*: its vertex-label vector plus its canonicalised
//! (sorted) hyperedge lists — the same canonicalisation
//! [`hgmatch_hypergraph::Signature`] applies to label multisets, lifted to
//! the whole query. The per-edge `Signature`s themselves are *not* stored
//! in the key: they are a pure function of the labels and edge lists, so
//! they cannot distinguish any queries the key does not already
//! distinguish — they are rebuilt (and interned) during planning on a
//! miss, and a hit touches only the label/edge comparison.
//!
//! Plans are valid for exactly one data hypergraph (Algorithm 3 orders by
//! the data's signature cardinalities and steps embed `SignatureId`s of its
//! interner), which is why the cache lives inside [`MatchServer`] — the
//! server owns one immutable data hypergraph for its whole lifetime.
//!
//! Eviction is least-recently-used over a bounded capacity; hits and misses
//! are observable through [`MatchServer::stats`].
//!
//! [`MatchServer`]: super::MatchServer
//! [`MatchServer::stats`]: super::MatchServer::stats

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hgmatch_hypergraph::fxhash::FxHashMap;
use hgmatch_hypergraph::{Hypergraph, Label};
use parking_lot::Mutex;

use crate::error::Result;
use crate::plan::{Plan, Planner};
use crate::query::QueryGraph;

/// Canonical cache key of a query hypergraph.
///
/// Two queries collide exactly when they have the same vertex labels and
/// the same (sorted) hyperedge vertex lists — i.e. when they are the *same*
/// labelled hypergraph, for which the planner provably produces the same
/// plan against a fixed data hypergraph. Isomorphic-but-relabelled queries
/// plan afresh: full canonical labelling would cost more than Algorithm 3
/// saves on the paper's ≤ 6-edge queries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    labels: Box<[Label]>,
    edges: Box<[Box<[u32]>]>,
}

impl PlanKey {
    fn new(query: &Hypergraph) -> Self {
        Self {
            labels: query.labels().into(),
            edges: query.iter_edges().map(|(_, vs)| Box::from(vs)).collect(),
        }
    }
}

#[derive(Debug)]
struct Entry {
    plan: Arc<Plan>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: FxHashMap<PlanKey, Entry>,
    tick: u64,
}

/// A bounded LRU cache of compiled plans, keyed by canonical query form.
#[derive(Debug)]
pub(crate) struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans (0 disables
    /// caching: every submission plans afresh).
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the plan for `query` against `data`, reusing a cached one
    /// when the canonical form matches. The boolean is `true` on a hit.
    pub(crate) fn plan_for(
        &self,
        query: &Hypergraph,
        data: &Hypergraph,
    ) -> Result<(Arc<Plan>, bool)> {
        if self.capacity == 0 {
            let q = QueryGraph::new(query)?;
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::new(Planner::plan(&q, data)?), false));
        }

        let key = PlanKey::new(query);
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(&key) {
                entry.last_used = tick;
                let plan = Arc::clone(&entry.plan);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((plan, true));
            }
        }

        // Plan outside the lock: Algorithm 3 is cheap but not free, and
        // submissions should not serialise behind each other's planning.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let q = QueryGraph::new(query)?;
        let plan = Arc::new(Planner::plan(&q, data)?);

        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity {
            // Evict the least-recently-used entry (linear scan: serving
            // caches are small, eviction is rare).
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
            }
        }
        // A racing submitter may have inserted the same key meanwhile;
        // keeping the existing entry preserves its recency.
        inner.map.entry(key).or_insert(Entry {
            plan: Arc::clone(&plan),
            last_used: tick,
        });
        Ok((plan, false))
    }

    /// Cache hits so far.
    pub(crate) fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far (planning happened).
    pub(crate) fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Plans currently cached.
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgmatch_hypergraph::HypergraphBuilder;

    fn tiny_data() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 1, 0, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![0, 1]).unwrap();
        b.add_edge(vec![2, 3]).unwrap();
        b.build().unwrap()
    }

    fn ab_query(extra: u32) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        b.add_vertex(Label::new(0));
        b.add_vertex(Label::new(extra));
        b.add_edge(vec![0, 1]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn hit_on_identical_query() {
        let data = tiny_data();
        let cache = PlanCache::new(4);
        let (p1, hit1) = cache.plan_for(&ab_query(1), &data).unwrap();
        let (p2, hit2) = cache.plan_for(&ab_query(1), &data).unwrap();
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn different_labels_miss() {
        let data = tiny_data();
        let cache = PlanCache::new(4);
        cache.plan_for(&ab_query(1), &data).unwrap();
        let (_, hit) = cache.plan_for(&ab_query(0), &data).unwrap();
        assert!(!hit);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_evicts_lru() {
        let data = tiny_data();
        let cache = PlanCache::new(2);
        let q1 = ab_query(1);
        let q2 = ab_query(0);
        cache.plan_for(&q1, &data).unwrap(); // {q1}
        cache.plan_for(&q2, &data).unwrap(); // {q1, q2}
        cache.plan_for(&q1, &data).unwrap(); // touch q1

        // A third shape evicts q2 (least recently used), not q1.
        let mut b = HypergraphBuilder::new();
        b.add_vertices(3, Label::new(0));
        b.add_edge(vec![0, 1, 2]).unwrap();
        let q3 = b.build().unwrap();
        cache.plan_for(&q3, &data).unwrap();
        assert_eq!(cache.len(), 2);

        let (_, hit1) = cache.plan_for(&q1, &data).unwrap();
        assert!(hit1, "recently-used entry must survive eviction");
        let (_, hit2) = cache.plan_for(&q2, &data).unwrap();
        assert!(!hit2, "LRU entry must have been evicted");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let data = tiny_data();
        let cache = PlanCache::new(0);
        cache.plan_for(&ab_query(1), &data).unwrap();
        let (_, hit) = cache.plan_for(&ab_query(1), &data).unwrap();
        assert!(!hit);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn planning_errors_propagate() {
        let data = tiny_data();
        let cache = PlanCache::new(4);
        let empty = HypergraphBuilder::new().build().unwrap();
        assert!(cache.plan_for(&empty, &data).is_err());
    }
}
