//! The plan cache: repeated query shapes skip Algorithm 3.
//!
//! A serving workload repeats query shapes constantly (the same template
//! with different parameters, the same dashboard query every few seconds),
//! so the server memoises compiled [`Plan`]s. The cache key is the query's
//! *canonical form*: its vertex-label vector plus its canonicalised
//! (sorted) hyperedge lists — the same canonicalisation
//! [`hgmatch_hypergraph::Signature`] applies to label multisets, lifted to
//! the whole query. The per-edge `Signature`s themselves are *not* stored
//! in the key: they are a pure function of the labels and edge lists, so
//! they cannot distinguish any queries the key does not already
//! distinguish — they are rebuilt (and interned) during planning on a
//! miss, and a hit touches only the label/edge comparison.
//!
//! Plans are valid for exactly one data hypergraph (the planner orders by
//! the data's signature cardinalities and steps embed `SignatureId`s of its
//! interner). Under dynamic updates the server publishes a new snapshot per
//! epoch ([`MatchServer::update_data`]), so every entry is tagged with the
//! epoch it is valid for: a key match whose epoch lags the current one is a
//! miss. [`PlanCache::revalidate`] decides, per published epoch, which
//! entries survive:
//!
//! * when partition ids shifted (`sids_stable == false`) nothing survives —
//!   cached plans embed `SignatureId`s that may now dangle;
//! * an entry whose query labels are disjoint from the update's touched
//!   labels saw no cardinality change: re-tagged to the new epoch;
//! * an entry whose labels *were* touched is checked for **stats drift**
//!   (DESIGN.md §13.4): each entry carries the per-signature cardinalities
//!   its plan was costed against, and as long as the relative change stays
//!   within the replan threshold ([`crate::ServeConfig::replan_drift`],
//!   env `HGMATCH_REPLAN_DRIFT`) the plan is still near-optimal and its
//!   partition ids are still valid, so it is re-tagged; past the threshold
//!   (including any signature appearing or going extinct — infinite drift)
//!   it is dropped and counted in `plans_replanned`, forcing a fresh
//!   cost-based plan on the shape's next submission.
//!
//! Eviction is least-recently-used over a bounded capacity; hits, misses,
//! invalidations and replans are observable through [`MatchServer::stats`].
//!
//! [`MatchServer::update_data`]: super::MatchServer::update_data
//!
//! [`MatchServer`]: super::MatchServer
//! [`MatchServer::stats`]: super::MatchServer::stats

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hgmatch_hypergraph::fxhash::FxHashMap;
use hgmatch_hypergraph::{Hypergraph, Label, Signature};
use parking_lot::Mutex;

use crate::error::Result;
use crate::plan::{Plan, Planner};
use crate::query::QueryGraph;

/// Canonical cache key of a query hypergraph.
///
/// Two queries collide exactly when they have the same vertex labels and
/// the same (sorted) hyperedge vertex lists — i.e. when they are the *same*
/// labelled hypergraph, for which the planner provably produces the same
/// plan against a fixed data hypergraph. Isomorphic-but-relabelled queries
/// plan afresh: full canonical labelling would cost more than Algorithm 3
/// saves on the paper's ≤ 6-edge queries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct PlanKey {
    labels: Box<[Label]>,
    edges: Box<[Box<[u32]>]>,
}

impl PlanKey {
    pub(crate) fn new(query: &Hypergraph) -> Self {
        Self {
            labels: query.labels().into(),
            edges: query.iter_edges().map(|(_, vs)| Box::from(vs)).collect(),
        }
    }
}

#[derive(Debug)]
struct Entry {
    plan: Arc<Plan>,
    last_used: u64,
    /// Data epoch this plan is valid for. A key match at a stale epoch is
    /// a miss (the entry is replaced by the re-planned result).
    epoch: u64,
    /// Stats fingerprint: the distinct query-edge signatures and the
    /// cardinality each had in the snapshot the plan was costed against.
    /// Drift is always measured against *plan time*, so it accumulates
    /// across label-touching epochs until the replan threshold trips.
    sig_cards: Box<[(Signature, u64)]>,
}

impl Entry {
    /// Maximum relative cardinality drift of this entry's signatures
    /// against `data`, with `f64::INFINITY` for a signature that appeared
    /// or went extinct since plan time (such a plan may be infeasible-
    /// compiled or embed a dangling partition id — never keep it).
    fn drift(&self, data: &Hypergraph) -> f64 {
        let mut worst = 0.0f64;
        for (sig, old) in self.sig_cards.iter() {
            let new = data.cardinality(sig) as u64;
            let drift = match (*old, new) {
                (0, 0) => 0.0,
                (0, _) | (_, 0) => f64::INFINITY,
                (old, new) => old.abs_diff(new) as f64 / old as f64,
            };
            worst = worst.max(drift);
        }
        worst
    }
}

/// The per-entry fingerprint: distinct signatures of the query's edges and
/// their cardinality in `data`, sorted for deterministic comparison.
fn fingerprint(query: &QueryGraph, data: &Hypergraph) -> Box<[(Signature, u64)]> {
    let mut sigs: Vec<&Signature> = (0..query.num_edges()).map(|e| query.signature(e)).collect();
    sigs.sort_unstable();
    sigs.dedup();
    sigs.into_iter()
        .map(|sig| (sig.clone(), data.cardinality(sig) as u64))
        .collect()
}

#[derive(Debug, Default)]
struct Inner {
    map: FxHashMap<PlanKey, Entry>,
    tick: u64,
}

/// A bounded LRU cache of compiled plans, keyed by canonical query form
/// and tagged with the data epoch each plan was compiled against.
#[derive(Debug)]
pub(crate) struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
    replanned: AtomicU64,
    corrections: AtomicU64,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans (0 disables
    /// caching: every submission plans afresh).
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            replanned: AtomicU64::new(0),
            corrections: AtomicU64::new(0),
        }
    }

    /// Returns the plan for `query` against `data` (the snapshot of
    /// `epoch`), reusing a cached one when the canonical form matches at
    /// the same epoch. The boolean is `true` on a hit.
    pub(crate) fn plan_for(
        &self,
        query: &Hypergraph,
        data: &Hypergraph,
        epoch: u64,
    ) -> Result<(Arc<Plan>, bool)> {
        if self.capacity == 0 {
            let q = QueryGraph::new(query)?;
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::new(Planner::plan(&q, data)?), false));
        }

        let key = PlanKey::new(query);
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(&key) {
                if entry.epoch == epoch {
                    entry.last_used = tick;
                    let plan = Arc::clone(&entry.plan);
                    drop(inner);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((plan, true));
                }
                // Stale epoch (e.g. inserted by a submission racing an
                // update): fall through to re-plan and overwrite.
            }
        }

        // Plan outside the lock: planning is cheap but not free, and
        // submissions should not serialise behind each other's planning.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let q = QueryGraph::new(query)?;
        let plan = Arc::new(Planner::plan(&q, data)?);
        let sig_cards = fingerprint(&q, data);

        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            // Evict the least-recently-used entry (linear scan: serving
            // caches are small, eviction is rare).
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
            }
        }
        let entry = inner.map.entry(key).or_insert_with(|| Entry {
            plan: Arc::clone(&plan),
            last_used: tick,
            epoch,
            sig_cards: sig_cards.clone(),
        });
        if entry.epoch < epoch {
            // Overwrite a stale entry in place; never downgrade a fresher
            // one a racing submitter installed meanwhile.
            *entry = Entry {
                plan: Arc::clone(&plan),
                last_used: tick,
                epoch,
                sig_cards,
            };
        }
        Ok((plan, false))
    }

    /// Writes a mid-query corrected plan (DESIGN.md §15) back to `key`'s
    /// entry, so repeated submissions of the shape start from the
    /// observation-corrected order instead of re-walking into the same
    /// misestimate. Overwrites only an entry still tagged with `epoch` —
    /// the epoch the correcting query was pinned to — never one a newer
    /// epoch has re-planned (its statistics supersede the observations),
    /// and never inserts: an evicted shape has no stats fingerprint to
    /// carry. Returns whether the correction landed.
    pub(crate) fn write_back(&self, key: &PlanKey, plan: Arc<Plan>, epoch: u64) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(key) {
            if entry.epoch == epoch {
                entry.plan = plan;
                entry.last_used = tick;
                drop(inner);
                self.corrections.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Reconciles the cache with a newly published data epoch (`data` is
    /// that epoch's snapshot). When `sids_stable` is false every entry is
    /// dropped. Otherwise entries whose query labels are disjoint from
    /// `touched_labels` re-tag to `epoch` unchanged (no cardinality they
    /// depend on moved); label-touched entries re-tag while their
    /// cardinality drift since *plan time* stays within `replan_drift`,
    /// and are dropped — counted in `plans_replanned` — once it exceeds it
    /// (so the next submission of the shape plans afresh against the new
    /// statistics).
    ///
    /// Only entries at the epoch being superseded (`epoch - 1`) are
    /// eligible to survive: an entry lagging further behind was inserted
    /// by a submission that raced an earlier update (planning happens
    /// outside the data lock) and never passed that update's invalidation,
    /// so its plan may embed re-numbered partition ids even though its
    /// labels are disjoint from *this* update's.
    pub(crate) fn revalidate(
        &self,
        epoch: u64,
        touched_labels: &[Label],
        sids_stable: bool,
        data: &Hypergraph,
        replan_drift: f64,
    ) {
        let mut inner = self.inner.lock();
        let before = inner.map.len();
        let mut replanned = 0u64;
        if sids_stable {
            inner.map.retain(|key, entry| {
                if entry.epoch + 1 != epoch {
                    return false; // skipped an epoch's sweep — see above
                }
                let touched = key.labels.iter().any(|l| touched_labels.contains(l));
                if touched && entry.drift(data) > replan_drift {
                    replanned += 1;
                    return false;
                }
                entry.epoch = epoch;
                true
            });
        } else {
            inner.map.clear();
        }
        let dropped = (before - inner.map.len()) as u64;
        drop(inner);
        // `plans_invalidated` counts every drop; `plans_replanned` the
        // drift-driven subset.
        self.invalidated.fetch_add(dropped, Ordering::Relaxed);
        self.replanned.fetch_add(replanned, Ordering::Relaxed);
    }

    /// Cache hits so far.
    pub(crate) fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far (planning happened).
    pub(crate) fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries dropped by [`PlanCache::revalidate`] so far.
    pub(crate) fn invalidated(&self) -> u64 {
        self.invalidated.load(Ordering::Relaxed)
    }

    /// Entries dropped because their stats drifted past the replan
    /// threshold (a subset of [`PlanCache::invalidated`]).
    pub(crate) fn replanned(&self) -> u64 {
        self.replanned.load(Ordering::Relaxed)
    }

    /// Corrected plans written back by adaptive queries
    /// ([`PlanCache::write_back`]) so far.
    pub(crate) fn corrections(&self) -> u64 {
        self.corrections.load(Ordering::Relaxed)
    }

    /// Plans currently cached.
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgmatch_hypergraph::HypergraphBuilder;

    fn tiny_data() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 1, 0, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![0, 1]).unwrap();
        b.add_edge(vec![2, 3]).unwrap();
        b.build().unwrap()
    }

    fn ab_query(extra: u32) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        b.add_vertex(Label::new(0));
        b.add_vertex(Label::new(extra));
        b.add_edge(vec![0, 1]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn hit_on_identical_query() {
        let data = tiny_data();
        let cache = PlanCache::new(4);
        let (p1, hit1) = cache.plan_for(&ab_query(1), &data, 0).unwrap();
        let (p2, hit2) = cache.plan_for(&ab_query(1), &data, 0).unwrap();
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn different_labels_miss() {
        let data = tiny_data();
        let cache = PlanCache::new(4);
        cache.plan_for(&ab_query(1), &data, 0).unwrap();
        let (_, hit) = cache.plan_for(&ab_query(0), &data, 0).unwrap();
        assert!(!hit);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_evicts_lru() {
        let data = tiny_data();
        let cache = PlanCache::new(2);
        let q1 = ab_query(1);
        let q2 = ab_query(0);
        cache.plan_for(&q1, &data, 0).unwrap(); // {q1}
        cache.plan_for(&q2, &data, 0).unwrap(); // {q1, q2}
        cache.plan_for(&q1, &data, 0).unwrap(); // touch q1

        // A third shape evicts q2 (least recently used), not q1.
        let mut b = HypergraphBuilder::new();
        b.add_vertices(3, Label::new(0));
        b.add_edge(vec![0, 1, 2]).unwrap();
        let q3 = b.build().unwrap();
        cache.plan_for(&q3, &data, 0).unwrap();
        assert_eq!(cache.len(), 2);

        let (_, hit1) = cache.plan_for(&q1, &data, 0).unwrap();
        assert!(hit1, "recently-used entry must survive eviction");
        let (_, hit2) = cache.plan_for(&q2, &data, 0).unwrap();
        assert!(!hit2, "LRU entry must have been evicted");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let data = tiny_data();
        let cache = PlanCache::new(0);
        cache.plan_for(&ab_query(1), &data, 0).unwrap();
        let (_, hit) = cache.plan_for(&ab_query(1), &data, 0).unwrap();
        assert!(!hit);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn planning_errors_propagate() {
        let data = tiny_data();
        let cache = PlanCache::new(4);
        let empty = HypergraphBuilder::new().build().unwrap();
        assert!(cache.plan_for(&empty, &data, 0).is_err());
    }

    #[test]
    fn stale_epoch_is_a_miss() {
        let data = tiny_data();
        let cache = PlanCache::new(4);
        cache.plan_for(&ab_query(1), &data, 0).unwrap();
        let (_, hit) = cache.plan_for(&ab_query(1), &data, 1).unwrap();
        assert!(!hit, "entry tagged epoch 0 must not serve epoch 1");
        // The entry was upgraded in place: epoch 1 now hits.
        let (_, hit) = cache.plan_for(&ab_query(1), &data, 1).unwrap();
        assert!(hit);
        assert_eq!(cache.len(), 1);
    }

    /// `tiny_data` with `extra` additional {A,B} edges (drifts the {0,1}
    /// signature's cardinality from 2 to `2 + extra`).
    fn drifted_data(extra: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 1, 0, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![0, 1]).unwrap();
        b.add_edge(vec![2, 3]).unwrap();
        for _ in 0..extra {
            let a = b.add_vertex(Label::new(0)).raw();
            let c = b.add_vertex(Label::new(1)).raw();
            b.add_edge(vec![a, c]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn revalidate_keeps_touched_entries_within_drift() {
        let data = tiny_data();
        let cache = PlanCache::new(8);
        cache.plan_for(&ab_query(1), &data, 0).unwrap(); // {0,1}: card 2
                                                         // Label 0 touched, but cardinality moved 2 → 3 (drift 0.5 ≤ 0.5):
                                                         // the plan stays near-optimal and is re-tagged, not re-planned.
        let drifted = drifted_data(1);
        cache.revalidate(1, &[Label::new(0)], true, &drifted, 0.5);
        assert_eq!(
            (cache.len(), cache.invalidated(), cache.replanned()),
            (1, 0, 0)
        );
        let (_, hit) = cache.plan_for(&ab_query(1), &drifted, 1).unwrap();
        assert!(hit, "below-threshold drift keeps the entry");
    }

    #[test]
    fn revalidate_replans_entries_past_drift_threshold() {
        let data = tiny_data();
        let cache = PlanCache::new(8);
        cache.plan_for(&ab_query(1), &data, 0).unwrap(); // {0,1}: card 2
        cache.plan_for(&ab_query(2), &data, 0).unwrap(); // labels {0,2}: card 0
                                                         // Cardinality 2 → 6 is drift 2.0 > 0.5: dropped and counted as a
                                                         // replan. The {0,2} entry's signature stayed at 0 (drift 0) but
                                                         // its labels were touched too — label 0 — so it is drift-checked
                                                         // and kept.
        let drifted = drifted_data(4);
        cache.revalidate(1, &[Label::new(0), Label::new(1)], true, &drifted, 0.5);
        assert_eq!(
            (cache.len(), cache.invalidated(), cache.replanned()),
            (1, 1, 1)
        );
        let (_, hit) = cache.plan_for(&ab_query(1), &drifted, 1).unwrap();
        assert!(!hit, "drifted entry was dropped");
        let (_, hit) = cache.plan_for(&ab_query(2), &drifted, 1).unwrap();
        assert!(hit, "undrifted entry survived");
    }

    #[test]
    fn signature_extinction_or_birth_is_infinite_drift() {
        let data = drifted_data(0);
        let cache = PlanCache::new(8);
        cache.plan_for(&ab_query(1), &data, 0).unwrap(); // {0,1}: card 2
                                                         // New data where the {0,1} signature is extinct: the plan may
                                                         // embed a dangling partition id, so even a huge threshold drops
                                                         // it.
        let mut b = HypergraphBuilder::new();
        b.add_vertices(2, Label::new(0));
        b.add_edge(vec![0, 1]).unwrap();
        let extinct = b.build().unwrap();
        cache.revalidate(1, &[Label::new(0), Label::new(1)], true, &extinct, 1e12);
        assert_eq!((cache.len(), cache.replanned()), (0, 1));
    }

    #[test]
    fn revalidate_drops_entries_that_skipped_an_epoch() {
        let data = tiny_data();
        let cache = PlanCache::new(8);
        // An entry a racing submitter inserted at epoch 0 *after* the
        // epoch-1 invalidation swept (so it never passed it)…
        cache.plan_for(&ab_query(1), &data, 0).unwrap();
        // …must not be promoted by a later label-disjoint update: it is
        // dropped even though no touched label matches.
        cache.revalidate(2, &[Label::new(9)], true, &data, 0.5);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.invalidated(), 1);
        assert_eq!(cache.replanned(), 0, "an epoch skip is not a replan");
        // The normal chain (entry at the superseded epoch) still carries.
        cache.plan_for(&ab_query(1), &data, 2).unwrap();
        cache.revalidate(3, &[Label::new(9)], true, &data, 0.5);
        let (_, hit) = cache.plan_for(&ab_query(1), &data, 3).unwrap();
        assert!(hit, "contiguous-epoch entry survives");
    }

    #[test]
    fn write_back_replaces_same_epoch_entry() {
        let data = tiny_data();
        let cache = PlanCache::new(4);
        let q = ab_query(1);
        let (original, _) = cache.plan_for(&q, &data, 0).unwrap();
        let corrected = Arc::new({
            let qg = QueryGraph::new(&q).unwrap();
            Planner::plan(&qg, &data).unwrap()
        });
        assert!(cache.write_back(&PlanKey::new(&q), Arc::clone(&corrected), 0));
        assert_eq!(cache.corrections(), 1);
        let (served, hit) = cache.plan_for(&q, &data, 0).unwrap();
        assert!(hit);
        assert!(
            Arc::ptr_eq(&served, &corrected) && !Arc::ptr_eq(&served, &original),
            "subsequent hits must serve the corrected plan"
        );
    }

    #[test]
    fn write_back_never_clobbers_newer_epochs_or_absent_shapes() {
        let data = tiny_data();
        let cache = PlanCache::new(4);
        let q = ab_query(1);
        cache.plan_for(&q, &data, 0).unwrap();
        // The entry moved on to epoch 1 (re-planned against fresher
        // statistics): a stale epoch-0 correction must not land.
        let (newer, _) = cache.plan_for(&q, &data, 1).unwrap();
        let stale = Arc::new({
            let qg = QueryGraph::new(&q).unwrap();
            Planner::plan(&qg, &data).unwrap()
        });
        assert!(!cache.write_back(&PlanKey::new(&q), Arc::clone(&stale), 0));
        let (served, hit) = cache.plan_for(&q, &data, 1).unwrap();
        assert!(hit && Arc::ptr_eq(&served, &newer));
        // Absent shapes and disabled caches are no-ops.
        assert!(!cache.write_back(&PlanKey::new(&ab_query(0)), Arc::clone(&stale), 1));
        assert!(!PlanCache::new(0).write_back(&PlanKey::new(&q), stale, 0));
        assert_eq!(cache.corrections(), 0);
    }

    #[test]
    fn stale_write_back_after_revalidate_never_resurrects() {
        let data = tiny_data();
        let cache = PlanCache::new(4);
        let q = ab_query(1);
        let (plan, _) = cache.plan_for(&q, &data, 0).unwrap();
        // The sweep dropped the entry (sids shifted): a correction pinned
        // to the swept epoch must not re-insert a plan that may embed
        // dangling partition ids.
        cache.revalidate(1, &[], false, &data, 0.5);
        assert!(!cache.write_back(&PlanKey::new(&q), plan, 0));
        assert_eq!((cache.len(), cache.corrections()), (0, 0));
    }

    /// Hammers `plan_for`, `write_back` and `revalidate` from racing
    /// threads over a capacity-2 cache, so corrections land while their
    /// entry is being evicted by other shapes and while the epoch moves
    /// under them. No interleaving may deadlock, lose a counter update,
    /// overgrow the capacity, or land a correction on a dead entry.
    #[test]
    fn write_back_races_eviction_and_epoch_bumps() {
        use std::sync::atomic::AtomicU64;

        let data = tiny_data();
        let cache = PlanCache::new(2);
        let epoch = AtomicU64::new(0);
        let plan_calls = AtomicU64::new(0);
        let landed = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let (cache, data, epoch) = (&cache, &data, &epoch);
                let (plan_calls, landed) = (&plan_calls, &landed);
                scope.spawn(move || {
                    let mut state = 0x9E3779B97F4A7C15u64.wrapping_mul(t + 1);
                    for _ in 0..300 {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let shape = ab_query(((state >> 33) % 5) as u32);
                        let e = epoch.load(Ordering::Relaxed);
                        let (plan, _hit) = cache.plan_for(&shape, data, e).unwrap();
                        plan_calls.fetch_add(1, Ordering::Relaxed);
                        if state & 1 == 0 && cache.write_back(&PlanKey::new(&shape), plan, e) {
                            landed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
            let (cache, data, epoch) = (&cache, &data, &epoch);
            scope.spawn(move || {
                for i in 0..60u64 {
                    let e = epoch.fetch_add(1, Ordering::Relaxed) + 1;
                    let touched = [Label::new((i % 5) as u32)];
                    cache.revalidate(e, &touched, i % 4 != 3, data, 0.5);
                    std::thread::yield_now();
                }
            });
        });
        assert!(cache.len() <= 2, "eviction must bound the cache");
        assert_eq!(
            cache.hits() + cache.misses(),
            plan_calls.load(Ordering::Relaxed),
            "every plan_for is exactly one hit or one miss"
        );
        assert_eq!(
            cache.corrections(),
            landed.load(Ordering::Relaxed),
            "corrections counts exactly the write_backs that landed"
        );
    }

    #[test]
    fn revalidate_clears_everything_when_sids_shift() {
        let data = tiny_data();
        let cache = PlanCache::new(8);
        cache.plan_for(&ab_query(1), &data, 0).unwrap();
        cache.plan_for(&ab_query(2), &data, 0).unwrap();
        cache.revalidate(1, &[], false, &data, 0.5);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.invalidated(), 2);
        assert_eq!(cache.replanned(), 0);
    }
}
