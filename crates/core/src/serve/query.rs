//! Per-query serving state: result sink, stop causes, completion slot.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Condvar, Mutex as StdMutex};
use std::time::Instant;

use parking_lot::Mutex;

use hgmatch_hypergraph::Hypergraph;

use crate::adaptive::AdaptiveState;
use crate::aggregate::{ci95_half_width, AggregateMode, AggregateSummary, SampleState, TopKState};
use crate::embedding::Embedding;
use crate::memory::MemoryTracker;
use crate::metrics::MatchMetrics;
use crate::plan::Plan;
use crate::sink::Sink;

use crate::engine::task::Task;

use super::cache::PlanKey;
use super::{QueryOptions, QueryOutcome, QueryStatus};
use std::sync::Arc;

/// Why a query stopped producing before exhausting the search space.
/// First cause wins; later signals are ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StopCause {
    /// `max_results` reached.
    Limit = 1,
    /// Wall-clock deadline passed.
    Timeout = 2,
    /// [`super::QueryHandle::cancel`] or server shutdown.
    Cancelled = 3,
}

const RUNNING: u8 = 0;

/// The server-side sink: counts always, aggregates embeddings per the
/// query's [`AggregateMode`], and flips to *satisfied* once `max_results`
/// is reached so workers stop expanding this query (not merely stop
/// recording results).
///
/// Mode dispatch (DESIGN.md §18.2):
/// * `Materialize` — bounded collection, results sorted and truncated to
///   the limit at take-out.
/// * `CountOnly` — nothing is ever allocated; counts ride the bulk
///   `add_count` path.
/// * `TopK`/`Sampled` — embeddings are offered to the shared bounded
///   accumulator; the exact count still comes from `add_count`.
#[derive(Debug)]
pub(crate) struct ServeSink {
    mode: AggregateMode,
    limit: Option<u64>,
    count: AtomicU64,
    results: Mutex<Vec<Embedding>>,
    topk: Option<TopKState>,
    sample: Option<SampleState>,
    satisfied: AtomicBool,
}

impl ServeSink {
    pub(crate) fn new(mode: AggregateMode, limit: Option<u64>) -> Self {
        let (topk, sample) = match mode {
            AggregateMode::TopK { k, score } => (Some(TopKState::new(k, score)), None),
            AggregateMode::Sampled { budget, seed } => (None, Some(SampleState::new(budget, seed))),
            _ => (None, None),
        };
        Self {
            mode,
            limit,
            count: AtomicU64::new(0),
            results: Mutex::new(Vec::new()),
            topk,
            sample,
            satisfied: AtomicBool::new(limit == Some(0)),
        }
    }

    /// Extracts the final `(count, embeddings, summary)` triple. Collected
    /// embeddings are sorted for determinism and truncated to the limit;
    /// the raw count is clamped to the limit as well (non-materialising
    /// limited queries may overshoot by up to one flush batch before the
    /// early-exit lands).
    pub(crate) fn take_output(&self) -> (u64, Option<Vec<Embedding>>, AggregateSummary) {
        let limit = self.limit.unwrap_or(u64::MAX);
        match self.mode {
            AggregateMode::Materialize => {
                let mut v = std::mem::take(&mut *self.results.lock());
                v.sort_unstable();
                v.truncate(limit.min(usize::MAX as u64) as usize);
                (v.len() as u64, Some(v), AggregateSummary::Materialized)
            }
            AggregateMode::CountOnly => (
                self.count.load(Ordering::Relaxed).min(limit),
                None,
                AggregateSummary::Count,
            ),
            AggregateMode::TopK { k, score } => {
                let (embs, scores) = self.topk.as_ref().expect("topk state").finish();
                (
                    self.count.load(Ordering::Relaxed).min(limit),
                    Some(embs),
                    AggregateSummary::TopK { k, score, scores },
                )
            }
            AggregateMode::Sampled { budget, seed } => {
                let embs = self.sample.as_ref().expect("sample state").finish();
                let sampled = embs.len() as u64;
                // The exact count can never be below the number of distinct
                // embeddings actually delivered to the sampler.
                let total = self.count.load(Ordering::Relaxed).min(limit).max(sampled);
                let fraction = if total == 0 {
                    1.0
                } else {
                    sampled as f64 / total as f64
                };
                (
                    total,
                    Some(embs),
                    AggregateSummary::Sampled {
                        budget,
                        seed,
                        sampled,
                        fraction,
                        ci95: ci95_half_width(sampled, total),
                    },
                )
            }
        }
    }
}

impl Sink for ServeSink {
    fn needs_embeddings(&self) -> bool {
        self.mode.needs_embeddings()
    }

    fn consume(&self, embedding: &[u32]) {
        match self.mode {
            AggregateMode::Materialize => {
                let limit = self.limit.unwrap_or(u64::MAX) as usize;
                let mut guard = self.results.lock();
                if guard.len() < limit {
                    guard.push(Embedding::new(embedding.to_vec()));
                }
                if guard.len() >= limit {
                    self.satisfied.store(true, Ordering::Release);
                }
            }
            AggregateMode::CountOnly => {}
            AggregateMode::TopK { .. } => self.topk.as_ref().expect("topk state").offer(embedding),
            AggregateMode::Sampled { .. } => {
                self.sample.as_ref().expect("sample state").offer(embedding)
            }
        }
    }

    fn add_count(&self, n: u64) {
        let total = self.count.fetch_add(n, Ordering::Relaxed) + n;
        // In every mode but Materialize the *count* is the limit signal
        // (materialising queries saturate on the collected length instead,
        // so the kept set is exactly the first `limit` delivered).
        if !matches!(self.mode, AggregateMode::Materialize) {
            if let Some(limit) = self.limit {
                if total >= limit {
                    self.satisfied.store(true, Ordering::Release);
                }
            }
        }
    }

    fn is_satisfied(&self) -> bool {
        self.satisfied.load(Ordering::Acquire)
    }
}

/// One admitted query: plan, sink, control flags and accounting, shared
/// between the submitter's [`super::QueryHandle`] and every task of the
/// query in flight.
#[derive(Debug)]
pub(crate) struct ActiveQuery {
    pub(crate) id: u64,
    /// The data snapshot this query is pinned to for its whole life:
    /// writers may publish newer epochs concurrently
    /// ([`super::MatchServer::update_data`]), but every task of this query
    /// executes against this one consistent view.
    pub(crate) data: Arc<Hypergraph>,
    /// Epoch of the pinned snapshot (reported on the outcome).
    pub(crate) data_epoch: u64,
    pub(crate) plan: Arc<Plan>,
    /// Mid-query re-optimization state (DESIGN.md §15); `None` when
    /// the replan ratio is 0 or the plan is trivial/infeasible. Re-plans
    /// run against this query's pinned snapshot, never a newer epoch.
    pub(crate) adaptive: Option<AdaptiveState>,
    /// Plan-cache key of this query's shape, kept (only for adaptive
    /// queries) so finalisation can write a corrected plan back.
    pub(crate) cache_key: Option<PlanKey>,
    pub(crate) sink: ServeSink,
    /// The root scan task, waiting for its first worker. Children bypass
    /// this slot and go straight to worker deques.
    pub(crate) seed: Mutex<Option<Task>>,
    /// Tasks queued or executing. The worker that decrements it to zero
    /// finalises the query.
    pub(crate) pending: AtomicU64,
    /// First stop cause ([`StopCause`] discriminant, 0 while running).
    stop_cause: AtomicU8,
    pub(crate) deadline: Option<Instant>,
    pub(crate) submitted: Instant,
    /// Nanoseconds between submission and the first worker picking up any
    /// of this query's tasks — the queue-wait share of the total latency
    /// (DESIGN.md §8). `u64::MAX` until the first pickup records it; a
    /// query finalised without ever reaching a worker keeps the sentinel
    /// and its whole latency is accounted as queue wait.
    pub(crate) queue_ns: AtomicU64,
    pub(crate) tracker: MemoryTracker,
    pub(crate) metrics: Mutex<MatchMetrics>,
    pub(crate) plan_cached: bool,
    /// Completion slot: the finalising worker stores the outcome and
    /// notifies; [`super::QueryHandle::wait`] takes it.
    outcome: StdMutex<Option<QueryOutcome>>,
    finished: AtomicBool,
    done_cv: Condvar,
}

impl ActiveQuery {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: u64,
        data: Arc<Hypergraph>,
        data_epoch: u64,
        plan: Arc<Plan>,
        options: &QueryOptions,
        mode: AggregateMode,
        plan_cached: bool,
        deadline: Option<Instant>,
        adaptive: Option<AdaptiveState>,
        cache_key: Option<PlanKey>,
    ) -> Self {
        Self {
            id,
            data,
            data_epoch,
            plan,
            adaptive,
            cache_key,
            sink: ServeSink::new(mode, options.max_results),
            seed: Mutex::new(None),
            pending: AtomicU64::new(0),
            stop_cause: AtomicU8::new(RUNNING),
            deadline,
            submitted: Instant::now(),
            queue_ns: AtomicU64::new(u64::MAX),
            tracker: MemoryTracker::new(),
            metrics: Mutex::new(MatchMetrics::default()),
            plan_cached,
            outcome: StdMutex::new(None),
            finished: AtomicBool::new(false),
            done_cv: Condvar::new(),
        }
    }

    /// Records the submission-to-first-pickup latency once: the first
    /// worker to execute any task of this query stamps it; later calls are
    /// no-ops. Cheap enough to call per task (one relaxed load on the hot
    /// path after the stamp lands).
    #[inline]
    pub(crate) fn mark_picked_up(&self) {
        if self.queue_ns.load(Ordering::Relaxed) == u64::MAX {
            let waited = self.submitted.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            let _ = self.queue_ns.compare_exchange(
                u64::MAX,
                waited,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
    }

    /// Splits the total submit-to-finish latency into queue wait (before
    /// the first worker pickup) and execution (everything after). A query
    /// that never reached a worker — admission resolved it inline, or it
    /// was cancelled while still queued — is all queue wait.
    pub(crate) fn latency_split(
        &self,
        elapsed: std::time::Duration,
    ) -> (std::time::Duration, std::time::Duration) {
        let total = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        let queued = self.queue_ns.load(Ordering::Relaxed).min(total);
        (
            std::time::Duration::from_nanos(queued),
            std::time::Duration::from_nanos(total - queued),
        )
    }

    /// Raises `cause` if no earlier cause was raised; the first wins.
    pub(crate) fn stop(&self, cause: StopCause) {
        let _ = self.stop_cause.compare_exchange(
            RUNNING,
            cause as u8,
            Ordering::AcqRel,
            Ordering::Relaxed,
        );
    }

    /// Whether a stop was requested (workers drop this query's tasks).
    #[inline]
    pub(crate) fn stopped(&self) -> bool {
        self.stop_cause.load(Ordering::Relaxed) != RUNNING
    }

    pub(crate) fn stop_cause(&self) -> Option<StopCause> {
        match self.stop_cause.load(Ordering::Acquire) {
            1 => Some(StopCause::Limit),
            2 => Some(StopCause::Timeout),
            3 => Some(StopCause::Cancelled),
            _ => None,
        }
    }

    /// Resolves the final status from the stop cause and sink state.
    pub(crate) fn status(&self) -> QueryStatus {
        match self.stop_cause() {
            Some(StopCause::Timeout) => QueryStatus::TimedOut,
            Some(StopCause::Cancelled) => QueryStatus::Cancelled,
            Some(StopCause::Limit) => QueryStatus::LimitReached,
            None if self.sink.is_satisfied() => QueryStatus::LimitReached,
            None => QueryStatus::Completed,
        }
    }

    /// Stores the outcome and wakes waiters. Called exactly once, by
    /// whichever worker (or the submitter, for trivially-empty queries)
    /// retires the query's last pending task.
    pub(crate) fn complete(&self, outcome: QueryOutcome) {
        let mut slot = self.outcome.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(outcome);
        self.finished.store(true, Ordering::Release);
        self.done_cv.notify_all();
    }

    /// Whether the outcome is ready (non-blocking).
    pub(crate) fn is_finished(&self) -> bool {
        self.finished.load(Ordering::Acquire)
    }

    /// Blocks until the outcome is ready and takes it.
    pub(crate) fn wait_outcome(&self) -> QueryOutcome {
        let mut slot = self.outcome.lock().unwrap_or_else(|e| e.into_inner());
        while slot.is_none() {
            slot = self.done_cv.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
        slot.take().expect("outcome present")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::ScoreFn;

    #[test]
    fn sink_counts_and_limits() {
        let s = ServeSink::new(AggregateMode::CountOnly, Some(5));
        assert!(!s.is_satisfied());
        s.add_count(3);
        assert!(!s.is_satisfied());
        s.add_count(4);
        assert!(s.is_satisfied(), "count limit flips satisfaction");
        let (count, emb, summary) = s.take_output();
        assert_eq!(count, 5, "overshoot is clamped to the limit");
        assert!(emb.is_none());
        assert_eq!(summary, AggregateSummary::Count);
    }

    #[test]
    fn sink_collects_up_to_limit() {
        let s = ServeSink::new(AggregateMode::Materialize, Some(2));
        s.consume(&[3]);
        assert!(!s.is_satisfied());
        s.consume(&[1]);
        assert!(s.is_satisfied());
        s.consume(&[2]); // ignored: already full
        s.add_count(3);
        let (count, emb, summary) = s.take_output();
        assert_eq!(count, 2);
        let emb = emb.unwrap();
        assert_eq!(emb.len(), 2);
        assert!(emb[0] <= emb[1], "results are sorted");
        assert_eq!(summary, AggregateSummary::Materialized);
    }

    #[test]
    fn zero_limit_is_immediately_satisfied() {
        assert!(ServeSink::new(AggregateMode::Materialize, Some(0)).is_satisfied());
        assert!(ServeSink::new(AggregateMode::CountOnly, Some(0)).is_satisfied());
    }

    #[test]
    fn unlimited_sink_never_satisfies() {
        let s = ServeSink::new(AggregateMode::CountOnly, None);
        s.add_count(1_000_000);
        assert!(!s.is_satisfied());
        assert_eq!(s.take_output().0, 1_000_000);
    }

    #[test]
    fn topk_sink_keeps_best_and_counts_exactly() {
        let mode = AggregateMode::TopK {
            k: 2,
            score: ScoreFn::EdgeIdSum,
        };
        let s = ServeSink::new(mode, None);
        assert!(s.needs_embeddings());
        for e in [[1u32, 1], [9, 9], [4, 4], [7, 7]] {
            s.consume(&e);
            s.add_count(1);
        }
        let (count, emb, summary) = s.take_output();
        assert_eq!(count, 4, "count stays exact, not clamped to k");
        assert_eq!(
            emb.unwrap(),
            vec![Embedding::new(vec![9, 9]), Embedding::new(vec![7, 7])]
        );
        match summary {
            AggregateSummary::TopK { k, scores, .. } => {
                assert_eq!(k, 2);
                assert_eq!(scores, vec![18, 14]);
            }
            other => panic!("unexpected summary {other:?}"),
        }
    }

    #[test]
    fn sampled_sink_reports_fraction_and_ci() {
        let mode = AggregateMode::Sampled { budget: 8, seed: 1 };
        let s = ServeSink::new(mode, None);
        for i in 0..100u32 {
            s.consume(&[i]);
            s.add_count(1);
        }
        let (count, emb, summary) = s.take_output();
        assert_eq!(count, 100);
        assert_eq!(emb.unwrap().len(), 8);
        match summary {
            AggregateSummary::Sampled {
                sampled,
                fraction,
                ci95,
                ..
            } => {
                assert_eq!(sampled, 8);
                assert!((fraction - 0.08).abs() < 1e-9);
                assert!(ci95 > 0.0);
            }
            other => panic!("unexpected summary {other:?}"),
        }
    }

    #[test]
    fn first_stop_cause_wins() {
        let (data, plan) = dummy_plan();
        let q = ActiveQuery::new(
            7,
            data,
            0,
            plan,
            &QueryOptions::default(),
            AggregateMode::CountOnly,
            false,
            None,
            None,
            None,
        );
        assert_eq!(q.stop_cause(), None);
        assert!(!q.stopped());
        q.stop(StopCause::Timeout);
        q.stop(StopCause::Cancelled);
        assert_eq!(q.stop_cause(), Some(StopCause::Timeout));
        assert_eq!(q.status(), QueryStatus::TimedOut);
        assert!(q.stopped());
    }

    fn dummy_plan() -> (Arc<Hypergraph>, Arc<Plan>) {
        use crate::plan::Planner;
        use crate::query::QueryGraph;
        use hgmatch_hypergraph::{HypergraphBuilder, Label};
        let mut b = HypergraphBuilder::new();
        b.add_vertices(2, Label::new(0));
        b.add_edge(vec![0, 1]).unwrap();
        let h = b.build().unwrap();
        let q = QueryGraph::new(&h).unwrap();
        let plan = Arc::new(Planner::plan(&q, &h).unwrap());
        (Arc::new(h), plan)
    }
}
