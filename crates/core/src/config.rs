//! Execution configuration.

use std::time::Duration;

use crate::aggregate::AggregateMode;

/// Configuration shared by all executors.
#[derive(Debug, Clone)]
pub struct MatchConfig {
    /// Worker threads for the parallel engine (the sequential executor
    /// ignores this). Must be ≥ 1.
    pub threads: usize,
    /// Wall-clock budget; execution aborts (reporting `timed_out`) when
    /// exceeded. `None` = unbounded.
    pub timeout: Option<Duration>,
    /// Extra pruning beyond the paper's Algorithm 4: subtract hyperedges
    /// incident to `V_n_incdt` from the candidate set instead of leaving
    /// them to validation (Observation V.3 applied eagerly). Off by default
    /// to match the paper; the ablation bench measures its effect.
    pub prune_non_incident: bool,
    /// Dynamic work stealing (paper §VI-C). Disabling it reproduces the
    /// `HGMatch-NOSTL` baseline of Fig. 12.
    pub work_stealing: bool,
    /// Rows per SCAN chunk: the scan range splits until chunks are at most
    /// this long, bounding task granularity.
    pub scan_chunk: usize,
    /// Candidate-list length at which an EXPAND step becomes *splittable*
    /// (DESIGN.md §12): instead of validating the whole list serially, the
    /// executing worker publishes assist tickets so idle peers can claim
    /// disjoint chunks of the same in-flight candidate range. `0` disables
    /// mid-flight splitting; splits are also suppressed when `threads` is 1
    /// (nobody could assist, and single-worker delivery order stays exactly
    /// the sequential executor's). Overridable via `HGMATCH_SPLIT_THRESHOLD`.
    pub split_threshold: usize,
    /// Candidate rows per assist claim (the granularity of the shared
    /// atomic claim index). Overridable via `HGMATCH_SPLIT_CHUNK`.
    pub split_chunk: usize,
    /// Mid-query re-plan trigger (DESIGN.md §15): when the observed
    /// candidate count at a plan position exceeds this factor times the
    /// planner's estimate, the unmatched suffix is re-ordered with
    /// observed cardinalities folded in. `0` disables adaptive
    /// re-optimization entirely (no feedback state is allocated).
    /// Overridable via `HGMATCH_REPLAN_RATIO`.
    pub replan_ratio: f64,
    /// How results are aggregated (DESIGN.md §18.2). `Materialize`
    /// preserves the pre-aggregation behaviour; the sink-construction
    /// helpers ([`crate::Matcher::aggregate`], the serve layer's
    /// per-query options) consult this as the default mode.
    pub aggregate: AggregateMode,
}

/// Reads a `usize` environment override once per process (the CI stress
/// matrix sets these before any config is built; later mutations are
/// intentionally ignored so hot paths see a stable value).
fn env_usize(cache: &'static std::sync::OnceLock<Option<usize>>, name: &str) -> Option<usize> {
    *cache.get_or_init(|| std::env::var(name).ok().and_then(|v| v.parse().ok()))
}

/// Default candidate-list length that makes an expansion splittable.
pub(crate) fn default_split_threshold() -> usize {
    static CACHE: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    env_usize(&CACHE, "HGMATCH_SPLIT_THRESHOLD").unwrap_or(2048)
}

/// Default candidate rows per assist claim.
pub(crate) fn default_split_chunk() -> usize {
    static CACHE: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    env_usize(&CACHE, "HGMATCH_SPLIT_CHUNK")
        .unwrap_or(256)
        .max(1)
}

/// Relative cardinality drift past which the serving layer drops a cached
/// plan and re-plans the query shape on its next submission (DESIGN.md
/// §13.4). Overridable via `HGMATCH_REPLAN_DRIFT`; negative values clamp
/// to 0 (re-plan on any change).
pub(crate) fn default_replan_drift() -> f64 {
    static CACHE: std::sync::OnceLock<Option<f64>> = std::sync::OnceLock::new();
    let parsed = *CACHE.get_or_init(|| {
        std::env::var("HGMATCH_REPLAN_DRIFT")
            .ok()
            .and_then(|v| v.parse().ok())
    });
    parsed.unwrap_or(0.5).max(0.0)
}

/// Observed/estimated candidate-count ratio past which the engine
/// re-plans the unmatched suffix of an in-flight query (DESIGN.md §15).
/// `0` (or negative, which clamps to 0) disables mid-query
/// re-optimization. The default of 8 sits well past the planner's 2×
/// confidence margin: a blow-up the trigger fires on is a genuine
/// misestimate, not model noise. Overridable via `HGMATCH_REPLAN_RATIO`
/// (the CI adaptive-stress job pins a tiny ratio to force a switch at
/// every boundary).
pub(crate) fn default_replan_ratio() -> f64 {
    static CACHE: std::sync::OnceLock<Option<f64>> = std::sync::OnceLock::new();
    let parsed = *CACHE.get_or_init(|| {
        std::env::var("HGMATCH_REPLAN_RATIO")
            .ok()
            .and_then(|v| v.parse().ok())
    });
    parsed.unwrap_or(8.0).max(0.0)
}

/// Confidence margin of the cost-based planner: the searched order
/// replaces the greedy Algorithm 3 order only when its estimated cost is
/// at least this factor cheaper (DESIGN.md §13.3). Near-tie estimates are
/// statistically indistinguishable — label-level summaries cannot separate
/// them — so the planner stays with the paper's baseline there instead of
/// flipping on noise. The default of 2 reflects that per-step selectivity
/// estimates multiply across joins, so small predicted wins are within
/// the model's error bars while real planning mistakes (hub fan-outs)
/// show up as several-fold predicted gaps. Overridable via
/// `HGMATCH_PLAN_MARGIN`; values below 1 clamp to 1 (always trust the
/// search).
pub(crate) fn default_plan_margin() -> f64 {
    static CACHE: std::sync::OnceLock<Option<f64>> = std::sync::OnceLock::new();
    let parsed = *CACHE.get_or_init(|| {
        std::env::var("HGMATCH_PLAN_MARGIN")
            .ok()
            .and_then(|v| v.parse().ok())
    });
    parsed.unwrap_or(2.0).max(1.0)
}

/// Beam width of the cost-based order search for queries above the
/// exhaustive bound (DESIGN.md §13). Overridable via `HGMATCH_PLAN_BEAM`
/// (the CI plan-stress job pins a tiny width).
pub(crate) fn default_plan_beam() -> usize {
    static CACHE: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    env_usize(&CACHE, "HGMATCH_PLAN_BEAM").unwrap_or(8).max(1)
}

/// Largest query-edge count the order search enumerates exhaustively with
/// branch-and-bound; larger queries fall back to beam search. Overridable
/// via `HGMATCH_PLAN_EXHAUSTIVE` (`0` forces beam search for every size,
/// which is how CI stresses the beam path on small queries).
pub(crate) fn default_plan_exhaustive() -> usize {
    static CACHE: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    env_usize(&CACHE, "HGMATCH_PLAN_EXHAUSTIVE").unwrap_or(8)
}

impl Default for MatchConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            timeout: None,
            prune_non_incident: false,
            work_stealing: true,
            scan_chunk: 256,
            split_threshold: default_split_threshold(),
            split_chunk: default_split_chunk(),
            replan_ratio: default_replan_ratio(),
            aggregate: AggregateMode::Materialize,
        }
    }
}

impl MatchConfig {
    /// Single-threaded config.
    pub fn sequential() -> Self {
        Self::default()
    }

    /// Parallel config with `threads` workers.
    pub fn parallel(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            ..Self::default()
        }
    }

    /// Sets the timeout, builder style.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Toggles work stealing, builder style.
    pub fn with_work_stealing(mut self, enabled: bool) -> Self {
        self.work_stealing = enabled;
        self
    }

    /// Toggles eager non-incidence pruning, builder style.
    pub fn with_prune_non_incident(mut self, enabled: bool) -> Self {
        self.prune_non_incident = enabled;
        self
    }

    /// Sets the splittable-expansion threshold (0 disables mid-flight
    /// splitting), builder style.
    pub fn with_split_threshold(mut self, threshold: usize) -> Self {
        self.split_threshold = threshold;
        self
    }

    /// Sets the assist claim granularity, builder style.
    pub fn with_split_chunk(mut self, chunk: usize) -> Self {
        self.split_chunk = chunk.max(1);
        self
    }

    /// Sets the mid-query re-plan trigger ratio (0 disables adaptive
    /// re-optimization), builder style.
    pub fn with_replan_ratio(mut self, ratio: f64) -> Self {
        self.replan_ratio = ratio.max(0.0);
        self
    }

    /// Sets the default aggregation mode, builder style.
    pub fn with_aggregate(mut self, mode: AggregateMode) -> Self {
        self.aggregate = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = MatchConfig::default();
        assert_eq!(c.threads, 1);
        assert!(c.timeout.is_none());
        assert!(!c.prune_non_incident);
        assert!(c.work_stealing);
        assert!(c.scan_chunk > 0);
        assert!(c.split_chunk > 0);
        assert_eq!(c.aggregate, AggregateMode::Materialize);
    }

    #[test]
    fn builders() {
        let c = MatchConfig::parallel(8)
            .with_timeout(Duration::from_secs(5))
            .with_work_stealing(false)
            .with_prune_non_incident(true);
        assert_eq!(c.threads, 8);
        assert_eq!(c.timeout, Some(Duration::from_secs(5)));
        assert!(!c.work_stealing);
        assert!(c.prune_non_incident);
        // Zero threads clamps to one.
        assert_eq!(MatchConfig::parallel(0).threads, 1);
        let c = MatchConfig::default()
            .with_split_threshold(16)
            .with_split_chunk(0);
        assert_eq!(c.split_threshold, 16);
        // Zero chunk clamps to one (a zero fetch_add would never drain).
        assert_eq!(c.split_chunk, 1);
        // Negative ratios clamp to 0 (= adaptive re-optimization off).
        let c = MatchConfig::default().with_replan_ratio(-1.0);
        assert_eq!(c.replan_ratio, 0.0);
        let c = MatchConfig::default().with_replan_ratio(0.5);
        assert_eq!(c.replan_ratio, 0.5);
    }
}
