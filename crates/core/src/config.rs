//! Execution configuration.

use std::time::Duration;

/// Configuration shared by all executors.
#[derive(Debug, Clone)]
pub struct MatchConfig {
    /// Worker threads for the parallel engine (the sequential executor
    /// ignores this). Must be ≥ 1.
    pub threads: usize,
    /// Wall-clock budget; execution aborts (reporting `timed_out`) when
    /// exceeded. `None` = unbounded.
    pub timeout: Option<Duration>,
    /// Extra pruning beyond the paper's Algorithm 4: subtract hyperedges
    /// incident to `V_n_incdt` from the candidate set instead of leaving
    /// them to validation (Observation V.3 applied eagerly). Off by default
    /// to match the paper; the ablation bench measures its effect.
    pub prune_non_incident: bool,
    /// Dynamic work stealing (paper §VI-C). Disabling it reproduces the
    /// `HGMatch-NOSTL` baseline of Fig. 12.
    pub work_stealing: bool,
    /// Rows per SCAN chunk: the scan range splits until chunks are at most
    /// this long, bounding task granularity.
    pub scan_chunk: usize,
    /// Candidate-list length at which an EXPAND step becomes *splittable*
    /// (DESIGN.md §12): instead of validating the whole list serially, the
    /// executing worker publishes assist tickets so idle peers can claim
    /// disjoint chunks of the same in-flight candidate range. `0` disables
    /// mid-flight splitting; splits are also suppressed when `threads` is 1
    /// (nobody could assist, and single-worker delivery order stays exactly
    /// the sequential executor's). Overridable via `HGMATCH_SPLIT_THRESHOLD`.
    pub split_threshold: usize,
    /// Candidate rows per assist claim (the granularity of the shared
    /// atomic claim index). Overridable via `HGMATCH_SPLIT_CHUNK`.
    pub split_chunk: usize,
}

/// Reads a `usize` environment override once per process (the CI stress
/// matrix sets these before any config is built; later mutations are
/// intentionally ignored so hot paths see a stable value).
fn env_usize(cache: &'static std::sync::OnceLock<Option<usize>>, name: &str) -> Option<usize> {
    *cache.get_or_init(|| std::env::var(name).ok().and_then(|v| v.parse().ok()))
}

/// Default candidate-list length that makes an expansion splittable.
pub(crate) fn default_split_threshold() -> usize {
    static CACHE: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    env_usize(&CACHE, "HGMATCH_SPLIT_THRESHOLD").unwrap_or(2048)
}

/// Default candidate rows per assist claim.
pub(crate) fn default_split_chunk() -> usize {
    static CACHE: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    env_usize(&CACHE, "HGMATCH_SPLIT_CHUNK")
        .unwrap_or(256)
        .max(1)
}

impl Default for MatchConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            timeout: None,
            prune_non_incident: false,
            work_stealing: true,
            scan_chunk: 256,
            split_threshold: default_split_threshold(),
            split_chunk: default_split_chunk(),
        }
    }
}

impl MatchConfig {
    /// Single-threaded config.
    pub fn sequential() -> Self {
        Self::default()
    }

    /// Parallel config with `threads` workers.
    pub fn parallel(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            ..Self::default()
        }
    }

    /// Sets the timeout, builder style.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Toggles work stealing, builder style.
    pub fn with_work_stealing(mut self, enabled: bool) -> Self {
        self.work_stealing = enabled;
        self
    }

    /// Toggles eager non-incidence pruning, builder style.
    pub fn with_prune_non_incident(mut self, enabled: bool) -> Self {
        self.prune_non_incident = enabled;
        self
    }

    /// Sets the splittable-expansion threshold (0 disables mid-flight
    /// splitting), builder style.
    pub fn with_split_threshold(mut self, threshold: usize) -> Self {
        self.split_threshold = threshold;
        self
    }

    /// Sets the assist claim granularity, builder style.
    pub fn with_split_chunk(mut self, chunk: usize) -> Self {
        self.split_chunk = chunk.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = MatchConfig::default();
        assert_eq!(c.threads, 1);
        assert!(c.timeout.is_none());
        assert!(!c.prune_non_incident);
        assert!(c.work_stealing);
        assert!(c.scan_chunk > 0);
        assert!(c.split_chunk > 0);
    }

    #[test]
    fn builders() {
        let c = MatchConfig::parallel(8)
            .with_timeout(Duration::from_secs(5))
            .with_work_stealing(false)
            .with_prune_non_incident(true);
        assert_eq!(c.threads, 8);
        assert_eq!(c.timeout, Some(Duration::from_secs(5)));
        assert!(!c.work_stealing);
        assert!(c.prune_non_incident);
        // Zero threads clamps to one.
        assert_eq!(MatchConfig::parallel(0).threads, 1);
        let c = MatchConfig::default()
            .with_split_threshold(16)
            .with_split_chunk(0);
        assert_eq!(c.split_threshold, 16);
        // Zero chunk clamps to one (a zero fetch_add would never drain).
        assert_eq!(c.split_chunk, 1);
    }
}
