//! Delta-aware matching: re-answer a query after a batch of hyperedge
//! updates by exploring only the *touched* candidate space.
//!
//! After a writer publishes a new epoch (two [`Hypergraph`] snapshots, see
//! [`hgmatch_hypergraph::DynamicHypergraph`]), the embeddings of a standing
//! query change in exactly two ways:
//!
//! * **gained** — embeddings of the new snapshot using at least one
//!   *inserted* hyperedge;
//! * **lost** — embeddings of the old snapshot using at least one
//!   *deleted* hyperedge.
//!
//! Everything else survives verbatim (an embedding touching no delta edge
//! is valid in one snapshot iff it is valid in the other: vertices are
//! never removed and its matched hyperedges exist in both). [`delta_match`]
//! therefore never re-runs the full query: for each matching-order position
//! `j` it enumerates embeddings whose step-`j` candidate is *pinned to the
//! delta set* — candidates at earlier positions exclude delta edges,
//! position `j` keeps only delta edges, later positions are unrestricted.
//! Summed over `j`, every delta-involving embedding is produced exactly
//! once (partitioned by its first delta position), and the scan/expansion
//! work collapses to the candidate lists that intersect the (typically
//! tiny) batch.
//!
//! Queries whose vertex labels are disjoint from the labels of every batch
//! edge are *unaffected* and skip enumeration entirely — the same label
//! test the serving layer's plan cache uses for invalidation.

use hgmatch_hypergraph::fxhash::FxHashSet;
use hgmatch_hypergraph::{Hypergraph, Label};

use crate::candidates::{generate_candidates, ExpansionState};
use crate::config::MatchConfig;
use crate::embedding::Embedding;
use crate::error::Result;
use crate::plan::{Plan, Planner};
use crate::query::QueryGraph;
use crate::validate::{validate_candidate, ValidateScratch, Validation};

/// A net batch of hyperedge updates between two snapshots, as sorted
/// vertex sets (vertex ids are stable across snapshots; edge ids are not).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaBatch {
    /// Hyperedges present in the new snapshot but not the old.
    pub inserted: Vec<Vec<u32>>,
    /// Hyperedges present in the old snapshot but not the new.
    pub deleted: Vec<Vec<u32>>,
}

impl DeltaBatch {
    /// Computes the net batch between two snapshots by edge-set diffing.
    /// Robust against any update interleaving (insert+delete of the same
    /// edge nets out).
    pub fn between(old: &Hypergraph, new: &Hypergraph) -> Self {
        let diff = |from: &Hypergraph, against: &Hypergraph| {
            from.iter_edges()
                .filter(|(_, vs)| against.find_edge(vs).is_none())
                .map(|(_, vs)| vs.to_vec())
                .collect()
        };
        Self {
            inserted: diff(new, old),
            deleted: diff(old, new),
        }
    }

    /// Whether the batch changes nothing.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty()
    }

    /// The labels carried by any vertex of any batch edge (sorted,
    /// deduplicated). Vertex labels are immutable, so either snapshot
    /// resolves them; `graph` must contain every batch vertex.
    pub fn touched_labels(&self, graph: &Hypergraph) -> Vec<Label> {
        let mut labels: Vec<Label> = self
            .inserted
            .iter()
            .chain(&self.deleted)
            .flatten()
            .map(|&v| graph.labels()[v as usize])
            .collect();
        labels.sort_unstable();
        labels.dedup();
        labels
    }
}

/// The embedding delta of one query across one batch.
#[derive(Debug, Clone, Default)]
pub struct DeltaOutcome {
    /// Embeddings gained (edge ids of the *new* snapshot), sorted.
    pub gained: Vec<Embedding>,
    /// Embeddings lost (edge ids of the *old* snapshot), sorted.
    pub lost: Vec<Embedding>,
    /// `false` when the query's labels were disjoint from the batch and
    /// enumeration was skipped (both vectors empty by construction).
    pub affected: bool,
}

impl DeltaOutcome {
    /// Patches a full result set of the old snapshot into the full result
    /// set of the new snapshot: surviving embeddings are re-numbered into
    /// the new snapshot's edge ids, lost ones drop out, gained ones join.
    /// The output is sorted — `patch(old results) == fresh run on new`.
    pub fn patch(
        &self,
        old: &Hypergraph,
        new: &Hypergraph,
        old_results: &[Embedding],
    ) -> Vec<Embedding> {
        let mut out: Vec<Embedding> = old_results
            .iter()
            .filter_map(|m| {
                m.iter()
                    .map(|e| new.find_edge(old.edge_vertices(e)).map(|id| id.raw()))
                    .collect::<Option<Vec<u32>>>()
                    .map(Embedding::new)
            })
            .collect();
        out.extend(self.gained.iter().cloned());
        out.sort_unstable();
        out
    }
}

/// Computes the embedding delta of `query` across `batch`, enumerating
/// only delta-anchored candidate spaces (see the module docs).
///
/// # Errors
/// Fails for queries the planner rejects (empty, or over the engine's
/// 64-hyperedge limit).
pub fn delta_match(
    old: &Hypergraph,
    new: &Hypergraph,
    query: &Hypergraph,
    batch: &DeltaBatch,
) -> Result<DeltaOutcome> {
    let q = QueryGraph::new(query)?;
    let query_labels: FxHashSet<Label> = query.labels().iter().copied().collect();
    let affected = batch
        .inserted
        .iter()
        .map(|vs| (vs, new))
        .chain(batch.deleted.iter().map(|vs| (vs, old)))
        .any(|(vs, g)| {
            vs.iter()
                .any(|&v| query_labels.contains(&g.labels()[v as usize]))
        });
    if !affected {
        return Ok(DeltaOutcome::default());
    }
    let gained = anchored_embeddings(new, &q, &batch.inserted)?;
    let lost = anchored_embeddings(old, &q, &batch.deleted)?;
    Ok(DeltaOutcome {
        gained,
        lost,
        affected: true,
    })
}

/// Enumerates the embeddings of `data` that use at least one edge of
/// `delta`, each exactly once, by pinning one matching-order position at a
/// time to the delta set.
fn anchored_embeddings(
    data: &Hypergraph,
    query: &QueryGraph,
    delta: &[Vec<u32>],
) -> Result<Vec<Embedding>> {
    let delta_gids: FxHashSet<u32> = delta
        .iter()
        .filter_map(|vs| data.find_edge(vs).map(|id| id.raw()))
        .collect();
    if delta_gids.is_empty() {
        return Ok(Vec::new());
    }
    let plan = Planner::plan(query, data)?;
    if plan.is_infeasible() {
        return Ok(Vec::new());
    }
    let mut dfs = AnchoredDfs {
        plan: &plan,
        data,
        delta: &delta_gids,
        anchor: 0,
        states: (0..plan.len()).map(|_| ExpansionState::new()).collect(),
        scratch: ValidateScratch::new(),
        config: MatchConfig::default(),
        emb: Vec::with_capacity(plan.len()),
        out: Vec::new(),
    };
    for anchor in 0..plan.len() {
        dfs.anchor = anchor;
        dfs.descend(0);
    }
    let mut out = dfs.out;
    out.sort_unstable();
    Ok(out)
}

/// A sequential depth-first enumerator with a per-position delta
/// restriction: positions before `anchor` avoid the delta set, position
/// `anchor` stays inside it, later positions are unrestricted.
struct AnchoredDfs<'a> {
    plan: &'a Plan,
    data: &'a Hypergraph,
    delta: &'a FxHashSet<u32>,
    anchor: usize,
    states: Vec<ExpansionState>,
    scratch: ValidateScratch,
    config: MatchConfig,
    emb: Vec<u32>,
    out: Vec<Embedding>,
}

impl AnchoredDfs<'_> {
    fn admits(&self, depth: usize, global: u32) -> bool {
        use std::cmp::Ordering::*;
        match depth.cmp(&self.anchor) {
            Less => !self.delta.contains(&global),
            Equal => self.delta.contains(&global),
            Greater => true,
        }
    }

    fn descend(&mut self, depth: usize) {
        if depth == self.plan.len() {
            self.out
                .push(Embedding::new(self.plan.to_query_order(&self.emb)));
            return;
        }
        let step = &self.plan.steps()[depth];
        let Some(pid) = step.partition else { return };
        let partition = self.data.partition(pid);
        self.states[depth].prepare(self.data, step, &self.emb);
        generate_candidates(
            self.data,
            step,
            &self.emb,
            &mut self.states[depth],
            &self.config,
        );

        let cands = std::mem::take(&mut self.states[depth].candidates);
        for &row in &cands {
            let global = partition.global_id(row).raw();
            if !self.admits(depth, global) {
                continue;
            }
            if depth == 0 {
                // Scan rows are valid by construction (signature equality).
                self.emb.push(global);
                self.descend(1.min(self.plan.len()));
                self.emb.pop();
                continue;
            }
            let verdict = validate_candidate(
                self.data,
                step,
                depth,
                &self.emb,
                &self.states[depth],
                global,
                partition.row(row),
                &mut self.scratch,
            );
            if verdict == Validation::Valid {
                self.emb.push(global);
                self.descend(depth + 1);
                self.emb.pop();
            }
        }
        self.states[depth].candidates = cands;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::Matcher;
    use hgmatch_hypergraph::{DynamicHypergraph, HypergraphBuilder, Label};

    fn paper_graph(edges: &[Vec<u32>]) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1, 2, 0] {
            b.add_vertex(Label::new(l));
        }
        for e in edges {
            b.add_edge(e.clone()).unwrap();
        }
        b.build().unwrap()
    }

    fn paper_edges() -> Vec<Vec<u32>> {
        vec![
            vec![2, 4],
            vec![4, 6],
            vec![0, 1, 2],
            vec![3, 5, 6],
            vec![0, 1, 4, 6],
            vec![2, 3, 4, 5],
        ]
    }

    fn paper_query() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![0, 1, 3, 4]).unwrap();
        b.build().unwrap()
    }

    /// The full-rerun oracle: delta-patched old results == fresh results.
    fn assert_delta_consistent(old: &Hypergraph, new: &Hypergraph, query: &Hypergraph) {
        let batch = DeltaBatch::between(old, new);
        let outcome = delta_match(old, new, query, &batch).unwrap();
        let old_results = Matcher::new(old).find_all(query).unwrap();
        let new_results = Matcher::new(new).find_all(query).unwrap();
        assert_eq!(
            outcome.patch(old, new, &old_results),
            new_results,
            "patched old results must equal a fresh run"
        );
        // Lost embeddings really are old embeddings.
        for m in &outcome.lost {
            assert!(old_results.contains(m), "lost {m} not in old results");
        }
        for m in &outcome.gained {
            assert!(new_results.contains(m), "gained {m} not in new results");
        }
    }

    #[test]
    fn batch_between_nets_out() {
        let old = paper_graph(&paper_edges());
        let mut edges = paper_edges();
        edges.remove(1); // delete {4,6}
        edges.push(vec![0, 6]); // insert an {A,A} edge
        let new = paper_graph(&edges);
        let batch = DeltaBatch::between(&old, &new);
        assert_eq!(batch.deleted, vec![vec![4, 6]]);
        assert_eq!(batch.inserted, vec![vec![0, 6]]);
        assert!(!batch.is_empty());
        assert_eq!(
            batch.touched_labels(&old),
            vec![Label::new(0), Label::new(1)]
        );
        assert!(DeltaBatch::between(&old, &old).is_empty());
    }

    #[test]
    fn insertion_gains_are_found() {
        // Deleting nothing, inserting a second {A,B} edge near v2 creates
        // new embeddings of the paper query.
        let old = paper_graph(&paper_edges());
        let mut edges = paper_edges();
        edges.push(vec![2, 4, 0, 1].into_iter().collect()); // another {A,A,B,C}? no: labels 0,1,0,2 → sorted {0,0,1,2}
        let new = paper_graph(&edges);
        assert_delta_consistent(&old, &new, &paper_query());
    }

    #[test]
    fn deletion_losses_are_found() {
        let old = paper_graph(&paper_edges());
        let mut edges = paper_edges();
        edges.remove(0); // {2,4} participates in one embedding
        let new = paper_graph(&edges);
        let batch = DeltaBatch::between(&old, &new);
        let outcome = delta_match(&old, &new, &paper_query(), &batch).unwrap();
        assert_eq!(outcome.lost.len(), 1);
        assert!(outcome.gained.is_empty());
        assert_delta_consistent(&old, &new, &paper_query());
    }

    #[test]
    fn label_disjoint_query_is_unaffected() {
        let old = paper_graph(&paper_edges());
        let mut d = DynamicHypergraph::from_hypergraph(&old);
        d.add_vertices(2, Label::new(9));
        d.insert_hyperedge(vec![7, 8]).unwrap();
        let new = d.snapshot().graph;
        let batch = DeltaBatch::between(&old, &new);
        let outcome = delta_match(&old, &new, &paper_query(), &batch).unwrap();
        assert!(!outcome.affected);
        assert!(outcome.gained.is_empty() && outcome.lost.is_empty());
        assert_delta_consistent(&old, &new, &paper_query());
    }

    #[test]
    fn mixed_batches_with_id_shifts_patch_correctly() {
        // Deletions shift canonical edge ids; patching must still line up.
        let old = paper_graph(&paper_edges());
        let mut d = DynamicHypergraph::from_hypergraph(&old);
        d.delete_hyperedge(&[2, 4]).unwrap();
        d.delete_hyperedge(&[0, 1, 2]).unwrap();
        d.insert_hyperedge(vec![0, 2, 1]).unwrap(); // re-insert, new id order
        d.insert_hyperedge(vec![0, 4]).unwrap(); // fresh {A,B}
        let new = d.snapshot().graph;
        for query in [paper_query(), {
            let mut b = HypergraphBuilder::new();
            b.add_vertex(Label::new(0));
            b.add_vertex(Label::new(1));
            b.add_edge(vec![0, 1]).unwrap();
            b.build().unwrap()
        }] {
            assert_delta_consistent(&old, &new, &query);
        }
    }

    #[test]
    fn anchoring_counts_each_embedding_once() {
        // A query with two same-signature edges whose embeddings can use
        // several delta edges at once — the per-position partition must
        // not double count.
        let mut b = HypergraphBuilder::new();
        b.add_vertices(4, Label::new(0));
        let old = b.build().unwrap();
        let mut d = DynamicHypergraph::from_hypergraph(&old);
        for e in [vec![0u32, 1], vec![1, 2], vec![2, 3], vec![0, 3]] {
            d.insert_hyperedge(e).unwrap();
        }
        let new = d.snapshot().graph;

        let mut qb = HypergraphBuilder::new();
        qb.add_vertices(3, Label::new(0));
        qb.add_edge(vec![0, 1]).unwrap();
        qb.add_edge(vec![1, 2]).unwrap();
        let query = qb.build().unwrap();

        let batch = DeltaBatch::between(&old, &new);
        let outcome = delta_match(&old, &new, &query, &batch).unwrap();
        let fresh = Matcher::new(&new).find_all(&query).unwrap();
        assert_eq!(outcome.gained, fresh, "everything is new, exactly once");
        assert_delta_consistent(&old, &new, &query);
    }
}
