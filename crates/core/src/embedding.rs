//! Embedding representation.
//!
//! A subhypergraph-isomorphism embedding is the tuple
//! `m = (e_H1, …, e_Hn)` of data hyperedges matched to the query hyperedges
//! (paper §III-A): `edges()[i]` is the data hyperedge matched to query
//! hyperedge `i`. Engines work internally in matching-order positions and
//! convert through [`crate::plan::Plan::to_query_order`] at the sink
//! boundary.

use std::fmt;

use hgmatch_hypergraph::EdgeId;

/// A complete embedding: data hyperedge ids in *query hyperedge order*.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Embedding {
    edges: Box<[u32]>,
}

impl Embedding {
    /// Wraps raw data-edge ids (already in query-edge order).
    pub fn new(edges: Vec<u32>) -> Self {
        Self {
            edges: edges.into_boxed_slice(),
        }
    }

    /// The matched data hyperedge for query hyperedge `i`.
    #[inline]
    pub fn edge(&self, i: usize) -> EdgeId {
        EdgeId::new(self.edges[i])
    }

    /// Raw matched edge ids, indexed by query hyperedge.
    #[inline]
    pub fn raw(&self) -> &[u32] {
        &self.edges
    }

    /// Number of matched hyperedges (= `|E(q)|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the embedding is empty (never true for valid embeddings).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterates the matched hyperedges as [`EdgeId`]s.
    pub fn iter(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges.iter().map(|&e| EdgeId::new(e))
    }
}

impl fmt::Display for Embedding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, e) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<u32>> for Embedding {
    fn from(edges: Vec<u32>) -> Self {
        Self::new(edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let m = Embedding::new(vec![4, 2, 0]);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.edge(0), EdgeId::new(4));
        assert_eq!(m.raw(), &[4, 2, 0]);
        let ids: Vec<EdgeId> = m.iter().collect();
        assert_eq!(ids, vec![EdgeId::new(4), EdgeId::new(2), EdgeId::new(0)]);
    }

    #[test]
    fn display() {
        let m = Embedding::new(vec![1, 3, 5]);
        assert_eq!(m.to_string(), "(e1, e3, e5)");
    }

    #[test]
    fn ordering_and_hash_follow_tuple() {
        use std::collections::HashSet;
        let a = Embedding::new(vec![1, 2]);
        let b = Embedding::new(vec![1, 3]);
        assert!(a < b);
        let set: HashSet<Embedding> = [a.clone(), b.clone(), a.clone()].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
