//! The cost model and matching-order search behind the cost-based planner
//! (DESIGN.md §13).
//!
//! The paper's Algorithm 3 picks a matching order with a one-shot greedy
//! rule over partition cardinalities. That rule is blind to *join
//! selectivity*: a tiny partition whose shared vertices are hubs can fan a
//! partial embedding out into thousands of candidates, while a larger
//! partition with selective anchors keeps the frontier narrow. This module
//! estimates, for any connected order, the per-step candidate counts from
//! the per-partition cardinality summaries the storage layer maintains
//! ([`hgmatch_hypergraph::PartitionStats`]) and searches the space of
//! connected orders for the cheapest one:
//!
//! * **Per-step estimate.** Matching query hyperedge `e` with target
//!   partition `P` (`rows` hyperedges) against a partial embedding that
//!   already covers shared query vertices `u₁..u_k` produces an expected
//!   `rows · Π_i min(1, avg_deg(label(u_i), P) / rows)` candidates per
//!   partial: each shared vertex independently keeps only the rows
//!   incident to one concrete data vertex of its label, whose expected
//!   posting length is the maintained per-label mean degree.
//! * **Step cost.** `partials_in · (1 + candidates_per_partial)` — every
//!   partial pays the anchor probe plus one unit per produced candidate;
//!   the total cost of an order is the sum over its steps. Candidate
//!   validation is deliberately not modelled separately: the paper's
//!   false-positive rate is tiny, so candidates ≈ surviving partials.
//! * **Search.** Exhaustive depth-first enumeration of connected orders
//!   with branch-and-bound pruning (costs only grow, so a partial order
//!   costing more than the best complete one is dead) for queries up to
//!   [`crate::config`]'s exhaustive bound (default 8 hyperedges, env
//!   `HGMATCH_PLAN_EXHAUSTIVE`); beam search above it (default width 8,
//!   env `HGMATCH_PLAN_BEAM`). Ties break towards the lexicographically
//!   smallest order, so planning is deterministic.
//!
//! [`Explain`] packages the chosen order, its per-step estimates and the
//! greedy baseline into deterministic text/JSON for the CLI `explain`
//! subcommand and the `plan_quality` bench.

use std::fmt::Write as _;

use hgmatch_hypergraph::{Hypergraph, SignatureId};

use crate::config::{default_plan_beam, default_plan_exhaustive, default_plan_margin};
use crate::query::QueryGraph;

/// Cost estimate of one step of a candidate matching order.
#[derive(Debug, Clone, PartialEq)]
pub struct StepEstimate {
    /// Query hyperedge matched at this step.
    pub query_edge: u32,
    /// `Card(e, H)`: rows of the target partition (0 when the signature is
    /// absent — the order is infeasible and everything downstream is 0).
    pub cardinality: u64,
    /// Expected candidates generated *per partial embedding* reaching this
    /// step (for the SCAN step this is the cardinality itself).
    pub candidates_per_partial: f64,
    /// Expected partial embeddings alive after this step.
    pub partials_out: f64,
    /// Expected work of this step: `partials_in · (1 + candidates)`.
    pub cost: f64,
}

/// Cost estimate of a complete matching order.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderEstimate {
    /// The estimated order (query-edge indices, matching-order positions).
    pub order: Vec<u32>,
    /// Per-step estimates, SCAN first.
    pub steps: Vec<StepEstimate>,
    /// Sum of the per-step costs.
    pub total_cost: f64,
}

/// The statistics-driven cost model for one `(query, data)` pair.
///
/// Construction snapshots the per-edge cardinalities and per-label mean
/// degrees out of the data's partition stats; estimating an order is then
/// pure arithmetic, so the order search can evaluate thousands of partial
/// orders without touching the data again.
#[derive(Debug)]
pub struct CostModel<'a> {
    query: &'a QueryGraph,
    /// Target partition rows per query edge (0 = absent signature).
    card: Vec<f64>,
    /// `avg_deg(label(u), partition(e)) / rows(e)` per `(edge, vertex slot)`
    /// pair — the selectivity one covered shared vertex contributes,
    /// clamped to `(0, 1]`. Indexed `[edge][slot]` parallel to
    /// `query.edge(e)`.
    selectivity: Vec<Vec<f64>>,
}

impl<'a> CostModel<'a> {
    /// Builds the model from the data hypergraph's partition stats.
    pub fn new(query: &'a QueryGraph, data: &Hypergraph) -> Self {
        let ne = query.num_edges();
        let mut card = Vec::with_capacity(ne);
        let mut selectivity = Vec::with_capacity(ne);
        for e in 0..ne {
            let sid: Option<SignatureId> = data.interner().get(query.signature(e));
            let stats = sid.map(|sid| data.partition(sid).stats());
            let rows = stats.map_or(0, |s| s.rows);
            card.push(rows as f64);
            let per_vertex = query
                .edge(e)
                .iter()
                .map(|&u| {
                    let Some(stats) = stats else { return 0.0 };
                    if stats.rows == 0 {
                        return 0.0;
                    }
                    // Size-biased mean: the matched data vertex behind a
                    // shared query vertex was reached through an incident
                    // hyperedge, so hubs are over-represented in exact
                    // proportion to their degree.
                    let expected_degree = stats
                        .label_group(query.label(u))
                        .map_or(1.0, |g| g.size_biased_degree());
                    (expected_degree / stats.rows as f64).clamp(f64::MIN_POSITIVE, 1.0)
                })
                .collect();
            selectivity.push(per_vertex);
        }
        Self {
            query,
            card,
            selectivity,
        }
    }

    /// `Card(e, H)` as seen by the model.
    #[inline]
    pub fn cardinality(&self, e: u32) -> u64 {
        self.card[e as usize] as u64
    }

    /// Multiplies the modelled candidate yield of query edge `e` by
    /// `factor` — the feedback hook of the adaptive re-optimizer
    /// (DESIGN.md §15). Every estimate involving `e` starts from
    /// `card[e]` (both as a SCAN and as an extension), so scaling it
    /// folds an observed/estimated candidate ratio into all downstream
    /// step estimates. Non-finite and non-positive factors are ignored
    /// (an observed count of zero says "done", not "free").
    pub fn scale_edge(&mut self, e: u32, factor: f64) {
        if factor.is_finite() && factor > 0.0 {
            self.card[e as usize] *= factor;
        }
    }

    /// Expected candidates per partial when matching `e` with the edges in
    /// `matched_mask` already matched.
    fn candidates_per_partial(&self, e: u32, matched_mask: u64) -> f64 {
        let e_us = e as usize;
        let mut est = self.card[e_us];
        if matched_mask == 0 {
            return est; // SCAN
        }
        for (slot, &u) in self.query.edge(e_us).iter().enumerate() {
            if self.query.incident_edges(u) & matched_mask != 0 {
                est *= self.selectivity[e_us][slot];
            }
        }
        est
    }

    /// Extends a running estimate by one step; returns the step estimate.
    fn step(&self, e: u32, matched_mask: u64, partials_in: f64) -> StepEstimate {
        let candidates = self.candidates_per_partial(e, matched_mask);
        StepEstimate {
            query_edge: e,
            cardinality: self.card[e as usize] as u64,
            candidates_per_partial: candidates,
            partials_out: partials_in * candidates,
            cost: partials_in * (1.0 + candidates),
        }
    }

    /// Estimates a complete order (any permutation of the query edges).
    pub fn estimate_order(&self, order: &[u32]) -> OrderEstimate {
        let mut steps = Vec::with_capacity(order.len());
        let mut mask = 0u64;
        let mut partials = 1.0f64;
        let mut total = 0.0f64;
        for &e in order {
            let step = self.step(e, mask, partials);
            partials = step.partials_out;
            total += step.cost;
            mask |= 1 << e;
            steps.push(step);
        }
        OrderEstimate {
            order: order.to_vec(),
            steps,
            total_cost: total,
        }
    }

    /// Query edges that may legally extend the partial order `mask`:
    /// connected extensions when any exist, otherwise (disconnected query)
    /// every remaining edge — the same fallback the greedy planner applies.
    fn extensions(&self, mask: u64) -> impl Iterator<Item = u32> + '_ {
        let ne = self.query.num_edges() as u32;
        let connected_exists = (0..ne).any(|e| {
            mask & (1 << e) == 0 && (mask == 0 || self.query.adjacent_edges(e as usize) & mask != 0)
        });
        (0..ne).filter(move |&e| {
            if mask & (1 << e) != 0 {
                return false;
            }
            if mask == 0 || !connected_exists {
                return true;
            }
            self.query.adjacent_edges(e as usize) & mask != 0
        })
    }

    /// The cheapest connected order under this model, using the
    /// process-default search bounds (`HGMATCH_PLAN_BEAM`,
    /// `HGMATCH_PLAN_EXHAUSTIVE`).
    pub fn best_order(&self) -> Vec<u32> {
        self.best_order_bounded(default_plan_beam(), default_plan_exhaustive())
    }

    /// The planner's final choice between `greedy` (the paper's Algorithm
    /// 3 order) and the searched best order: the search wins only when it
    /// is estimated at least `margin`× cheaper. Near-tie estimates are
    /// below the model's resolution — label-level summaries cannot
    /// distinguish such orders — so the planner keeps the stable baseline
    /// rather than flipping on estimation noise (DESIGN.md §13.3).
    pub fn choose_order(&self, greedy: Vec<u32>, searched: Vec<u32>, margin: f64) -> Vec<u32> {
        let greedy_cost = self.estimate_order(&greedy).total_cost;
        let searched_cost = self.estimate_order(&searched).total_cost;
        if greedy_cost > searched_cost * margin.max(1.0) {
            searched
        } else {
            greedy
        }
    }

    /// The cheapest connected order, with explicit search bounds: queries
    /// with at most `exhaustive_max` hyperedges are enumerated exhaustively
    /// with branch-and-bound; larger ones run a beam search of width
    /// `beam`. Deterministic: ties break to the lexicographically smallest
    /// order.
    pub fn best_order_bounded(&self, beam: usize, exhaustive_max: usize) -> Vec<u32> {
        let ne = self.query.num_edges();
        if ne <= exhaustive_max {
            self.exhaustive_best()
        } else {
            self.beam_best(beam.max(1))
        }
    }

    /// Exhaustive DFS over connected orders with branch-and-bound pruning.
    fn exhaustive_best(&self) -> Vec<u32> {
        let ne = self.query.num_edges();
        let mut best_cost = f64::INFINITY;
        let mut best: Vec<u32> = Vec::new();
        let mut prefix: Vec<u32> = Vec::with_capacity(ne);
        self.dfs(0, 1.0, 0.0, &mut prefix, &mut best_cost, &mut best);
        debug_assert_eq!(best.len(), ne);
        best
    }

    /// The cheapest complete order *extending* a fixed prefix — the
    /// suffix re-search of the adaptive re-optimizer (DESIGN.md §15): the
    /// first `prefix.len()` positions are pinned (those partials already
    /// exist in flight) and only the remaining edges are re-enumerated,
    /// seeded with the prefix's estimated frontier. Uses the same bounds
    /// and determinism rules as [`CostModel::best_order`], keyed on the
    /// *suffix* length.
    pub fn best_order_with_prefix(&self, prefix: &[u32]) -> Vec<u32> {
        self.best_order_with_prefix_bounded(prefix, default_plan_beam(), default_plan_exhaustive())
    }

    /// [`CostModel::best_order_with_prefix`] with explicit search bounds.
    pub fn best_order_with_prefix_bounded(
        &self,
        prefix: &[u32],
        beam: usize,
        exhaustive_max: usize,
    ) -> Vec<u32> {
        let ne = self.query.num_edges();
        let mut mask = 0u64;
        let mut partials = 1.0f64;
        let mut cost = 0.0f64;
        for &e in prefix {
            let step = self.step(e, mask, partials);
            partials = step.partials_out;
            cost += step.cost;
            mask |= 1 << e;
        }
        if ne - prefix.len() <= exhaustive_max {
            let mut best_cost = f64::INFINITY;
            let mut best: Vec<u32> = Vec::new();
            let mut seeded = prefix.to_vec();
            seeded.reserve(ne - prefix.len());
            self.dfs(mask, partials, cost, &mut seeded, &mut best_cost, &mut best);
            debug_assert_eq!(best.len(), ne);
            best
        } else {
            self.beam_from(beam.max(1), mask, prefix.to_vec(), partials, cost)
        }
    }

    fn dfs(
        &self,
        mask: u64,
        partials: f64,
        cost: f64,
        prefix: &mut Vec<u32>,
        best_cost: &mut f64,
        best: &mut Vec<u32>,
    ) {
        if prefix.len() == self.query.num_edges() {
            // Strict improvement only (the ascending iteration order makes
            // the first-found minimum the lexicographically smallest) —
            // except that the first completed order is always taken, so
            // the search returns a valid permutation even when every
            // order's estimate overflows to infinity.
            if cost < *best_cost || best.is_empty() {
                *best_cost = cost;
                best.clone_from(prefix);
            }
            return;
        }
        let extensions: Vec<u32> = self.extensions(mask).collect();
        for e in extensions {
            let step = self.step(e, mask, partials);
            let next_cost = cost + step.cost;
            if next_cost >= *best_cost && !best.is_empty() {
                continue; // branch-and-bound: costs only grow
            }
            prefix.push(e);
            self.dfs(
                mask | (1 << e),
                step.partials_out,
                next_cost,
                prefix,
                best_cost,
                best,
            );
            prefix.pop();
        }
    }

    /// Beam search: keep the `beam` cheapest partial orders per level.
    fn beam_best(&self, beam: usize) -> Vec<u32> {
        self.beam_from(beam, 0, Vec::new(), 1.0, 0.0)
    }

    /// Beam search from an arbitrary seed state (empty seed = full search;
    /// a prefix seed = the adaptive suffix re-search).
    fn beam_from(
        &self,
        beam: usize,
        mask: u64,
        order: Vec<u32>,
        partials: f64,
        cost: f64,
    ) -> Vec<u32> {
        #[derive(Clone)]
        struct State {
            mask: u64,
            order: Vec<u32>,
            partials: f64,
            cost: f64,
        }
        let ne = self.query.num_edges();
        let seeded = order.len();
        let mut frontier = vec![State {
            mask,
            order,
            partials,
            cost,
        }];
        for _ in seeded..ne {
            let mut next: Vec<State> = Vec::new();
            for state in &frontier {
                for e in self.extensions(state.mask) {
                    let step = self.step(e, state.mask, state.partials);
                    let mut order = state.order.clone();
                    order.push(e);
                    next.push(State {
                        mask: state.mask | (1 << e),
                        order,
                        partials: step.partials_out,
                        cost: state.cost + step.cost,
                    });
                }
            }
            next.sort_by(|a, b| a.cost.total_cmp(&b.cost).then(a.order.cmp(&b.order)));
            next.truncate(beam);
            frontier = next;
        }
        frontier.swap_remove(0).order
    }

    /// The *most expensive* connected order under this model — the
    /// adversarial baseline of the `plan_quality` bench. Exhaustive for
    /// queries within `exhaustive_max` (no pruning: cost keeps growing, so
    /// max cannot be bounded early), greedily worst-first above it.
    pub fn worst_order(&self, exhaustive_max: usize) -> Vec<u32> {
        let ne = self.query.num_edges();
        if ne <= exhaustive_max {
            let mut worst_cost = f64::NEG_INFINITY;
            let mut worst: Vec<u32> = Vec::new();
            let mut stack: Vec<(u64, Vec<u32>, f64, f64)> = vec![(0, Vec::new(), 1.0, 0.0)];
            while let Some((mask, order, partials, cost)) = stack.pop() {
                if order.len() == ne {
                    if cost > worst_cost {
                        worst_cost = cost;
                        worst = order;
                    }
                    continue;
                }
                for e in self.extensions(mask) {
                    let step = self.step(e, mask, partials);
                    let mut next = order.clone();
                    next.push(e);
                    stack.push((mask | (1 << e), next, step.partials_out, cost + step.cost));
                }
            }
            worst
        } else {
            let mut order = Vec::with_capacity(ne);
            let mut mask = 0u64;
            let mut partials = 1.0;
            for _ in 0..ne {
                let e = self
                    .extensions(mask)
                    .max_by(|&a, &b| {
                        self.step(a, mask, partials)
                            .cost
                            .total_cmp(&self.step(b, mask, partials).cost)
                            .then(b.cmp(&a))
                    })
                    .expect("extensions exist while edges remain");
                let step = self.step(e, mask, partials);
                partials = step.partials_out;
                mask |= 1 << e;
                order.push(e);
            }
            order
        }
    }
}

/// An EXPLAIN report: the cost-based plan's order and per-step estimates
/// next to the greedy baseline, rendered deterministically (stable field
/// order, no hash-iteration leaks) so CI can diff the output.
#[derive(Debug, Clone)]
pub struct Explain {
    /// Estimate of the order [`crate::Planner::plan`] actually compiles —
    /// the searched order when it clears the confidence margin, the
    /// greedy baseline otherwise.
    pub chosen: OrderEstimate,
    /// Estimate of the cheapest order the search found.
    pub searched: OrderEstimate,
    /// Estimate of the paper's greedy Algorithm 3 order.
    pub greedy: OrderEstimate,
    /// `"exhaustive"` or `"beam"` — which search produced `searched`.
    pub strategy: &'static str,
    /// Beam width in effect (meaningful for the beam strategy).
    pub beam: usize,
    /// Confidence margin the searched order had to clear.
    pub margin: f64,
    /// Whether some query signature is absent from the data (zero results).
    pub infeasible: bool,
}

impl Explain {
    /// Builds the report for `query` against `data` using the
    /// process-default search bounds and margin — the same decision path
    /// as [`crate::Planner::plan`].
    pub fn new(query: &QueryGraph, data: &Hypergraph) -> Self {
        let model = CostModel::new(query, data);
        let beam = default_plan_beam();
        let exhaustive_max = default_plan_exhaustive();
        let margin = default_plan_margin();
        let greedy_order = crate::plan::Planner::greedy_order(query, data);
        let searched_order = model.best_order_bounded(beam, exhaustive_max);
        let chosen_order = model.choose_order(greedy_order.clone(), searched_order.clone(), margin);
        let chosen = model.estimate_order(&chosen_order);
        let infeasible = chosen.steps.iter().any(|s| s.cardinality == 0);
        Self {
            chosen,
            searched: model.estimate_order(&searched_order),
            greedy: model.estimate_order(&greedy_order),
            strategy: if query.num_edges() <= exhaustive_max {
                "exhaustive"
            } else {
                "beam"
            },
            beam,
            margin,
            infeasible,
        }
    }

    /// Human-readable rendering (one table per order).
    pub fn text(&self) -> String {
        fn table(out: &mut String, name: &str, est: &OrderEstimate) {
            let _ = writeln!(
                out,
                "{name} order: {:?}  (estimated cost {})",
                est.order,
                fmt_f64(est.total_cost)
            );
            let _ = writeln!(out, "  step\tedge\tcard\tcand/partial\tpartials\tcost");
            for (i, s) in est.steps.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  {i}\tq{}\t{}\t{}\t{}\t{}",
                    s.query_edge,
                    s.cardinality,
                    fmt_f64(s.candidates_per_partial),
                    fmt_f64(s.partials_out),
                    fmt_f64(s.cost)
                );
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "planner: cost-based ({}, beam {}, margin {})",
            self.strategy,
            self.beam,
            fmt_f64(self.margin)
        );
        table(&mut out, "chosen", &self.chosen);
        table(&mut out, "greedy", &self.greedy);
        if self.searched.order != self.chosen.order && self.searched.order != self.greedy.order {
            table(&mut out, "searched", &self.searched);
        }
        if self.chosen.order == self.greedy.order {
            let _ = writeln!(
                out,
                "keeping the greedy order (search win {}x is within the margin)",
                fmt_f64(self.greedy.total_cost / self.searched.total_cost.max(f64::MIN_POSITIVE))
            );
        } else {
            let _ = writeln!(
                out,
                "cost-based order is estimated {}x cheaper than greedy",
                fmt_f64(self.greedy.total_cost / self.chosen.total_cost.max(f64::MIN_POSITIVE))
            );
        }
        if self.infeasible {
            let _ = writeln!(
                out,
                "plan is infeasible: some query signature is absent from the data"
            );
        }
        out
    }

    /// Machine-readable rendering: deterministic JSON with a stable field
    /// order (golden-file checked by the CLI tests).
    pub fn json(&self) -> String {
        fn order_json(est: &OrderEstimate) -> String {
            let steps: Vec<String> = est
                .steps
                .iter()
                .map(|s| {
                    format!(
                        "{{\"query_edge\": {}, \"cardinality\": {}, \"candidates_per_partial\": {}, \"partials\": {}, \"cost\": {}}}",
                        s.query_edge,
                        s.cardinality,
                        fmt_f64(s.candidates_per_partial),
                        fmt_f64(s.partials_out),
                        fmt_f64(s.cost)
                    )
                })
                .collect();
            format!(
                "{{\"order\": {:?}, \"total_cost\": {}, \"steps\": [{}]}}",
                est.order,
                fmt_f64(est.total_cost),
                steps.join(", ")
            )
        }
        format!(
            "{{\n  \"strategy\": \"{}\",\n  \"beam\": {},\n  \"margin\": {},\n  \"infeasible\": {},\n  \"chosen\": {},\n  \"searched\": {},\n  \"greedy\": {}\n}}\n",
            self.strategy,
            self.beam,
            fmt_f64(self.margin),
            self.infeasible,
            order_json(&self.chosen),
            order_json(&self.searched),
            order_json(&self.greedy)
        )
    }
}

/// Fixed-precision float rendering shared by the text and JSON forms:
/// `{:.4}` is exact for the integers the estimates usually are and stable
/// across platforms for the rest.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        // Infinity stand-in that strict JSON parsers accept as a regular
        // in-range number (estimates are products of non-negatives, so
        // NaN cannot occur here).
        format!("{:.4e}", f64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Planner;
    use hgmatch_hypergraph::{HypergraphBuilder, Label};

    fn paper_data() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1, 2, 0] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![4, 6]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![3, 5, 6]).unwrap();
        b.add_edge(vec![0, 1, 4, 6]).unwrap();
        b.add_edge(vec![2, 3, 4, 5]).unwrap();
        b.build().unwrap()
    }

    fn paper_query() -> QueryGraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![0, 1, 3, 4]).unwrap();
        QueryGraph::new(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn scan_step_estimates_cardinality() {
        let data = paper_data();
        let q = paper_query();
        let model = CostModel::new(&q, &data);
        let est = model.estimate_order(&[0, 1, 2]);
        assert_eq!(est.steps[0].cardinality, 2);
        assert!((est.steps[0].candidates_per_partial - 2.0).abs() < 1e-9);
        assert!((est.steps[0].partials_out - 2.0).abs() < 1e-9);
        // Later steps shrink the frontier: selectivities are ≤ 1.
        assert!(est.steps[1].candidates_per_partial <= est.steps[1].cardinality as f64);
        assert!(est.total_cost > 0.0);
    }

    #[test]
    fn best_order_is_no_worse_than_greedy_or_any_permutation() {
        let data = paper_data();
        let q = paper_query();
        let model = CostModel::new(&q, &data);
        let best = model.best_order_bounded(8, 8);
        let best_cost = model.estimate_order(&best).total_cost;
        let greedy_cost = model
            .estimate_order(&Planner::greedy_order(&q, &data))
            .total_cost;
        assert!(best_cost <= greedy_cost + 1e-9);
        // Exhaustive check over all 6 permutations (all connected here).
        for perm in [
            [0u32, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ] {
            assert!(best_cost <= model.estimate_order(&perm).total_cost + 1e-9);
        }
    }

    #[test]
    fn beam_search_agrees_with_exhaustive_at_full_width() {
        let data = paper_data();
        let q = paper_query();
        let model = CostModel::new(&q, &data);
        let exhaustive = model.best_order_bounded(64, 8);
        // Force beam search with a width large enough to be exact.
        let beam = model.best_order_bounded(64, 0);
        assert_eq!(
            model.estimate_order(&exhaustive).total_cost,
            model.estimate_order(&beam).total_cost
        );
        // A width-1 beam still yields a valid permutation.
        let narrow = model.best_order_bounded(1, 0);
        let mut sorted = narrow.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn worst_order_costs_at_least_best() {
        let data = paper_data();
        let q = paper_query();
        let model = CostModel::new(&q, &data);
        let best = model
            .estimate_order(&model.best_order_bounded(8, 8))
            .total_cost;
        let worst = model.estimate_order(&model.worst_order(8)).total_cost;
        assert!(worst >= best);
        // The greedy worst-first fallback also produces a permutation.
        let fallback = model.worst_order(0);
        let mut sorted = fallback.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn infeasible_signature_zeroes_the_estimate() {
        let mut b = HypergraphBuilder::new();
        b.add_vertices(2, Label::new(9));
        b.add_edge(vec![0, 1]).unwrap();
        let data = b.build().unwrap();
        let q = paper_query();
        let model = CostModel::new(&q, &data);
        let est = model.estimate_order(&model.best_order_bounded(8, 8));
        assert!(est.steps.iter().all(|s| s.cardinality == 0));
        let explain = Explain::new(&q, &data);
        assert!(explain.infeasible);
    }

    #[test]
    fn explain_renders_deterministically() {
        let data = paper_data();
        let q = paper_query();
        let a = Explain::new(&q, &data);
        let b = Explain::new(&q, &data);
        assert_eq!(a.json(), b.json());
        assert_eq!(a.text(), b.text());
        assert!(a.json().contains("\"strategy\": \"exhaustive\""));
        assert!(a.json().contains("\"chosen\""));
        assert!(a.text().contains("greedy order"));
    }

    #[test]
    fn disconnected_query_still_orders_every_edge() {
        let mut b = HypergraphBuilder::new();
        b.add_vertices(4, Label::new(0));
        b.add_edge(vec![0, 1]).unwrap();
        b.add_edge(vec![2, 3]).unwrap();
        let q = QueryGraph::new(&b.build().unwrap()).unwrap();
        let mut d = HypergraphBuilder::new();
        d.add_vertices(4, Label::new(0));
        d.add_edge(vec![0, 1]).unwrap();
        d.add_edge(vec![2, 3]).unwrap();
        let data = d.build().unwrap();
        let model = CostModel::new(&q, &data);
        for order in [model.best_order_bounded(4, 8), model.worst_order(8)] {
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1]);
        }
    }
}
