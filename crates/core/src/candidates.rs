//! Candidate hyperedge generation — the paper's Algorithm 4.
//!
//! Given a partial embedding `m` and the next query hyperedge `eq`, the
//! candidates are data hyperedges that
//!
//! * live in the partition with signature `S(eq)` (Observation V.1),
//! * are incident, for every *anchor* — a `(previously matched adjacent
//!   query edge e, shared vertex u ∈ e ∩ eq)` pair — to at least one vertex
//!   of `f(e)` that carries `u`'s label and has matching degree within the
//!   partial embedding (Observations V.2 and V.4),
//! * and (optionally, eager Observation V.3) touch no vertex matched by a
//!   non-adjacent query edge.
//!
//! Everything is posting-list algebra: per anchor a *union* of `he(v,
//! S(eq))` lists, then an *intersection* across anchors, and optionally a
//! *difference* against the non-incident union — exactly the three set
//! operations the paper highlights.

use hgmatch_hypergraph::hypergraph::Hypergraph;
use hgmatch_hypergraph::setops;

use crate::config::MatchConfig;
use crate::plan::Step;

/// Per-expansion state shared between candidate generation and validation.
///
/// Rebuilt once per partial embedding (not per candidate), so its cost is
/// amortised over all candidates of the expansion.
#[derive(Debug, Default)]
pub struct ExpansionState {
    /// Sorted distinct vertices of the partial embedding with their degree
    /// within it: `(v, d_Hm(v))`.
    pub m_vertices: Vec<(u32, u32)>,
    /// Sorted vertices matched by non-adjacent previous edges
    /// (`V_n_incdt` of Algorithm 4 line 1).
    pub non_incident: Vec<u32>,
    /// Output: candidate local rows in the step's partition.
    pub candidates: Vec<u32>,
    // Scratch buffers.
    gather: Vec<u32>,
    union: Vec<u32>,
    tmp: Vec<u32>,
}

impl ExpansionState {
    /// Creates empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// `d_Hm(v)`: degree of data vertex `v` within the partial embedding.
    #[inline]
    pub fn embedding_degree(&self, v: u32) -> u32 {
        match self.m_vertices.binary_search_by_key(&v, |&(x, _)| x) {
            Ok(i) => self.m_vertices[i].1,
            Err(_) => 0,
        }
    }

    /// Whether `v` already occurs in the partial embedding.
    #[inline]
    pub fn contains_vertex(&self, v: u32) -> bool {
        self.m_vertices.binary_search_by_key(&v, |&(x, _)| x).is_ok()
    }

    /// `|V(Hm)|`: distinct vertices in the partial embedding.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.m_vertices.len()
    }

    /// Rebuilds `m_vertices` and `non_incident` for the partial embedding
    /// `emb` (global edge ids, matching-order positions) at `step`.
    pub fn prepare(&mut self, data: &Hypergraph, step: &Step, emb: &[u32]) {
        self.gather.clear();
        for &e in emb {
            self.gather.extend_from_slice(data.edge_vertices(e.into()));
        }
        self.gather.sort_unstable();
        self.m_vertices.clear();
        for &v in &self.gather {
            match self.m_vertices.last_mut() {
                Some((last, count)) if *last == v => *count += 1,
                _ => self.m_vertices.push((v, 1)),
            }
        }

        self.non_incident.clear();
        for &pos in &step.nonadjacent_prev {
            self.non_incident.extend_from_slice(data.edge_vertices(emb[pos as usize].into()));
        }
        self.non_incident.sort_unstable();
        self.non_incident.dedup();
    }
}

/// Runs Algorithm 4: fills `state.candidates` with the local rows of the
/// step's partition that may extend `emb`. Returns the number of candidates.
///
/// [`ExpansionState::prepare`] must have been called for the same
/// `(step, emb)` first.
pub fn generate_candidates(
    data: &Hypergraph,
    step: &Step,
    emb: &[u32],
    state: &mut ExpansionState,
    config: &MatchConfig,
) -> usize {
    state.candidates.clear();
    let Some(pid) = step.partition else {
        return 0; // signature absent from the data: no candidates
    };
    let partition = data.partition(pid);

    if step.anchors.is_empty() {
        // Disconnected step (or an explicitly disconnected order): every row
        // of the partition is a candidate; validation sorts out the rest.
        state.candidates.extend(0..partition.len() as u32);
    } else {
        let mut first = true;
        let mut postings: Vec<&[u32]> = Vec::new();
        for anchor in &step.anchors {
            let prev = emb[anchor.prev_pos as usize];
            postings.clear();
            for &v in data.edge_vertices(prev.into()) {
                // V_incdt filter: label, embedding degree, not in V_n_incdt.
                if data.label(v.into()) != anchor.label
                    || state.embedding_degree(v) != anchor.required_degree
                    || state.non_incident.binary_search(&v).is_ok()
                {
                    continue;
                }
                let rows = partition.incident_rows(v);
                if !rows.is_empty() {
                    postings.push(rows);
                }
            }
            if postings.is_empty() {
                state.candidates.clear();
                return 0;
            }
            // One C' element: the union over qualifying vertices.
            build_union(&postings, &mut state.union, &mut state.tmp);
            if first {
                std::mem::swap(&mut state.candidates, &mut state.union);
                first = false;
            } else {
                setops::intersect_into(&state.candidates, &state.union, &mut state.tmp);
                std::mem::swap(&mut state.candidates, &mut state.tmp);
            }
            if state.candidates.is_empty() {
                return 0;
            }
        }
    }

    if config.prune_non_incident && !state.non_incident.is_empty() {
        // Eager Observation V.3: drop candidates touching forbidden
        // vertices. `state.union` is reused for the forbidden-row union.
        let mut postings: Vec<&[u32]> = Vec::new();
        for &v in &state.non_incident {
            let rows = partition.incident_rows(v);
            if !rows.is_empty() {
                postings.push(rows);
            }
        }
        if !postings.is_empty() {
            build_union(&postings, &mut state.union, &mut state.tmp);
            setops::difference_into(&state.candidates, &state.union, &mut state.tmp);
            std::mem::swap(&mut state.candidates, &mut state.tmp);
        }
    }

    state.candidates.len()
}

/// Unions `postings` into `out`, using `tmp` as scratch.
fn build_union(postings: &[&[u32]], out: &mut Vec<u32>, tmp: &mut Vec<u32>) {
    match postings {
        [] => out.clear(),
        [only] => {
            out.clear();
            out.extend_from_slice(only);
        }
        [a, b] => setops::union_into(a, b, out),
        many => {
            setops::union_into(many[0], many[1], out);
            for s in &many[2..] {
                setops::union_into(out, s, tmp);
                std::mem::swap(out, tmp);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Planner;
    use crate::query::QueryGraph;
    use hgmatch_hypergraph::{HypergraphBuilder, Label};

    fn paper_data() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1, 2, 0] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap(); // e0 (paper e1)
        b.add_edge(vec![4, 6]).unwrap(); // e1 (paper e2)
        b.add_edge(vec![0, 1, 2]).unwrap(); // e2 (paper e3)
        b.add_edge(vec![3, 5, 6]).unwrap(); // e3 (paper e4)
        b.add_edge(vec![0, 1, 4, 6]).unwrap(); // e4 (paper e5)
        b.add_edge(vec![2, 3, 4, 5]).unwrap(); // e5 (paper e6)
        b.build().unwrap()
    }

    fn paper_query() -> QueryGraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![0, 1, 3, 4]).unwrap();
        QueryGraph::new(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn paper_example_v1() {
        // Example V.1: ϕ = (q0, q1, q2), m = (e1, e3) in paper ids —
        // (e0, e2) in ours. Candidates for q2 must be {e5 (paper)} = row of
        // our e4 in its partition.
        let data = paper_data();
        let query = paper_query();
        let plan = Planner::plan_with_order(&query, &data, vec![0, 1, 2]).unwrap();
        let step = &plan.steps()[2];
        let emb = [0u32, 2]; // our e0 (paper e1), e2 (paper e3)

        let mut state = ExpansionState::new();
        state.prepare(&data, step, &emb);
        let n = generate_candidates(&data, step, &emb, &mut state, &MatchConfig::default());
        assert_eq!(n, 1);
        let partition = data.partition(step.partition.unwrap());
        let globals: Vec<u32> =
            state.candidates.iter().map(|&r| partition.global_id(r).raw()).collect();
        assert_eq!(globals, vec![4]); // paper e5
    }

    #[test]
    fn prepare_builds_embedding_degrees() {
        let data = paper_data();
        let query = paper_query();
        let plan = Planner::plan_with_order(&query, &data, vec![0, 1, 2]).unwrap();
        let mut state = ExpansionState::new();
        state.prepare(&data, &plan.steps()[2], &[0, 2]);
        // m = {e0 {2,4}, e2 {0,1,2}} → v2 appears twice.
        assert_eq!(state.embedding_degree(2), 2);
        assert_eq!(state.embedding_degree(0), 1);
        assert_eq!(state.embedding_degree(4), 1);
        assert_eq!(state.embedding_degree(9), 0);
        assert_eq!(state.num_vertices(), 4);
        assert!(state.contains_vertex(4));
        assert!(!state.contains_vertex(6));
    }

    #[test]
    fn second_step_candidates() {
        // After matching q0 → e0 {v2,v4}, candidates for q1 {A,A,C} must be
        // incident to v2 (the A vertex of e0 with the right partial degree):
        // only e2 {0,1,2} qualifies (e3 does not touch v2).
        let data = paper_data();
        let query = paper_query();
        let plan = Planner::plan_with_order(&query, &data, vec![0, 1, 2]).unwrap();
        let step = &plan.steps()[1];
        let emb = [0u32];
        let mut state = ExpansionState::new();
        state.prepare(&data, step, &emb);
        let n = generate_candidates(&data, step, &emb, &mut state, &MatchConfig::default());
        let partition = data.partition(step.partition.unwrap());
        let globals: Vec<u32> =
            state.candidates.iter().map(|&r| partition.global_id(r).raw()).collect();
        assert_eq!(n, 1);
        assert_eq!(globals, vec![2]);
    }

    #[test]
    fn missing_partition_yields_nothing() {
        let data = paper_data();
        // Query with a signature {B,B} absent from the data.
        let mut b = HypergraphBuilder::new();
        b.add_vertices(2, Label::new(1));
        b.add_edge(vec![0, 1]).unwrap();
        let q = QueryGraph::new(&b.build().unwrap()).unwrap();
        let plan = Planner::plan(&q, &data).unwrap();
        assert!(plan.is_infeasible());
        let mut state = ExpansionState::new();
        state.prepare(&data, &plan.steps()[0], &[]);
        let n =
            generate_candidates(&data, &plan.steps()[0], &[], &mut state, &MatchConfig::default());
        assert_eq!(n, 0);
    }

    #[test]
    fn eager_non_incident_pruning_drops_rows() {
        // Disconnected query: two {A,B} edges. After matching the first to
        // e0 {v2,v4}, the second step has no anchors; with eager pruning the
        // candidate set must exclude rows touching v2 or v4.
        let data = paper_data();
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 1, 0, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![0, 1]).unwrap();
        b.add_edge(vec![2, 3]).unwrap();
        let q = QueryGraph::new(&b.build().unwrap()).unwrap();
        let plan = Planner::plan(&q, &data).unwrap();
        let step = &plan.steps()[1];
        assert!(step.anchors.is_empty());
        let emb = [0u32]; // e0 = {v2, v4}

        let mut state = ExpansionState::new();
        state.prepare(&data, step, &emb);

        // Without pruning: both {A,B} rows are candidates.
        let n = generate_candidates(&data, step, &emb, &mut state, &MatchConfig::default());
        assert_eq!(n, 2);

        // With pruning: e0 shares v2/v4, e1 = {v4,v6} shares v4 → none left.
        let cfg = MatchConfig::default().with_prune_non_incident(true);
        state.prepare(&data, step, &emb);
        let n = generate_candidates(&data, step, &emb, &mut state, &cfg);
        assert_eq!(n, 0);
    }

    #[test]
    fn second_embedding_path_found() {
        // The paper's second embedding is (e2, e4, e6) in its 1-indexed ids
        // = our (e1, e3, e5). Walk it step by step: q0 → e1 {v4,v6}, then
        // q1 {A,A,C} must pick e3 {3,5,6} (v6 anchors it; v3/v6 degree
        // filtering rules out e2), then q2 must pick exactly e5.
        let data = paper_data();
        let query = paper_query();
        let plan = Planner::plan_with_order(&query, &data, vec![0, 1, 2]).unwrap();
        let mut state = ExpansionState::new();

        let step1 = &plan.steps()[1];
        let emb1 = [1u32];
        state.prepare(&data, step1, &emb1);
        let n = generate_candidates(&data, step1, &emb1, &mut state, &MatchConfig::default());
        let partition = data.partition(step1.partition.unwrap());
        let globals: Vec<u32> =
            state.candidates.iter().map(|&r| partition.global_id(r).raw()).collect();
        assert_eq!((n, globals), (1, vec![3]));

        let step2 = &plan.steps()[2];
        let emb2 = [1u32, 3];
        state.prepare(&data, step2, &emb2);
        let n = generate_candidates(&data, step2, &emb2, &mut state, &MatchConfig::default());
        let partition = data.partition(step2.partition.unwrap());
        let globals: Vec<u32> =
            state.candidates.iter().map(|&r| partition.global_id(r).raw()).collect();
        // The degree filter (Observation V.4) rejects e4 even though v4 is
        // shared: within (e1, e3), v6 has embedding degree 2 but u0/u2's
        // partial-query degrees demand 1, so only v3/v5 anchor — both point
        // at e5 alone.
        assert_eq!((n, globals), (1, vec![5]));
    }
}
