//! Candidate hyperedge generation — the paper's Algorithm 4.
//!
//! Given a partial embedding `m` and the next query hyperedge `eq`, the
//! candidates are data hyperedges that
//!
//! * live in the partition with signature `S(eq)` (Observation V.1),
//! * are incident, for every *anchor* — a `(previously matched adjacent
//!   query edge e, shared vertex u ∈ e ∩ eq)` pair — to at least one vertex
//!   of `f(e)` that carries `u`'s label and has matching degree within the
//!   partial embedding (Observations V.2 and V.4),
//! * and (optionally, eager Observation V.3) touch no vertex matched by a
//!   non-adjacent query edge.
//!
//! Everything is posting-list algebra: per anchor a *union* of `he(v,
//! S(eq))` lists, then an *intersection* across anchors, and optionally a
//! *difference* against the non-incident union — exactly the three set
//! operations the paper highlights. Each union picks the cheaper of two
//! representations per anchor (DESIGN.md §5.5): the k-way sorted-list merge
//! of [`setops::union_many_into`], or a [`Bitmap`] accumulator over the
//! partition's row space when the postings are dense (hub vertices carry
//! precomputed bitmaps in the inverted index, OR-ing 64 rows per
//! instruction). Mid-density keys arrive as delta-bitpacked
//! [`CompressedPostings`](hgmatch_hypergraph::compressed::CompressedPostings)
//! (DESIGN.md §14): single-posting anchors run the
//! *fused* kernels of [`setops`] that decode one block at a time into a
//! stack scratch, multi-posting unions decode into reused arena buffers.

use hgmatch_hypergraph::bitmap::Bitmap;
use hgmatch_hypergraph::compressed::BLOCK_LEN;
use hgmatch_hypergraph::hypergraph::Hypergraph;
use hgmatch_hypergraph::setops;

use crate::config::MatchConfig;
use crate::plan::Step;
use crate::scan;

use hgmatch_hypergraph::inverted::{Posting, MIN_BITMAP_ROWS};

/// The bitmap accumulator is chosen when the postings to union hold at
/// least `rows / LIST_DENSITY_DIV` entries (or any of them already has a
/// precomputed bitmap).
const LIST_DENSITY_DIV: usize = 16;

/// Candidate rows emitted (or decoded) between `abort()` probes inside
/// generation. The expansion loop probes every `ABORT_PROBE` *validated*
/// candidates, but generation itself can emit far more in one call — a
/// disconnected step materialises the whole partition, and a compressed
/// posting's width-0 run blocks decode [`BLOCK_LEN`] rows apiece with
/// almost no work in between (DESIGN.md §14) — so the anchor-less scan,
/// blockwise decodes and bitmap unions all probe at least once per this
/// many entries. Matches the expansion loop's cadence
/// (`engine::task::ABORT_PROBE`), keeping the worst-case candidate budget
/// between probes bounded by the same constant.
const GEN_ABORT_PROBE: usize = 1024;

/// Compressed blocks decoded between probes
/// (`GEN_ABORT_PROBE / BLOCK_LEN` of them span one probe budget).
const GEN_PROBE_BLOCKS: usize = GEN_ABORT_PROBE / BLOCK_LEN;

/// One distinct vertex of the partial embedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MVertex {
    /// The data vertex id.
    pub v: u32,
    /// `d_Hm(v)`: its degree within the partial embedding.
    pub degree: u32,
    /// Bit `j` set ⇔ the edge at matching-order position `j` contains `v`.
    /// This is the precomputed prev-edge membership set that validation
    /// (Algorithm 5) folds into vertex profiles without re-searching every
    /// previous edge.
    pub mask: u64,
}

/// The sorted vertex multiset of one embedding prefix.
#[derive(Debug, Default, Clone)]
struct Level {
    /// The data edge matched at this position (cache key).
    edge: u32,
    /// Distinct vertices of the prefix `emb[..=pos]`, sorted by id.
    m: Vec<MVertex>,
}

/// Per-expansion state shared between candidate generation and validation.
///
/// The vertex multiset is maintained as a *stack of levels*, one per
/// embedding prefix: preparing for an embedding that extends (or shares a
/// prefix with) the previously prepared one only merges the new edges'
/// vertices instead of re-sorting the whole embedding — under the engines'
/// depth-first order almost every preparation is a single `O(|V(m)|)` merge
/// (DESIGN.md §6.3).
#[derive(Debug, Default)]
pub struct ExpansionState {
    /// Multiset stack; `levels[p]` covers `emb[..=p]`.
    levels: Vec<Level>,
    /// Levels currently valid (the stack is reused, not truncated).
    depth: usize,
    /// [`Hypergraph::uid`] the cached levels were built against (0 = none).
    /// Level reuse compares global edge ids, which are only meaningful
    /// within one snapshot — the serving pool's per-worker scratch outlives
    /// queries pinned to *different* epochs, whose compaction may have
    /// remapped ids, so a uid change must drop the cache.
    data_uid: u64,
    /// Sorted vertices matched by non-adjacent previous edges
    /// (`V_n_incdt` of Algorithm 4 line 1). Rebuilt per preparation.
    pub non_incident: Vec<u32>,
    /// Output: candidate local rows in the step's partition.
    pub candidates: Vec<u32>,
    // Scratch buffers (allocated once, reused across expansions).
    union: Vec<u32>,
    tmp: Vec<u32>,
    mw: setops::MultiwayScratch,
    acc_bits: Bitmap,
    anchor_bits: Bitmap,
    /// Decode buffers for compressed postings feeding a k-way list merge
    /// (single compressed postings never land here — they go through the
    /// fused kernels instead).
    decode_arena: Vec<Vec<u32>>,
}

static EMPTY_LEVEL: &[MVertex] = &[];

impl ExpansionState {
    /// Creates empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current embedding's distinct vertices, sorted by id.
    #[inline]
    pub fn vertices(&self) -> &[MVertex] {
        if self.depth == 0 {
            EMPTY_LEVEL
        } else {
            &self.levels[self.depth - 1].m
        }
    }

    /// Looks up the [`MVertex`] entry of `v`, if it is in the embedding.
    #[inline]
    pub fn vertex_entry(&self, v: u32) -> Option<&MVertex> {
        let m = self.vertices();
        match m.binary_search_by_key(&v, |e| e.v) {
            Ok(i) => Some(&m[i]),
            Err(_) => None,
        }
    }

    /// `d_Hm(v)`: degree of data vertex `v` within the partial embedding.
    #[inline]
    pub fn embedding_degree(&self, v: u32) -> u32 {
        self.vertex_entry(v).map_or(0, |e| e.degree)
    }

    /// Whether `v` already occurs in the partial embedding.
    #[inline]
    pub fn contains_vertex(&self, v: u32) -> bool {
        self.vertex_entry(v).is_some()
    }

    /// `|V(Hm)|`: distinct vertices in the partial embedding.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vertices().len()
    }

    /// Takes the accumulator bitmap's backing words after a
    /// [`GenOutput::Dense`] return (bit `i` = candidate row `i`); the
    /// scratch bitmap re-grows on its next reset.
    pub fn take_acc_words(&mut self) -> Vec<u64> {
        self.acc_bits.take_words()
    }

    /// Rebuilds the state for the partial embedding `emb` (global edge ids,
    /// matching-order positions) at `step`.
    ///
    /// Levels shared with the previously prepared embedding are reused; only
    /// positions where `emb` diverges are (re)built, each by one linear
    /// merge of the new edge's vertices into the previous level.
    pub fn prepare(&mut self, data: &Hypergraph, step: &Step, emb: &[u32]) {
        // Cached levels describe edge ids of the snapshot they were built
        // against; against any other snapshot (even an equal-content one)
        // the ids may denote different edges, so the cache is dropped.
        if self.data_uid != data.uid() {
            self.data_uid = data.uid();
            self.depth = 0;
        }
        // Longest prefix of valid levels matching `emb`.
        let mut keep = 0usize;
        while keep < self.depth && keep < emb.len() && self.levels[keep].edge == emb[keep] {
            keep += 1;
        }
        for pos in keep..emb.len() {
            // Split `levels` so we can read level `pos-1` while writing
            // level `pos`.
            if self.levels.len() == pos {
                self.levels.push(Level::default());
            }
            let (prev, rest) = self.levels.split_at_mut(pos);
            let prev_m: &[MVertex] = if pos == 0 {
                EMPTY_LEVEL
            } else {
                &prev[pos - 1].m
            };
            let level = &mut rest[0];
            level.edge = emb[pos];
            merge_edge(
                prev_m,
                data.edge_vertices(emb[pos].into()),
                1u64 << pos,
                &mut level.m,
            );
        }
        self.depth = emb.len();

        self.non_incident.clear();
        for &pos in &step.nonadjacent_prev {
            self.non_incident
                .extend_from_slice(data.edge_vertices(emb[pos as usize].into()));
        }
        self.non_incident.sort_unstable();
        self.non_incident.dedup();
    }
}

/// Merges a sorted edge-vertex list into a sorted multiset level:
/// `out = prev ⊎ vs`, tagging merged-in vertices with `bit`.
fn merge_edge(prev: &[MVertex], vs: &[u32], bit: u64, out: &mut Vec<MVertex>) {
    out.clear();
    out.reserve(prev.len() + vs.len());
    let (mut i, mut j) = (0, 0);
    while i < prev.len() && j < vs.len() {
        let e = prev[i];
        match e.v.cmp(&vs[j]) {
            std::cmp::Ordering::Less => {
                out.push(e);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(MVertex {
                    v: vs[j],
                    degree: 1,
                    mask: bit,
                });
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(MVertex {
                    v: e.v,
                    degree: e.degree + 1,
                    mask: e.mask | bit,
                });
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&prev[i..]);
    out.extend(vs[j..].iter().map(|&v| MVertex {
        v,
        degree: 1,
        mask: bit,
    }));
}

/// Runs Algorithm 4: fills `state.candidates` with the local rows of the
/// step's partition that may extend `emb`. Returns the number of candidates.
///
/// [`ExpansionState::prepare`] must have been called for the same
/// `(step, emb)` first.
pub fn generate_candidates(
    data: &Hypergraph,
    step: &Step,
    emb: &[u32],
    state: &mut ExpansionState,
    config: &MatchConfig,
) -> usize {
    generate_candidates_with_abort(data, step, emb, state, config, &mut || false)
        .expect("a never-firing abort cannot interrupt generation")
}

/// [`generate_candidates`] with a cooperative stop signal: `abort` is
/// polled at anchor boundaries, every `GEN_PROBE_BLOCKS` compressed
/// blocks of a decode, and every `GEN_ABORT_PROBE` rows of the
/// anchor-less partition scan, so a cancel/timeout lands within a bounded
/// candidate budget even when a single posting decodes to millions of
/// rows. Returns `None` when aborted mid-generation — `state.candidates`
/// then holds partial garbage and the caller must emit nothing.
pub fn generate_candidates_with_abort(
    data: &Hypergraph,
    step: &Step,
    emb: &[u32],
    state: &mut ExpansionState,
    config: &MatchConfig,
    abort: &mut dyn FnMut() -> bool,
) -> Option<usize> {
    match generate_candidates_dense(data, step, emb, state, config, 0, abort)? {
        GenOutput::List(n) => Some(n),
        GenOutput::Dense(_) => unreachable!("dense_min = 0 always materialises"),
    }
}

/// How [`generate_candidates_dense`] returned its candidate set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenOutput {
    /// `state.candidates` holds the materialised sorted list (its length).
    List(usize),
    /// The candidates are still the accumulator *bitmap* (`count` set
    /// bits): generation ended on the dense representation and the set is
    /// at least `dense_min` large, so the caller opted to take the words
    /// ([`ExpansionState::take_acc_words`]) and materialise them with the
    /// shared reduce-then-scan extraction instead of paying a sequential
    /// decode here (DESIGN.md §18.1).
    Dense(u32),
}

/// [`generate_candidates_with_abort`] with a *dense handoff*: when the
/// final representation is the bitmap accumulator and it holds at least
/// `dense_min` candidates (`dense_min > 0`), the bitmap is left in place
/// and [`GenOutput::Dense`] returned instead of sequentially extracting a
/// row list — the engine then publishes the words as a splittable
/// parallel extraction. `dense_min = 0` disables the handoff.
pub fn generate_candidates_dense(
    data: &Hypergraph,
    step: &Step,
    emb: &[u32],
    state: &mut ExpansionState,
    config: &MatchConfig,
    dense_min: usize,
    abort: &mut dyn FnMut() -> bool,
) -> Option<GenOutput> {
    state.candidates.clear();
    let Some(pid) = step.partition else {
        return Some(GenOutput::List(0)); // signature absent from the data: no candidates
    };
    let partition = data.partition(pid);
    let rows = partition.len();

    if step.anchors.is_empty() {
        // Disconnected step (or an explicitly disconnected order): every row
        // of the partition is a candidate; validation sorts out the rest.
        // Chunked so a huge partition cannot pin the worker past a stop.
        let mut row = 0u32;
        while (row as usize) < rows {
            if abort() {
                return None;
            }
            let end = ((row as usize + GEN_ABORT_PROBE).min(rows)) as u32;
            state.candidates.extend(row..end);
            row = end;
        }
    } else {
        let mut first = true;
        let mut use_bits = false;
        let mut postings: Vec<Posting<'_>> = Vec::new();
        for anchor in &step.anchors {
            // Anchor boundary: every set operation below is bounded by the
            // operand sizes this probe (and the blockwise ones) guard.
            if abort() {
                return None;
            }
            let prev = emb[anchor.prev_pos as usize];
            postings.clear();
            let mut total = 0usize;
            let mut have_bits = false;
            for &v in data.edge_vertices(prev.into()) {
                // V_incdt filter: label, embedding degree, not in V_n_incdt.
                if data.label(v.into()) != anchor.label
                    || state.embedding_degree(v) != anchor.required_degree
                    || state.non_incident.binary_search(&v).is_ok()
                {
                    continue;
                }
                let posting = partition.incident_posting(v);
                if posting.is_empty() {
                    continue;
                }
                total += posting.len();
                have_bits |= posting.bits().is_some();
                postings.push(posting);
            }
            if postings.is_empty() {
                state.candidates.clear();
                return Some(GenOutput::List(0));
            }

            // Representation switch (DESIGN.md §5.5): a bitmap accumulator
            // when the postings are dense in the row space, the k-way list
            // merge otherwise.
            let dense = rows >= MIN_BITMAP_ROWS && (have_bits || total * LIST_DENSITY_DIV >= rows);

            if first {
                first = false;
                if dense {
                    use_bits = true;
                    if union_postings_into_bitmap(&postings, rows, &mut state.acc_bits, abort) {
                        return None;
                    }
                } else if let [Posting::Compressed(c)] = postings.as_slice() {
                    // Single compressed anchor: decode once, no merge —
                    // blockwise, probing at block boundaries so a huge
                    // posting (width-0 runs especially) cannot outrun a
                    // stop signal by the whole decode.
                    state.candidates.clear();
                    let mut scratch = [0u32; BLOCK_LEN];
                    for bi in 0..c.num_blocks() {
                        if bi % GEN_PROBE_BLOCKS == GEN_PROBE_BLOCKS - 1 && abort() {
                            return None;
                        }
                        state
                            .candidates
                            .extend_from_slice(c.decode_block(bi, &mut scratch));
                    }
                } else {
                    let mut lists: Vec<&[u32]> = Vec::with_capacity(postings.len());
                    if postings_as_lists(&postings, &mut state.decode_arena, &mut lists, abort) {
                        return None;
                    }
                    setops::union_many_into(&mut lists, &mut state.candidates, &mut state.mw);
                }
            } else if use_bits {
                // C' ∩ next anchor union, word-wise.
                if union_postings_into_bitmap(&postings, rows, &mut state.anchor_bits, abort) {
                    return None;
                }
                state.acc_bits.intersect_assign(&state.anchor_bits);
                if state.acc_bits.is_empty() {
                    return Some(GenOutput::List(0));
                }
            } else if dense {
                // Sorted-list accumulator filtered through the anchor's
                // bitmap union: O(|C'|) membership tests, no materialised
                // union.
                if union_postings_into_bitmap(&postings, rows, &mut state.anchor_bits, abort) {
                    return None;
                }
                {
                    // Disjoint field borrows: the membership closure reads
                    // `anchor_bits` while the compact writes `tmp`.
                    let ExpansionState {
                        anchor_bits,
                        candidates,
                        tmp,
                        ..
                    } = state;
                    scan::compact_into(candidates, tmp, |i| anchor_bits.contains(i));
                }
                std::mem::swap(&mut state.candidates, &mut state.tmp);
                if state.candidates.is_empty() {
                    return Some(GenOutput::List(0));
                }
            } else if let [Posting::Compressed(c)] = postings.as_slice() {
                // Single compressed anchor: fused decode-and-intersect, one
                // block at a time against the accumulator (output bounded
                // by the accumulator, which earlier probes already bounded).
                setops::intersect_compressed_into(c, &state.candidates, &mut state.tmp);
                std::mem::swap(&mut state.candidates, &mut state.tmp);
                if state.candidates.is_empty() {
                    return Some(GenOutput::List(0));
                }
            } else {
                let mut lists: Vec<&[u32]> = Vec::with_capacity(postings.len());
                if postings_as_lists(&postings, &mut state.decode_arena, &mut lists, abort) {
                    return None;
                }
                setops::union_many_into(&mut lists, &mut state.union, &mut state.mw);
                setops::intersect_into(&state.candidates, &state.union, &mut state.tmp);
                std::mem::swap(&mut state.candidates, &mut state.tmp);
                if state.candidates.is_empty() {
                    return Some(GenOutput::List(0));
                }
            }
        }
        if use_bits {
            if abort() {
                return None;
            }
            // Still dense: apply eager Observation V.3 word-wise (one OR
            // pass + one AND-NOT pass) instead of falling through to the
            // list-difference below, then decide the output representation.
            if config.prune_non_incident && !state.non_incident.is_empty() {
                let mut postings: Vec<Posting<'_>> = Vec::new();
                for &v in &state.non_incident {
                    let posting = partition.incident_posting(v);
                    if !posting.is_empty() {
                        postings.push(posting);
                    }
                }
                if !postings.is_empty() {
                    if union_postings_into_bitmap(&postings, rows, &mut state.anchor_bits, abort) {
                        return None;
                    }
                    state.acc_bits.difference_assign(&state.anchor_bits);
                }
            }
            let count = state.acc_bits.count_ones();
            if count == 0 {
                return Some(GenOutput::List(0));
            }
            if dense_min > 0 && count as usize >= dense_min {
                // Dense handoff: the caller takes the words and
                // materialises them as a shared parallel extraction.
                return Some(GenOutput::Dense(count));
            }
            scan::extract_bits_into(state.acc_bits.words(), &mut state.candidates);
            return Some(GenOutput::List(state.candidates.len()));
        }
    }

    if config.prune_non_incident && !state.non_incident.is_empty() {
        if abort() {
            return None;
        }
        // Eager Observation V.3: drop candidates touching forbidden
        // vertices, with the same representation switch.
        let mut postings: Vec<Posting<'_>> = Vec::new();
        let mut total = 0usize;
        let mut have_bits = false;
        for &v in &state.non_incident {
            let posting = partition.incident_posting(v);
            if posting.is_empty() {
                continue;
            }
            total += posting.len();
            have_bits |= posting.bits().is_some();
            postings.push(posting);
        }
        if !postings.is_empty() {
            let dense = rows >= MIN_BITMAP_ROWS && (have_bits || total * LIST_DENSITY_DIV >= rows);
            if dense {
                if union_postings_into_bitmap(&postings, rows, &mut state.anchor_bits, abort) {
                    return None;
                }
                state
                    .anchor_bits
                    .filter_list_out(&state.candidates, &mut state.tmp);
            } else if let [Posting::Compressed(c)] = postings.as_slice() {
                // Fused difference: subtract the compressed union one
                // decoded block at a time (output bounded by the already
                // probe-bounded candidate list).
                setops::difference_list_compressed_into(&state.candidates, c, &mut state.tmp);
            } else {
                let mut lists: Vec<&[u32]> = Vec::with_capacity(postings.len());
                if postings_as_lists(&postings, &mut state.decode_arena, &mut lists, abort) {
                    return None;
                }
                setops::union_many_into(&mut lists, &mut state.union, &mut state.mw);
                setops::difference_into(&state.candidates, &state.union, &mut state.tmp);
            }
            std::mem::swap(&mut state.candidates, &mut state.tmp);
        }
    }

    Some(GenOutput::List(state.candidates.len()))
}

/// Unions postings of any representation into `acc`, reset to the
/// partition's row domain first: precomputed bitmaps word-wise OR, sorted
/// lists as bit sets, compressed postings one decoded block at a time
/// through a stack scratch (never materialising the full list). Probes
/// `abort` per posting and every [`GEN_PROBE_BLOCKS`] compressed blocks;
/// returns `true` when aborted mid-union (`acc` is then partial garbage).
fn union_postings_into_bitmap(
    postings: &[Posting<'_>],
    rows: usize,
    acc: &mut Bitmap,
    abort: &mut dyn FnMut() -> bool,
) -> bool {
    acc.reset(rows as u32);
    let mut scratch = [0u32; BLOCK_LEN];
    for p in postings {
        if abort() {
            return true;
        }
        match p {
            Posting::Dense { bits, .. } => acc.union_assign(bits),
            Posting::List(l) => acc.insert_list(l),
            Posting::Compressed(c) => {
                for bi in 0..c.num_blocks() {
                    if bi % GEN_PROBE_BLOCKS == GEN_PROBE_BLOCKS - 1 && abort() {
                        return true;
                    }
                    acc.insert_list(c.decode_block(bi, &mut scratch));
                }
            }
        }
    }
    false
}

/// Exposes `postings` as plain sorted slices for a k-way merge, decoding
/// compressed ones into reused `arena` buffers first (so the borrows into
/// the arena are taken only after every decode is done). Probes `abort`
/// per posting and every [`GEN_PROBE_BLOCKS`] decoded blocks; returns
/// `true` when aborted mid-decode (`lists` is then left empty/partial).
fn postings_as_lists<'a>(
    postings: &[Posting<'a>],
    arena: &'a mut Vec<Vec<u32>>,
    lists: &mut Vec<&'a [u32]>,
    abort: &mut dyn FnMut() -> bool,
) -> bool {
    let ncomp = postings
        .iter()
        .filter(|p| matches!(p, Posting::Compressed(_)))
        .count();
    if arena.len() < ncomp {
        arena.resize_with(ncomp, Vec::new);
    }
    let mut ci = 0usize;
    let mut scratch = [0u32; BLOCK_LEN];
    for p in postings {
        if let Posting::Compressed(c) = p {
            if abort() {
                return true;
            }
            arena[ci].clear();
            for bi in 0..c.num_blocks() {
                if bi % GEN_PROBE_BLOCKS == GEN_PROBE_BLOCKS - 1 && abort() {
                    return true;
                }
                arena[ci].extend_from_slice(c.decode_block(bi, &mut scratch));
            }
            ci += 1;
        }
    }
    let arena: &'a [Vec<u32>] = arena;
    let mut ci = 0usize;
    for p in postings {
        match p {
            Posting::List(l) => lists.push(l),
            Posting::Dense { list, .. } => lists.push(list),
            Posting::Compressed(_) => {
                lists.push(&arena[ci]);
                ci += 1;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Planner;
    use crate::query::QueryGraph;
    use hgmatch_hypergraph::{HypergraphBuilder, Label};

    fn paper_data() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1, 2, 0] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap(); // e0 (paper e1)
        b.add_edge(vec![4, 6]).unwrap(); // e1 (paper e2)
        b.add_edge(vec![0, 1, 2]).unwrap(); // e2 (paper e3)
        b.add_edge(vec![3, 5, 6]).unwrap(); // e3 (paper e4)
        b.add_edge(vec![0, 1, 4, 6]).unwrap(); // e4 (paper e5)
        b.add_edge(vec![2, 3, 4, 5]).unwrap(); // e5 (paper e6)
        b.build().unwrap()
    }

    fn paper_query() -> QueryGraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![0, 1, 3, 4]).unwrap();
        QueryGraph::new(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn paper_example_v1() {
        // Example V.1: ϕ = (q0, q1, q2), m = (e1, e3) in paper ids —
        // (e0, e2) in ours. Candidates for q2 must be {e5 (paper)} = row of
        // our e4 in its partition.
        let data = paper_data();
        let query = paper_query();
        let plan = Planner::plan_with_order(&query, &data, vec![0, 1, 2]).unwrap();
        let step = &plan.steps()[2];
        let emb = [0u32, 2]; // our e0 (paper e1), e2 (paper e3)

        let mut state = ExpansionState::new();
        state.prepare(&data, step, &emb);
        let n = generate_candidates(&data, step, &emb, &mut state, &MatchConfig::default());
        assert_eq!(n, 1);
        let partition = data.partition(step.partition.unwrap());
        let globals: Vec<u32> = state
            .candidates
            .iter()
            .map(|&r| partition.global_id(r).raw())
            .collect();
        assert_eq!(globals, vec![4]); // paper e5
    }

    #[test]
    fn prepare_builds_embedding_degrees() {
        let data = paper_data();
        let query = paper_query();
        let plan = Planner::plan_with_order(&query, &data, vec![0, 1, 2]).unwrap();
        let mut state = ExpansionState::new();
        state.prepare(&data, &plan.steps()[2], &[0, 2]);
        // m = {e0 {2,4}, e2 {0,1,2}} → v2 appears twice.
        assert_eq!(state.embedding_degree(2), 2);
        assert_eq!(state.embedding_degree(0), 1);
        assert_eq!(state.embedding_degree(4), 1);
        assert_eq!(state.embedding_degree(9), 0);
        assert_eq!(state.num_vertices(), 4);
        assert!(state.contains_vertex(4));
        assert!(!state.contains_vertex(6));
    }

    #[test]
    fn prepare_builds_membership_masks() {
        let data = paper_data();
        let query = paper_query();
        let plan = Planner::plan_with_order(&query, &data, vec![0, 1, 2]).unwrap();
        let mut state = ExpansionState::new();
        state.prepare(&data, &plan.steps()[2], &[0, 2]);
        // v2 ∈ e0 (position 0) and e2 (position 1); v4 ∈ e0 only; v0 ∈ e2.
        assert_eq!(state.vertex_entry(2).unwrap().mask, 0b11);
        assert_eq!(state.vertex_entry(4).unwrap().mask, 0b01);
        assert_eq!(state.vertex_entry(0).unwrap().mask, 0b10);
        assert!(state.vertex_entry(6).is_none());
    }

    #[test]
    fn prepare_is_incremental_across_prefixes() {
        // Preparing a sibling after a deep descent must still be correct:
        // the level stack rebuilds only from the divergence point.
        let data = paper_data();
        let query = paper_query();
        let plan = Planner::plan_with_order(&query, &data, vec![0, 1, 2]).unwrap();
        let mut fresh = ExpansionState::new();
        let mut reused = ExpansionState::new();

        let sequences: Vec<Vec<u32>> = vec![
            vec![0],
            vec![0, 2],
            vec![0, 2], // same again
            vec![0, 3], // sibling at depth 1
            vec![1, 3], // diverges at depth 0
            vec![1],    // shrink
            vec![1, 3], // regrow
        ];
        for emb in &sequences {
            let step = &plan.steps()[emb.len().min(2)];
            reused.prepare(&data, step, emb);
            fresh.prepare(&data, step, emb);
            // An independent, freshly built state must agree exactly.
            let mut fresh2 = ExpansionState::new();
            fresh2.prepare(&data, step, emb);
            assert_eq!(reused.vertices(), fresh2.vertices(), "emb {emb:?}");
            assert_eq!(reused.non_incident, fresh2.non_incident, "emb {emb:?}");
        }
    }

    #[test]
    fn prepare_drops_cache_across_snapshots() {
        // The same global edge id denotes *different* edges in different
        // snapshots (the dynamic writer's compaction remaps ids), and the
        // serving pool reuses one scratch across queries pinned to
        // different epochs: reusing a state against a second graph must
        // rebuild the level cache even though the edge-id prefix matches.
        let data_a = paper_data();
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1, 2, 0] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![0, 4]).unwrap(); // e0: same {A,B} signature as
                                         // data_a's e0 {2,4}, different set
        b.add_edge(vec![4, 6]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![3, 5, 6]).unwrap();
        b.add_edge(vec![0, 1, 4, 6]).unwrap();
        b.add_edge(vec![2, 3, 4, 5]).unwrap();
        let data_b = b.build().unwrap();

        let query = paper_query();
        let plan_a = Planner::plan_with_order(&query, &data_a, vec![0, 1, 2]).unwrap();
        let plan_b = Planner::plan_with_order(&query, &data_b, vec![0, 1, 2]).unwrap();

        let mut reused = ExpansionState::new();
        reused.prepare(&data_a, &plan_a.steps()[1], &[0]);
        assert!(reused.contains_vertex(2), "data_a's e0 is {{2,4}}");
        reused.prepare(&data_b, &plan_b.steps()[1], &[0]);

        let mut fresh = ExpansionState::new();
        fresh.prepare(&data_b, &plan_b.steps()[1], &[0]);
        assert_eq!(reused.vertices(), fresh.vertices());
        assert!(!reused.contains_vertex(2), "data_b's e0 is {{0,4}}");
    }

    #[test]
    fn second_step_candidates() {
        // After matching q0 → e0 {v2,v4}, candidates for q1 {A,A,C} must be
        // incident to v2 (the A vertex of e0 with the right partial degree):
        // only e2 {0,1,2} qualifies (e3 does not touch v2).
        let data = paper_data();
        let query = paper_query();
        let plan = Planner::plan_with_order(&query, &data, vec![0, 1, 2]).unwrap();
        let step = &plan.steps()[1];
        let emb = [0u32];
        let mut state = ExpansionState::new();
        state.prepare(&data, step, &emb);
        let n = generate_candidates(&data, step, &emb, &mut state, &MatchConfig::default());
        let partition = data.partition(step.partition.unwrap());
        let globals: Vec<u32> = state
            .candidates
            .iter()
            .map(|&r| partition.global_id(r).raw())
            .collect();
        assert_eq!(n, 1);
        assert_eq!(globals, vec![2]);
    }

    #[test]
    fn missing_partition_yields_nothing() {
        let data = paper_data();
        // Query with a signature {B,B} absent from the data.
        let mut b = HypergraphBuilder::new();
        b.add_vertices(2, Label::new(1));
        b.add_edge(vec![0, 1]).unwrap();
        let q = QueryGraph::new(&b.build().unwrap()).unwrap();
        let plan = Planner::plan(&q, &data).unwrap();
        assert!(plan.is_infeasible());
        let mut state = ExpansionState::new();
        state.prepare(&data, &plan.steps()[0], &[]);
        let n = generate_candidates(
            &data,
            &plan.steps()[0],
            &[],
            &mut state,
            &MatchConfig::default(),
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn eager_non_incident_pruning_drops_rows() {
        // Disconnected query: two {A,B} edges. After matching the first to
        // e0 {v2,v4}, the second step has no anchors; with eager pruning the
        // candidate set must exclude rows touching v2 or v4.
        let data = paper_data();
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 1, 0, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![0, 1]).unwrap();
        b.add_edge(vec![2, 3]).unwrap();
        let q = QueryGraph::new(&b.build().unwrap()).unwrap();
        let plan = Planner::plan(&q, &data).unwrap();
        let step = &plan.steps()[1];
        assert!(step.anchors.is_empty());
        let emb = [0u32]; // e0 = {v2, v4}

        let mut state = ExpansionState::new();
        state.prepare(&data, step, &emb);

        // Without pruning: both {A,B} rows are candidates.
        let n = generate_candidates(&data, step, &emb, &mut state, &MatchConfig::default());
        assert_eq!(n, 2);

        // With pruning: e0 shares v2/v4, e1 = {v4,v6} shares v4 → none left.
        let cfg = MatchConfig::default().with_prune_non_incident(true);
        state.prepare(&data, step, &emb);
        let n = generate_candidates(&data, step, &emb, &mut state, &cfg);
        assert_eq!(n, 0);
    }

    #[test]
    fn second_embedding_path_found() {
        // The paper's second embedding is (e2, e4, e6) in its 1-indexed ids
        // = our (e1, e3, e5). Walk it step by step: q0 → e1 {v4,v6}, then
        // q1 {A,A,C} must pick e3 {3,5,6} (v6 anchors it; v3/v6 degree
        // filtering rules out e2), then q2 must pick exactly e5.
        let data = paper_data();
        let query = paper_query();
        let plan = Planner::plan_with_order(&query, &data, vec![0, 1, 2]).unwrap();
        let mut state = ExpansionState::new();

        let step1 = &plan.steps()[1];
        let emb1 = [1u32];
        state.prepare(&data, step1, &emb1);
        let n = generate_candidates(&data, step1, &emb1, &mut state, &MatchConfig::default());
        let partition = data.partition(step1.partition.unwrap());
        let globals: Vec<u32> = state
            .candidates
            .iter()
            .map(|&r| partition.global_id(r).raw())
            .collect();
        assert_eq!((n, globals), (1, vec![3]));

        let step2 = &plan.steps()[2];
        let emb2 = [1u32, 3];
        state.prepare(&data, step2, &emb2);
        let n = generate_candidates(&data, step2, &emb2, &mut state, &MatchConfig::default());
        let partition = data.partition(step2.partition.unwrap());
        let globals: Vec<u32> = state
            .candidates
            .iter()
            .map(|&r| partition.global_id(r).raw())
            .collect();
        // The degree filter (Observation V.4) rejects e4 even though v4 is
        // shared: within (e1, e3), v6 has embedding degree 2 but u0/u2's
        // partial-query degrees demand 1, so only v3/v5 anchor — both point
        // at e5 alone.
        assert_eq!((n, globals), (1, vec![5]));
    }

    #[test]
    fn dense_partition_uses_bitmap_path_with_same_results() {
        // A large {A,B} partition around one hub vertex so the inverted
        // index materialises a bitmap and the anchor union takes the dense
        // path; a second step anchored on the hub must agree with the
        // list-only result of the small-partition equivalent.
        let n = 600u32;
        let mut b = HypergraphBuilder::new();
        b.add_vertex(Label::new(0)); // v0: hub, label A
        for _ in 0..n {
            b.add_vertex(Label::new(1)); // leaves, label B
        }
        for leaf in 1..=n {
            b.add_edge(vec![0, leaf]).unwrap(); // {A,B} × 600, all via v0
        }
        let data = b.build().unwrap();

        // Query: two {A,B} edges sharing the A vertex.
        let mut qb = HypergraphBuilder::new();
        qb.add_vertex(Label::new(0));
        qb.add_vertex(Label::new(1));
        qb.add_vertex(Label::new(1));
        qb.add_edge(vec![0, 1]).unwrap();
        qb.add_edge(vec![0, 2]).unwrap();
        let q = QueryGraph::new(&qb.build().unwrap()).unwrap();
        let plan = Planner::plan(&q, &data).unwrap();
        let step = &plan.steps()[1];

        let mut state = ExpansionState::new();
        let emb = [0u32];
        state.prepare(&data, step, &emb);
        let count = generate_candidates(&data, step, &emb, &mut state, &MatchConfig::default());
        // All rows except the matched edge itself remain candidates (the
        // duplicate is removed by validation, not generation).
        assert_eq!(count, n as usize);
        assert!(hgmatch_hypergraph::setops::is_strictly_sorted(
            &state.candidates
        ));

        // The partition's hub key is genuinely dense-represented (unless a
        // forced representation overrides the adaptive rule).
        if hgmatch_hypergraph::inverted::forced_repr().is_none() {
            let partition = data.partition(step.partition.unwrap());
            assert!(partition.incident_posting(0).bits().is_some());
        }
    }

    /// A hub-and-leaves {A,B} graph: `hubs` A vertices, `hubs * per_hub`
    /// {A,B} edges, hub `i` incident to every `per_hub`-th row — each hub
    /// posting has `per_hub` entries spread across the partition, which the
    /// adaptive representation rule keeps mid-density compressed whenever
    /// `per_hub * 32 < hubs * per_hub` (i.e. `hubs > 32`).
    fn hub_graph(hubs: u32, per_hub: u32) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for _ in 0..hubs {
            b.add_vertex(Label::new(0));
        }
        let leaves = hubs * per_hub;
        for _ in 0..leaves {
            b.add_vertex(Label::new(1));
        }
        for leaf in 0..leaves {
            b.add_edge(vec![leaf % hubs, hubs + leaf]).unwrap();
        }
        b.build().unwrap()
    }

    /// Two {A,B} query edges sharing the A vertex.
    fn hub_query() -> QueryGraph {
        let mut qb = HypergraphBuilder::new();
        qb.add_vertex(Label::new(0));
        qb.add_vertex(Label::new(1));
        qb.add_vertex(Label::new(1));
        qb.add_edge(vec![0, 1]).unwrap();
        qb.add_edge(vec![0, 2]).unwrap();
        QueryGraph::new(&qb.build().unwrap()).unwrap()
    }

    #[test]
    fn compressed_partition_matches_list_results() {
        // The same mid-density workload forced into each representation
        // must produce identical candidates: a hub A vertex whose posting
        // covers a thin slice of a large {A,B} partition, so the adaptive
        // rule picks the compressed blocks, and the anchor union runs the
        // fused kernels.
        let hubs = 48u32; // distinct A vertices spread across rows
        let per_hub = 96u32; // posting length per hub: compressed range
                             // (96 ≥ COMPRESSED_MIN_LEN, 96·32 < 48·96 rows)
        let mut b = HypergraphBuilder::new();
        for _ in 0..hubs {
            b.add_vertex(Label::new(0));
        }
        let leaves = hubs * per_hub;
        for _ in 0..leaves {
            b.add_vertex(Label::new(1));
        }
        for leaf in 0..leaves {
            b.add_edge(vec![leaf % hubs, hubs + leaf]).unwrap();
        }
        let data = b.build().unwrap();

        let mut qb = HypergraphBuilder::new();
        qb.add_vertex(Label::new(0));
        qb.add_vertex(Label::new(1));
        qb.add_vertex(Label::new(1));
        qb.add_edge(vec![0, 1]).unwrap();
        qb.add_edge(vec![0, 2]).unwrap();
        let q = QueryGraph::new(&qb.build().unwrap()).unwrap();
        let plan = Planner::plan(&q, &data).unwrap();
        let step = &plan.steps()[1];
        let partition = data.partition(step.partition.unwrap());

        if hgmatch_hypergraph::inverted::forced_repr().is_none() {
            assert_eq!(
                partition.incident_posting(0).repr(),
                hgmatch_hypergraph::ReprKind::Compressed,
                "hub posting should be mid-density compressed"
            );
        }

        let mut state = ExpansionState::new();
        let emb = [0u32]; // first {A,B} edge: hub 0's first leaf edge
        state.prepare(&data, step, &emb);
        let count = generate_candidates(&data, step, &emb, &mut state, &MatchConfig::default());
        assert_eq!(count, per_hub as usize, "one hub's rows are candidates");
        assert!(hgmatch_hypergraph::setops::is_strictly_sorted(
            &state.candidates
        ));
        // Oracle: the hub's decoded posting is exactly the candidate set.
        assert_eq!(
            state.candidates,
            partition.incident_posting(0).to_sorted(),
            "fused anchor union equals the decoded posting"
        );
    }

    /// An abort closure that returns `false` for the first `grace` probes
    /// and `true` from then on, counting every probe.
    fn probe_fuse(grace: u64) -> (std::rc::Rc<std::cell::Cell<u64>>, impl FnMut() -> bool) {
        let probes = std::rc::Rc::new(std::cell::Cell::new(0u64));
        let p = std::rc::Rc::clone(&probes);
        (probes, move || {
            p.set(p.get() + 1);
            p.get() > grace
        })
    }

    #[test]
    fn abort_bounds_compressed_decode_emission() {
        // Regression (cancellation latency, DESIGN.md §14): a multi-block
        // compressed hub posting must not decode past a raised stop by more
        // than one probe budget. hubs > 32 keeps the posting mid-density
        // (compressed under the adaptive rule; the CI repr-stress job also
        // replays this with HGMATCH_FORCE_REPR=compressed) and per_hub =
        // 1024 spans four blocks, so the blockwise decode crosses at least
        // one probe boundary.
        let data = hub_graph(40, 1024);
        let q = hub_query();
        let plan = Planner::plan(&q, &data).unwrap();
        let step = &plan.steps()[1];
        if hgmatch_hypergraph::inverted::forced_repr().is_none() {
            let partition = data.partition(step.partition.unwrap());
            assert_eq!(
                partition.incident_posting(0).repr(),
                hgmatch_hypergraph::ReprKind::Compressed,
                "hub posting should be mid-density compressed"
            );
        }

        let mut state = ExpansionState::new();
        let emb = [0u32];
        state.prepare(&data, step, &emb);

        // One grace probe: the anchor-boundary probe passes, the first
        // in-decode probe (whichever representation path takes it) fires.
        let (probes, mut abort) = probe_fuse(1);
        let out = generate_candidates_with_abort(
            &data,
            step,
            &emb,
            &mut state,
            &MatchConfig::default(),
            &mut abort,
        );
        assert_eq!(out, None, "a raised stop must interrupt generation");
        assert!(probes.get() >= 2, "generation must keep probing past entry");
        assert!(
            state.candidates.len() <= GEN_ABORT_PROBE,
            "at most one probe budget may be emitted past the stop, got {}",
            state.candidates.len()
        );

        // Sanity: without a stop the same expansion produces the full set.
        state.prepare(&data, step, &emb);
        let n = generate_candidates(&data, step, &emb, &mut state, &MatchConfig::default());
        assert_eq!(n, 1024);
    }

    #[test]
    fn abort_bounds_anchorless_scan_emission() {
        // A disconnected step materialises the whole partition (40960 rows
        // here); k grace probes must bound the emission to k probe budgets.
        let data = hub_graph(40, 1024);
        let mut qb = HypergraphBuilder::new();
        for &l in &[0u32, 1, 0, 1] {
            qb.add_vertex(Label::new(l));
        }
        qb.add_edge(vec![0, 1]).unwrap();
        qb.add_edge(vec![2, 3]).unwrap();
        let q = QueryGraph::new(&qb.build().unwrap()).unwrap();
        let plan = Planner::plan(&q, &data).unwrap();
        let step = &plan.steps()[1];
        assert!(step.anchors.is_empty());
        let emb = [0u32];

        let mut state = ExpansionState::new();
        state.prepare(&data, step, &emb);
        let (_, mut abort) = probe_fuse(3);
        let out = generate_candidates_with_abort(
            &data,
            step,
            &emb,
            &mut state,
            &MatchConfig::default(),
            &mut abort,
        );
        assert_eq!(out, None);
        assert!(
            state.candidates.len() <= 3 * GEN_ABORT_PROBE,
            "three grace probes bound the scan to three probe budgets, got {}",
            state.candidates.len()
        );
    }

    #[test]
    fn immediate_abort_emits_nothing() {
        let data = hub_graph(40, 1024);
        let q = hub_query();
        let plan = Planner::plan(&q, &data).unwrap();
        let step = &plan.steps()[1];
        let emb = [0u32];
        let mut state = ExpansionState::new();
        state.prepare(&data, step, &emb);
        let out = generate_candidates_with_abort(
            &data,
            step,
            &emb,
            &mut state,
            &MatchConfig::default(),
            &mut || true,
        );
        assert_eq!(out, None);
        assert!(state.candidates.is_empty());
    }
}
