//! Adaptive mid-query re-optimization (DESIGN.md §15).
//!
//! The cost-based planner of [`crate::cost`] estimates once and the engine
//! executes the resulting order to completion — a single bad estimate
//! (typically a hub fan-out hiding behind a label-level average) locks the
//! whole run into a frontier that is orders of magnitude wider than
//! predicted. This module closes the loop at runtime:
//!
//! * **Feedback.** Workers attribute produced candidates and validated
//!   partials to the plan position that generated them (shared atomic
//!   accumulators, one `fetch_add` per completed expansion — not per
//!   candidate).
//! * **Trigger.** When the observed candidate count at a position crosses
//!   `replan_ratio ×` the plan's own estimate
//!   ([`crate::Plan::est_candidates`]), the observing worker re-runs the
//!   order search over the *unmatched suffix*: the matched prefix is
//!   pinned (those partials already exist in flight), the cost model is
//!   rebuilt from current statistics with each prefix edge scaled to its
//!   observed yield, and [`CostModel::best_order_with_prefix`] enumerates
//!   only the remaining edges.
//! * **Switch.** An adopted suffix becomes a new *plan version*. Nothing
//!   in flight is torn down: the order-invariance property (proved by
//!   `tests/prop_orders.rs`) holds per subtree, so a task whose matched
//!   prefix agrees with the new order simply continues under the new plan,
//!   while a task born under an order that already diverged past its depth
//!   finishes its subtree under its birth version. Each version delivers
//!   through its own `to_query_order`, so the embedding multiset is
//!   invariant across the switch.
//!
//! Coordination with the work-assisting scheduler (DESIGN.md §12): a
//! published split shares a concrete candidate list generated under one
//! plan version, so re-planning is suppressed while any split is live
//! (`live_splits`), and assist tickets always resolve to exactly the
//! version that generated their candidates. The trigger re-checks at the
//! next step boundary once the splits drain.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use hgmatch_hypergraph::Hypergraph;
use parking_lot::Mutex;

use crate::cost::CostModel;
use crate::engine::task::Task;
use crate::metrics::MAX_PLAN_STEPS;
use crate::plan::{Plan, Planner};
use crate::query::QueryGraph;

/// The adopted plan versions of one adaptive run.
#[derive(Debug)]
struct Versions {
    /// `plans[0]` is the base plan; later entries are adopted re-plans.
    plans: Vec<Arc<Plan>>,
    /// `agree[v]` = length of the common order prefix between version `v`
    /// and the latest version — the upgrade rule's input.
    agree: Vec<u32>,
}

/// Shared adaptive re-optimization state for one query execution.
///
/// Owns a clone of the query graph (re-planning rebuilds a
/// [`CostModel`], which borrows the query) and the full version table;
/// workers interact through three lock-free paths — [`observe`],
/// [`resolve`], split bracketing — and fall into the version mutex only
/// after a re-plan has actually been adopted.
///
/// [`observe`]: AdaptiveState::observe
/// [`resolve`]: AdaptiveState::resolve
#[derive(Debug)]
pub(crate) struct AdaptiveState {
    query: QueryGraph,
    base: Arc<Plan>,
    ratio: f64,
    versions: Mutex<Versions>,
    /// Mirrors `versions.plans.len()`; `1` is the no-replan fast path that
    /// skips the mutex entirely.
    num_versions: AtomicUsize,
    /// Latest plan's per-position estimates as `f64` bit patterns,
    /// refreshed at adoption so the trigger always compares against the
    /// plan currently being extended.
    ests: Vec<AtomicU64>,
    /// Observed candidates per position, accumulated across all workers
    /// and plan versions.
    obs_candidates: Vec<AtomicU64>,
    /// Observed validated partials per position.
    obs_partials: Vec<AtomicU64>,
    /// Bitmask of positions that already went through a re-plan attempt —
    /// each position re-plans at most once per query.
    triggered: AtomicU64,
    /// Live splittable expansions; re-planning is suppressed while > 0.
    live_splits: AtomicUsize,
    /// Single-flight guard: one worker re-plans at a time.
    replanning: AtomicBool,
}

impl AdaptiveState {
    /// `ratio` must be > 0 (callers gate on `MatchConfig::replan_ratio`).
    pub(crate) fn new(query: QueryGraph, base: Arc<Plan>, ratio: f64) -> Self {
        let len = base.len().min(MAX_PLAN_STEPS);
        let ests = base.est_candidates()[..len]
            .iter()
            .map(|&e| AtomicU64::new(e.to_bits()))
            .collect();
        Self {
            query,
            versions: Mutex::new(Versions {
                plans: vec![Arc::clone(&base)],
                agree: vec![len as u32],
            }),
            base,
            ratio,
            num_versions: AtomicUsize::new(1),
            ests,
            obs_candidates: (0..len).map(|_| AtomicU64::new(0)).collect(),
            obs_partials: (0..len).map(|_| AtomicU64::new(0)).collect(),
            triggered: AtomicU64::new(0),
            live_splits: AtomicUsize::new(0),
            replanning: AtomicBool::new(false),
        }
    }

    /// Records observed counts at plan position `pos`. Returns `true` when
    /// the trigger condition currently holds there — the caller should
    /// attempt [`AdaptiveState::maybe_replan`] at its next step boundary.
    pub(crate) fn observe(&self, pos: usize, candidates: u64, partials: u64) -> bool {
        if pos >= self.obs_candidates.len() {
            return false;
        }
        let obs = self.obs_candidates[pos].fetch_add(candidates, Ordering::Relaxed) + candidates;
        if partials > 0 {
            self.obs_partials[pos].fetch_add(partials, Ordering::Relaxed);
        }
        // A re-plan needs at least one unmatched suffix edge past `pos`.
        if pos + 1 >= self.obs_candidates.len() {
            return false;
        }
        if self.triggered.load(Ordering::Relaxed) & (1 << pos) != 0 {
            return false;
        }
        let est = f64::from_bits(self.ests[pos].load(Ordering::Relaxed));
        obs as f64 >= self.ratio * est.max(1.0)
    }

    /// A splittable expansion was published; re-planning is suppressed
    /// until every live split drains ([`AdaptiveState::split_finished`]).
    pub(crate) fn split_started(&self) {
        self.live_splits.fetch_add(1, Ordering::AcqRel);
    }

    /// The final chunk of a splittable expansion was claimed (exactly one
    /// participant observes this per split).
    pub(crate) fn split_finished(&self) {
        self.live_splits.fetch_sub(1, Ordering::AcqRel);
    }

    /// Resolves the plan a task born under version `ver` with `depth`
    /// matched positions should execute: the latest version when its order
    /// agrees with the task's birth order on every matched position
    /// (upgrading adopts the corrected suffix mid-subtree), the birth
    /// version otherwise (the subtree finishes under the order it was
    /// generated for — order invariance holds per subtree either way).
    pub(crate) fn resolve(&self, ver: u32, depth: usize) -> (Arc<Plan>, u32) {
        if self.num_versions.load(Ordering::Acquire) == 1 {
            return (Arc::clone(&self.base), 0);
        }
        let v = self.versions.lock();
        let latest = v.plans.len() as u32 - 1;
        if ver == latest || v.agree[ver as usize] as usize >= depth {
            (Arc::clone(&v.plans[latest as usize]), latest)
        } else {
            (Arc::clone(&v.plans[ver as usize]), ver)
        }
    }

    /// The exact plan of version `ver` — assist tickets validate a
    /// candidate list that was generated under one specific step, so they
    /// never upgrade.
    pub(crate) fn resolve_exact(&self, ver: u32) -> Arc<Plan> {
        if self.num_versions.load(Ordering::Acquire) == 1 {
            return Arc::clone(&self.base);
        }
        Arc::clone(&self.versions.lock().plans[ver as usize])
    }

    /// The latest adopted plan and its version id (scan tasks always run
    /// the latest version: every re-plan pins position 0).
    pub(crate) fn latest(&self) -> (Arc<Plan>, u32) {
        if self.num_versions.load(Ordering::Acquire) == 1 {
            return (Arc::clone(&self.base), 0);
        }
        let v = self.versions.lock();
        let latest = v.plans.len() as u32 - 1;
        (Arc::clone(&v.plans[latest as usize]), latest)
    }

    /// Picks the plan version a task executes under, applying the
    /// per-variant rules: scans run the latest version, expansions
    /// upgrade iff the latest order agrees with their birth version over
    /// every matched position, assist tickets stick to their exact birth
    /// version (their shared candidate list was generated by it).
    pub(crate) fn resolve_task(&self, task: &Task) -> (Arc<Plan>, u32) {
        match task {
            Task::Scan { .. } => self.latest(),
            Task::Expand { depth, ver, .. } => self.resolve(*ver, *depth as usize),
            Task::ExpandSpilled { emb, ver } => self.resolve(*ver, emb.len()),
            Task::Assist { shared } => {
                let ver = shared.ver();
                (self.resolve_exact(ver), ver)
            }
        }
    }

    /// The latest adopted plan when it differs from the base plan — what
    /// the serving layer writes back to the plan cache so repeated
    /// submissions of the same shape start from the corrected order.
    pub(crate) fn corrected_plan(&self) -> Option<Arc<Plan>> {
        if self.num_versions.load(Ordering::Acquire) == 1 {
            return None;
        }
        let v = self.versions.lock();
        let last = v.plans.last().expect("at least the base version");
        if last.order() == self.base.order() {
            None
        } else {
            Some(Arc::clone(last))
        }
    }

    /// Attempts a suffix re-plan at the completed position `pos` against
    /// `data` (the query's pinned snapshot). Returns `true` when a new
    /// suffix order was adopted; `false` when suppressed (live splits,
    /// another worker mid-replan, the position already re-planned) or when
    /// the corrected search confirms the current order.
    pub(crate) fn maybe_replan(&self, pos: usize, data: &Hypergraph) -> bool {
        if self.live_splits.load(Ordering::Acquire) > 0 {
            return false; // drained splits re-check at the next boundary
        }
        if self
            .replanning
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        let adopted = self.replan(pos, data);
        self.replanning.store(false, Ordering::Release);
        adopted
    }

    /// The re-plan itself; runs under the `replanning` single-flight flag.
    fn replan(&self, pos: usize, data: &Hypergraph) -> bool {
        if self.triggered.fetch_or(1 << pos, Ordering::AcqRel) & (1 << pos) != 0 {
            return false;
        }
        let (current, _) = self.latest();
        let order = current.order();
        if pos + 1 >= order.len() {
            return false;
        }

        // Rebuild the model from current statistics, then fold the
        // observed yields of the matched prefix in: scaling edge
        // `order[i]` by observed/estimated (computed iteratively, so each
        // correction compounds on the previous ones) makes the model's
        // frontier at position `i` match what the run actually measured.
        let mut model = CostModel::new(&self.query, data);
        for (i, &e) in order[..=pos].iter().enumerate() {
            let est = model
                .estimate_order(&order[..=i])
                .steps
                .last()
                .expect("prefix is non-empty")
                .partials_out;
            let obs = self.obs_candidates[i].load(Ordering::Relaxed) as f64;
            model.scale_edge(e, obs / est.max(1.0));
        }

        let new_order = model.best_order_with_prefix(&order[..=pos]);
        if new_order == order {
            return false; // the corrected search confirms the current order
        }
        // Compile against the corrected model: the new plan's own
        // estimates then reflect the observations, so the trigger does not
        // immediately re-fire on the adopted suffix.
        let plan = Arc::new(
            Planner::plan_with_order_costed(&self.query, data, new_order, &model)
                .expect("suffix re-plan compiles"),
        );
        for (i, &est) in plan.est_candidates().iter().enumerate() {
            if i < self.ests.len() {
                self.ests[i].store(est.to_bits(), Ordering::Relaxed);
            }
        }
        let mut v = self.versions.lock();
        let agreements: Vec<u32> = v
            .plans
            .iter()
            .map(|p| common_prefix(p.order(), plan.order()))
            .collect();
        v.agree = agreements;
        v.agree.push(plan.len() as u32);
        v.plans.push(plan);
        self.num_versions.store(v.plans.len(), Ordering::Release);
        true
    }
}

fn common_prefix(a: &[u32], b: &[u32]) -> u32 {
    a.iter().zip(b).take_while(|(x, y)| x == y).count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgmatch_hypergraph::{HypergraphBuilder, Label};

    /// Chain-with-branch data: one {A,B} row, one {B,C} row, thirty {C,D}
    /// rows (the junk fan-out) and one {C,E} row (the selective filter).
    /// After matching {A,B} and {B,C}, both branches extend via the shared
    /// C vertex — so the suffix genuinely has two orders, and which one is
    /// cheaper depends on the statistics the model believes.
    fn branch_data() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        b.add_vertices(1, Label::new(0)); // A: 0
        b.add_vertices(1, Label::new(1)); // B: 1
        b.add_vertices(1, Label::new(2)); // C: 2
        b.add_vertices(30, Label::new(3)); // D: 3..33
        b.add_vertices(1, Label::new(4)); // E: 33
        b.add_edge(vec![0, 1]).unwrap(); // {A,B}
        b.add_edge(vec![1, 2]).unwrap(); // {B,C}
        for i in 0..30u32 {
            b.add_edge(vec![2, 3 + i]).unwrap(); // {C,D} × 30
        }
        b.add_edge(vec![2, 33]).unwrap(); // {C,E}
        b.build().unwrap()
    }

    fn branch_query() -> QueryGraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 1, 2, 3, 4] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![0, 1]).unwrap(); // q0 {A,B}
        b.add_edge(vec![1, 2]).unwrap(); // q1 {B,C}
        b.add_edge(vec![2, 3]).unwrap(); // q2 {C,D} — the fan-out
        b.add_edge(vec![2, 4]).unwrap(); // q3 {C,E} — the filter
        QueryGraph::new(&b.build().unwrap()).unwrap()
    }

    /// A plan compiled from a doctored model that thinks the {C,D} fan-out
    /// is tiny (stale statistics), walking into the junk branch first. An
    /// honest re-search of the suffix flips q3 before q2.
    fn stale_plan(query: &QueryGraph, data: &Hypergraph) -> Arc<Plan> {
        let mut model = CostModel::new(query, data);
        model.scale_edge(2, 1.0 / 1000.0);
        Arc::new(Planner::plan_with_order_costed(query, data, vec![0, 1, 2, 3], &model).unwrap())
    }

    #[test]
    fn trigger_fires_only_past_ratio_and_replans_once() {
        let data = branch_data();
        let query = branch_query();
        let plan = stale_plan(&query, &data);
        let state = AdaptiveState::new(query, Arc::clone(&plan), 8.0);

        // Below the trigger (est at position 0 is one row): nothing.
        assert!(!state.observe(0, 2, 2));
        // Accumulate past 8× max(est, 1): fires.
        assert!(state.observe(0, 38, 38));
        assert!(state.maybe_replan(0, &data));
        let (latest, ver) = state.latest();
        assert_eq!(ver, 1);
        assert_eq!(latest.order()[0], 0, "re-plan pins the matched prefix");
        assert_eq!(
            latest.order(),
            &[0, 1, 3, 2],
            "honest statistics put the selective branch first"
        );
        // The adopted plan carries corrected estimates: the observed count
        // at position 0 no longer looks like a blow-up.
        assert!(latest.est_candidates()[0] >= 30.0);

        // Position 0 re-plans at most once.
        assert!(!state.observe(0, 1_000_000, 0));
        assert!(!state.maybe_replan(0, &data));
        assert_eq!(state.latest().1, 1);
    }

    #[test]
    fn resolution_upgrades_agreeing_prefixes_only() {
        let data = branch_data();
        let query = branch_query();
        let plan = stale_plan(&query, &data);
        let state = AdaptiveState::new(query, Arc::clone(&plan), 1.0);

        // Fast path before any re-plan: everything is version 0.
        assert_eq!(state.resolve(0, 3).1, 0);

        state.observe(0, 40, 40);
        assert!(state.maybe_replan(0, &data));
        let (latest, latest_ver) = state.latest();
        assert_eq!(latest.order(), &[0, 1, 3, 2]);

        // Prefixes up to the common [0, 1] stem upgrade to the latest
        // version (scan = depth 0 always does: every re-plan pins
        // position 0).
        for depth in 0..=2 {
            assert_eq!(state.resolve(0, depth).1, latest_ver, "depth {depth}");
        }
        // A version-0 task with 3 matched positions includes the junk edge
        // at position 2, where the orders diverge: it must finish its
        // subtree under its birth version.
        let (resolved, ver) = state.resolve(0, 3);
        assert_eq!(ver, 0);
        assert_eq!(resolved.order(), plan.order());
        // Assist tickets never upgrade.
        assert_eq!(state.resolve_exact(0).order(), plan.order());
        assert_eq!(state.resolve_exact(latest_ver).order(), latest.order());
    }

    #[test]
    fn live_splits_suppress_replanning_until_drained() {
        let data = branch_data();
        let query = branch_query();
        let plan = stale_plan(&query, &data);
        let state = AdaptiveState::new(query, plan, 1.0);

        state.split_started();
        assert!(state.observe(0, 100, 100), "trigger condition holds");
        assert!(!state.maybe_replan(0, &data), "suppressed mid-split");
        assert_eq!(state.latest().1, 0);

        state.split_finished();
        // The next boundary re-checks and now succeeds.
        assert!(state.observe(0, 0, 0));
        assert!(state.maybe_replan(0, &data));
        assert_eq!(state.latest().1, 1);
    }

    #[test]
    fn confirming_search_adopts_nothing() {
        let data = branch_data();
        let query = branch_query();
        // A plan already on the model's best order: a forced trigger must
        // conclude "no change" (scaling the prefix edge rescales every
        // completion of that prefix equally, so the suffix choice stands).
        let model = CostModel::new(&query, &data);
        let order = model.best_order();
        let plan = Arc::new(Planner::plan_with_order_costed(&query, &data, order, &model).unwrap());
        let state = AdaptiveState::new(query, Arc::clone(&plan), 1.0);
        state.observe(0, 1_000, 1_000);
        assert!(!state.maybe_replan(0, &data));
        assert_eq!(state.latest().1, 0);
        assert!(state.corrected_plan().is_none());
        // The attempt still consumed position 0's single trigger.
        assert!(!state.observe(0, 1_000, 0));
    }

    #[test]
    fn last_position_never_replans() {
        let data = branch_data();
        let query = branch_query();
        let plan = stale_plan(&query, &data);
        let state = AdaptiveState::new(query, plan, 1.0);
        // No suffix remains past the last position.
        assert!(!state.observe(3, 1_000_000, 0));
        assert!(!state.maybe_replan(3, &data));
        assert_eq!(state.latest().1, 0);
    }

    #[test]
    fn corrected_plan_surfaces_the_adopted_order() {
        let data = branch_data();
        let query = branch_query();
        let plan = stale_plan(&query, &data);
        let state = AdaptiveState::new(query, Arc::clone(&plan), 1.0);
        assert!(state.corrected_plan().is_none());
        state.observe(0, 40, 40);
        assert!(state.maybe_replan(0, &data));
        let corrected = state.corrected_plan().expect("a re-plan was adopted");
        assert_eq!(corrected.order(), &[0, 1, 3, 2]);
        assert_eq!(state.base.order(), plan.order());
    }
}
