//! Error types for query planning and execution.

use std::fmt;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, MatchError>;

/// Errors produced while planning or executing a match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchError {
    /// The query hypergraph has no hyperedges.
    EmptyQuery,
    /// The query has more hyperedges than the engine supports (vertex
    /// profiles pack hyperedge incidence into a 64-bit mask).
    QueryTooLarge { edges: usize, max: usize },
    /// Thread count must be at least one.
    InvalidThreadCount,
}

impl fmt::Display for MatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyQuery => write!(f, "query hypergraph has no hyperedges"),
            Self::QueryTooLarge { edges, max } => {
                write!(
                    f,
                    "query has {edges} hyperedges; the engine supports at most {max}"
                )
            }
            Self::InvalidThreadCount => write!(f, "thread count must be >= 1"),
        }
    }
}

impl std::error::Error for MatchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(MatchError::EmptyQuery.to_string().contains("no hyperedges"));
        assert!(MatchError::QueryTooLarge { edges: 70, max: 64 }
            .to_string()
            .contains("70"));
        assert!(MatchError::InvalidThreadCount.to_string().contains(">= 1"));
    }
}
