//! Embedding validation — the paper's Algorithm 5.
//!
//! Candidate generation can produce false positives; instead of falling
//! back to backtracking search for a vertex bijection (Lemma V.1), HGMatch
//! compares multisets of *vertex profiles* (Definition V.3, Theorem V.2):
//!
//! 1. a fast check that the number of distinct vertices matches
//!    (Observation V.5) — this alone removes the vast majority of false
//!    positives (the paper measures ≈97% of survivors are true positives);
//! 2. a multiset comparison of `(label, incident-matched-hyperedges)`
//!    profiles between the new query hyperedge's vertices and the candidate
//!    data hyperedge's vertices.
//!
//! Query profiles are compiled statically into the plan
//! ([`crate::plan::Step::profiles`]); incidence sets are 64-bit masks over
//! matching-order positions, so a profile comparison is a sort + equality
//! test of at most `a_max` two-word pairs.

use hgmatch_hypergraph::hypergraph::Hypergraph;
use hgmatch_hypergraph::Label;

use crate::candidates::ExpansionState;
use crate::plan::Step;

/// Outcome of validating one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Validation {
    /// The candidate is the same data hyperedge as an earlier match; an
    /// injective vertex mapping can never map two query hyperedges onto one
    /// data hyperedge, so it is rejected outright.
    Duplicate,
    /// Rejected by the vertex-count check (Observation V.5).
    WrongVertexCount,
    /// Rejected by the vertex-profile multiset comparison (Theorem V.2).
    WrongProfiles,
    /// The extended partial embedding is valid.
    Valid,
}

/// Reusable scratch for profile construction.
#[derive(Debug, Default)]
pub struct ValidateScratch {
    profiles: Vec<(Label, u64)>,
}

impl ValidateScratch {
    /// Creates empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Validates extending `emb` (positions `0..step_index`) with the candidate
/// whose global id is `cand_global` and sorted vertex list `cand_vertices`.
///
/// `state` must have been [`ExpansionState::prepare`]d for `(step, emb)`.
#[allow(clippy::too_many_arguments)] // hot-path kernel: explicit borrows beat a context struct here
pub fn validate_candidate(
    data: &Hypergraph,
    step: &Step,
    step_index: usize,
    emb: &[u32],
    state: &ExpansionState,
    cand_global: u32,
    cand_vertices: &[u32],
    scratch: &mut ValidateScratch,
) -> Validation {
    debug_assert_eq!(emb.len(), step_index);

    if emb.contains(&cand_global) {
        return Validation::Duplicate;
    }

    // One pass over the candidate's vertices builds both checks from the
    // expansion state's precomputed per-vertex prev-edge membership masks
    // (one binary search per vertex instead of one per previous edge):
    // the distinct-vertex count of Observation V.5 and the dynamic side of
    // the Theorem V.2 vertex profiles.
    let current_bit = 1u64 << step_index;
    let mut new_vertices = 0usize;
    scratch.profiles.clear();
    for &v in cand_vertices {
        let mask = match state.vertex_entry(v) {
            Some(entry) => entry.mask | current_bit,
            None => {
                new_vertices += 1;
                current_bit
            }
        };
        scratch.profiles.push((data.label(v.into()), mask));
    }

    // Observation V.5 — cheap first: |V(Hm')| must equal |V(q')|.
    if state.num_vertices() + new_vertices != step.vertices_after as usize {
        return Validation::WrongVertexCount;
    }

    // Theorem V.2 — compare vertex-profile multisets for the new hyperedge.
    scratch.profiles.sort_unstable();
    if scratch.profiles == step.profiles {
        Validation::Valid
    } else {
        Validation::WrongProfiles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::ExpansionState;
    use crate::plan::Planner;
    use crate::query::QueryGraph;
    use hgmatch_hypergraph::{EdgeId, HypergraphBuilder, Label};

    fn paper_data() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1, 2, 0] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![4, 6]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![3, 5, 6]).unwrap();
        b.add_edge(vec![0, 1, 4, 6]).unwrap();
        b.add_edge(vec![2, 3, 4, 5]).unwrap();
        b.build().unwrap()
    }

    fn paper_query() -> QueryGraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![0, 1, 3, 4]).unwrap();
        QueryGraph::new(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn paper_embeddings_validate() {
        let data = paper_data();
        let query = paper_query();
        let plan = Planner::plan_with_order(&query, &data, vec![0, 1, 2]).unwrap();
        let mut state = ExpansionState::new();
        let mut scratch = ValidateScratch::new();

        // Final step of the first paper embedding (e0, e2) + e4.
        let step = &plan.steps()[2];
        let emb = [0u32, 2];
        state.prepare(&data, step, &emb);
        let v = validate_candidate(
            &data,
            step,
            2,
            &emb,
            &state,
            4,
            data.edge_vertices(EdgeId::new(4)),
            &mut scratch,
        );
        assert_eq!(v, Validation::Valid);

        // Second embedding (e1, e3) + e5.
        let emb = [1u32, 3];
        state.prepare(&data, step, &emb);
        let v = validate_candidate(
            &data,
            step,
            2,
            &emb,
            &state,
            5,
            data.edge_vertices(EdgeId::new(5)),
            &mut scratch,
        );
        assert_eq!(v, Validation::Valid);
    }

    #[test]
    fn cross_embedding_mix_rejected() {
        // (e0, e2) extended with e5 has the wrong incidence structure.
        let data = paper_data();
        let query = paper_query();
        let plan = Planner::plan_with_order(&query, &data, vec![0, 1, 2]).unwrap();
        let step = &plan.steps()[2];
        let emb = [0u32, 2];
        let mut state = ExpansionState::new();
        state.prepare(&data, step, &emb);
        let mut scratch = ValidateScratch::new();
        let v = validate_candidate(
            &data,
            step,
            2,
            &emb,
            &state,
            5,
            data.edge_vertices(EdgeId::new(5)),
            &mut scratch,
        );
        assert_ne!(v, Validation::Valid);
    }

    #[test]
    fn duplicate_edge_rejected() {
        let data = paper_data();
        let query = paper_query();
        let plan = Planner::plan_with_order(&query, &data, vec![0, 1, 2]).unwrap();
        let step = &plan.steps()[1];
        let emb = [0u32];
        let mut state = ExpansionState::new();
        state.prepare(&data, step, &emb);
        let mut scratch = ValidateScratch::new();
        let v = validate_candidate(
            &data,
            step,
            1,
            &emb,
            &state,
            0,
            data.edge_vertices(EdgeId::new(0)),
            &mut scratch,
        );
        assert_eq!(v, Validation::Duplicate);
    }

    #[test]
    fn vertex_count_check_fires() {
        // Fig. 4's shape: a candidate that glues two query vertices onto one
        // data vertex changes the distinct-vertex count. Build a tiny case:
        // query path e0={u0,u1}, e1={u1,u2} (A,A,A) expects 3 vertices; data
        // has e0={v0,v1}, e1={v0,v1} impossible (dup), so use overlapping
        // triangle: data e0={v0,v1}, e1={v1,v2}, plus bad e2={v0,v1} dup...
        // Simplest: data e0={v0,v1}, e1={v0,v1,..}— instead craft candidate
        // sharing BOTH vertices: e1'={v0,v1} can't exist twice, so use a
        // 3-edge query. Data: e0={v0,v1}, e1={v1,v2}, e2={v0,v2};
        // query: e0={u0,u1}, e1={u1,u2}, e2={u2,u3} (path, 4 vertices).
        // Partial (e0, e1); candidate e2={v0,v2} closes the triangle:
        // 3 data vertices ≠ 4 query vertices → WrongVertexCount.
        let mut d = HypergraphBuilder::new();
        d.add_vertices(3, Label::new(0));
        d.add_edge(vec![0, 1]).unwrap();
        d.add_edge(vec![1, 2]).unwrap();
        d.add_edge(vec![0, 2]).unwrap();
        let data = d.build().unwrap();

        let mut q = HypergraphBuilder::new();
        q.add_vertices(4, Label::new(0));
        q.add_edge(vec![0, 1]).unwrap();
        q.add_edge(vec![1, 2]).unwrap();
        q.add_edge(vec![2, 3]).unwrap();
        let query = QueryGraph::new(&q.build().unwrap()).unwrap();
        let plan = Planner::plan_with_order(&query, &data, vec![0, 1, 2]).unwrap();

        let step = &plan.steps()[2];
        let emb = [0u32, 1];
        let mut state = ExpansionState::new();
        state.prepare(&data, step, &emb);
        let mut scratch = ValidateScratch::new();
        let v = validate_candidate(
            &data,
            step,
            2,
            &emb,
            &state,
            2,
            data.edge_vertices(EdgeId::new(2)),
            &mut scratch,
        );
        assert_eq!(v, Validation::WrongVertexCount);
    }

    #[test]
    fn profile_check_fires_when_counts_agree() {
        // Fig. 4 of the paper: profiles differ although counts match.
        // Query: e0={u0,u1}, e1={u2,u3}, e2={u1,u2,u4} over labels
        // B,A,A,A,A — mirrors the partial query q' of the figure closely
        // enough to exercise WrongProfiles: build data where the candidate
        // has the right vertex count but wrong incidence pattern.
        //
        // Query (A-labelled path with a branch):
        //   e0 = {u0,u1}, e1 = {u1,u2}, e2 = {u0,u2}  (triangle, 3 vertices)
        // Data:
        //   e0 = {v0,v1}, e1 = {v1,v2}, e2 = {v2,v3}, and v3 forms
        //   e3 = {v0, v3}? For the last query edge {u0,u2} the candidate
        //   must touch both earlier edges through distinct vertices; a
        //   candidate {v2,v3} has count 3+1=4 ≠ 3 → count check. Use
        //   {v0,v1} dup instead… Simplest true WrongProfiles: candidate
        //   re-uses the shared vertex.
        // Data triangle-ish: e0={v0,v1}, e1={v1,v2}, e2={v1,v3}:
        //   candidate e2 for query edge {u0,u2}: vertices {v1,v3}, count =
        //   3 existing {v0,v1,v2} + 1 new = 4? No. Make query have 4
        //   vertices: e0={u0,u1}, e1={u1,u2}, e2={u0,u3} (path + pendant,
        //   4 vertices). Candidate for e2 must touch f(u0)=v0:
        //   good = {v0,v3}; bad with right count = {v1,v3} (touches e0 AND
        //   e1 through v1 — profile of v1 has two prev bits, expected u0
        //   profile has only e0's bit).
        let mut d = HypergraphBuilder::new();
        d.add_vertices(4, Label::new(0));
        d.add_edge(vec![0, 1]).unwrap(); // e0
        d.add_edge(vec![1, 2]).unwrap(); // e1
        d.add_edge(vec![1, 3]).unwrap(); // e2 (bad candidate)
        d.add_edge(vec![0, 3]).unwrap(); // e3 (good candidate)
        let data = d.build().unwrap();

        let mut q = HypergraphBuilder::new();
        q.add_vertices(4, Label::new(0));
        q.add_edge(vec![0, 1]).unwrap();
        q.add_edge(vec![1, 2]).unwrap();
        q.add_edge(vec![0, 3]).unwrap();
        let query = QueryGraph::new(&q.build().unwrap()).unwrap();
        let plan = Planner::plan_with_order(&query, &data, vec![0, 1, 2]).unwrap();

        let step = &plan.steps()[2];
        let emb = [0u32, 1]; // f(e0)=e0, f(e1)=e1 → f(u0)=v0, f(u1)=v1, f(u2)=v2
        let mut state = ExpansionState::new();
        state.prepare(&data, step, &emb);
        let mut scratch = ValidateScratch::new();

        let bad = validate_candidate(
            &data,
            step,
            2,
            &emb,
            &state,
            2,
            data.edge_vertices(EdgeId::new(2)),
            &mut scratch,
        );
        assert_eq!(bad, Validation::WrongProfiles);

        let good = validate_candidate(
            &data,
            step,
            2,
            &emb,
            &state,
            3,
            data.edge_vertices(EdgeId::new(3)),
            &mut scratch,
        );
        assert_eq!(good, Validation::Valid);
    }
}
