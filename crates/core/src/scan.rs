//! Block-state reduce-then-scan primitives (DESIGN.md §18).
//!
//! The result pipeline has three stages that produce *dense* output from
//! *positionally known* input — bitmap→list materialization, compaction of
//! filtered candidate lists, and result aggregation — and all three share
//! one structural problem: every output element's position depends on how
//! many elements every *earlier* input block contributed. The classic
//! answer is a reduce-then-scan over fixed-size blocks with decoupled
//! lookback (the same block-state loop at the core of the related
//! work-assisting codebases, see SNIPPETS.md):
//!
//! 1. **claim** — participants grab block indexes from one atomic counter
//!    (`fetch_add`, the exact exactly-once idiom of the engine's
//!    `SplitExpansion` claim loop);
//! 2. **reduce** — the claimer counts its block's contribution and
//!    publishes it as an `AGGREGATE` in the block's state word;
//! 3. **lookback** — it walks preceding block states backwards, summing
//!    aggregates until it meets an inclusive `PREFIX`, which yields its own
//!    exclusive prefix (its output offset) without waiting for a global
//!    barrier;
//! 4. **emit** — it writes its block's output at that offset (slots are
//!    disjoint across blocks, so emission is write-once and lock-free) and
//!    publishes its own inclusive `PREFIX` for successors.
//!
//! Deadlock freedom: blocks are claimed in monotonically increasing order
//! and every claimed block publishes its `AGGREGATE` *before* its own
//! lookback, so a lookback only ever waits on strictly older blocks whose
//! claimers are past their reduce — block 0 publishes a `PREFIX` outright
//! and terminates every chain. With one participant the loop degenerates
//! to a sequential running prefix (no spinning, no contention), which is
//! why the same code also backs the single-threaded entry points
//! ([`extract_bits_into`], [`compact_into`]) used inside candidate
//! generation.
//!
//! [`ParallelExtract`] (bitmap words → sorted row list) is wired into the
//! engine's work-assisting splits: a dense expansion publishes its
//! accumulator bitmap instead of a materialised list, and every
//! participant — owner and assist-ticket thieves alike — first helps drain
//! the extraction blocks, then moves on to validating the extracted rows
//! (`engine::task::SplitSource::Dense`). [`ParallelCompact`] is the same
//! loop over a predicate filter, benchmarked by the `result_pipeline` bin.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Words per extraction block: 64 words = 4096 row bits, matching the
/// engine's `ABORT_PROBE` granularity so one block is one probe budget.
pub const BLOCK_WORDS: usize = 64;

/// Elements per compaction block.
pub const BLOCK_ELEMS: usize = 4096;

/// Block states, packed into one `AtomicU64` per block: tag in the top two
/// bits, the 62-bit count below. Counts are element counts of `u32`-indexed
/// inputs, so 62 bits never saturate.
// TAG 0 (all-zero state word) means "empty: nothing published yet".
const TAG_AGGREGATE: u64 = 1;
const TAG_PREFIX: u64 = 2;
const TAG_SHIFT: u32 = 62;
const VALUE_MASK: u64 = (1 << TAG_SHIFT) - 1;

#[inline]
fn pack(tag: u64, value: u64) -> u64 {
    debug_assert!(value <= VALUE_MASK);
    (tag << TAG_SHIFT) | value
}

/// Shared per-block bookkeeping of one reduce-then-scan: the block-state
/// words, the claim counter and the completion counter.
#[derive(Debug)]
struct BlockLedger {
    states: Box<[AtomicU64]>,
    next: AtomicUsize,
    remaining: AtomicUsize,
}

impl BlockLedger {
    fn new(blocks: usize) -> Self {
        Self {
            states: (0..blocks).map(|_| AtomicU64::new(0)).collect(),
            next: AtomicUsize::new(0),
            remaining: AtomicUsize::new(blocks),
        }
    }

    /// Claims the next unprocessed block (monotonic, exactly-once).
    #[inline]
    fn claim(&self) -> Option<usize> {
        let b = self.next.fetch_add(1, Ordering::Relaxed);
        (b < self.states.len()).then_some(b)
    }

    /// Decoupled lookback: resolves block `b`'s *exclusive* prefix by
    /// walking predecessors backwards, summing `AGGREGATE`s until an
    /// inclusive `PREFIX` terminates the chain. Spins (with abort polls)
    /// on a predecessor that has not yet published anything. Returns
    /// `None` on abort.
    fn exclusive_prefix(&self, b: usize, abort: &mut dyn FnMut() -> bool) -> Option<u64> {
        let mut sum = 0u64;
        let mut i = b;
        while i > 0 {
            i -= 1;
            loop {
                let s = self.states[i].load(Ordering::Acquire);
                match s >> TAG_SHIFT {
                    TAG_PREFIX => return Some(sum + (s & VALUE_MASK)),
                    TAG_AGGREGATE => {
                        sum += s & VALUE_MASK;
                        break;
                    }
                    _ => {
                        if abort() {
                            return None;
                        }
                        std::hint::spin_loop();
                    }
                }
            }
        }
        Some(sum)
    }

    /// Marks one block fully emitted; all blocks done ⇒ output readable.
    #[inline]
    fn finish_block(&self) {
        self.remaining.fetch_sub(1, Ordering::Release);
    }

    /// Waits (yielding) until every block has been emitted — participants
    /// that drained the claim counter may still be behind a straggler
    /// finishing its last block. Returns `false` on abort.
    fn wait_done(&self, abort: &mut dyn FnMut() -> bool) -> bool {
        while self.remaining.load(Ordering::Acquire) != 0 {
            if abort() {
                return false;
            }
            std::thread::yield_now();
        }
        true
    }
}

/// Shared-state parallel bitmap→list materialization: decodes the set bits
/// of a word array into a pre-sized output of sorted row ids. Any number
/// of participants may call [`ParallelExtract::run`] concurrently; each
/// runs the claim→reduce→lookback→emit loop until the blocks drain.
#[derive(Debug)]
pub struct ParallelExtract {
    words: Box<[u64]>,
    ledger: BlockLedger,
    out: Box<[AtomicU32]>,
}

impl ParallelExtract {
    /// Wraps `words` (bitmap backing store, bit `i` at `words[i>>6]`) whose
    /// total popcount is `count`. The output is sized exactly — the reduce
    /// pass re-derives per-block counts, the caller supplies the total.
    pub fn new(words: Vec<u64>, count: u32) -> Self {
        debug_assert_eq!(
            words.iter().map(|w| w.count_ones() as u64).sum::<u64>(),
            count as u64
        );
        let blocks = words.len().div_ceil(BLOCK_WORDS);
        Self {
            words: words.into_boxed_slice(),
            ledger: BlockLedger::new(blocks),
            out: (0..count).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    /// Number of rows the extraction produces.
    #[inline]
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether the extraction produces no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Heap bytes of the shared state (words + output slots).
    pub fn bytes(&self) -> usize {
        self.words.len() * 8 + self.out.len() * 4
    }

    /// Participates in the extraction until every block is claimed *and
    /// emitted*, so on a `true` return the whole output is readable.
    /// Returns `false` if `abort` fired (the output is then partial and
    /// must not be read).
    pub fn run(&self, abort: &mut dyn FnMut() -> bool) -> bool {
        while let Some(b) = self.ledger.claim() {
            if abort() {
                return false;
            }
            let lo = b * BLOCK_WORDS;
            let hi = (lo + BLOCK_WORDS).min(self.words.len());
            let block = &self.words[lo..hi];
            // Reduce: this block's contribution to the output length.
            let agg: u64 = block.iter().map(|w| w.count_ones() as u64).sum();
            let excl = if b == 0 {
                0
            } else {
                self.ledger.states[b].store(pack(TAG_AGGREGATE, agg), Ordering::Release);
                match self.ledger.exclusive_prefix(b, abort) {
                    Some(p) => p,
                    None => return false,
                }
            };
            // Emit: decode the block's bits at the resolved offset. Slots
            // are disjoint across blocks, so relaxed stores suffice — the
            // ledger's Release/Acquire on `remaining` publishes them.
            let mut idx = excl as usize;
            for (wi, &word) in block.iter().enumerate() {
                let base = ((lo + wi) as u32) << 6;
                let mut w = word;
                while w != 0 {
                    self.out[idx].store(base + w.trailing_zeros(), Ordering::Relaxed);
                    idx += 1;
                    w &= w - 1;
                }
            }
            self.ledger.states[b].store(pack(TAG_PREFIX, excl + agg), Ordering::Release);
            self.ledger.finish_block();
        }
        self.ledger.wait_done(abort)
    }

    /// Reads row `i` of the extracted output. Only meaningful after a
    /// participant's [`ParallelExtract::run`] returned `true`.
    #[inline]
    pub fn row(&self, i: usize) -> u32 {
        self.out[i].load(Ordering::Relaxed)
    }
}

/// Shared-state parallel compaction: keeps the elements of `input` that
/// satisfy `keep`, preserving order, with the same claim→reduce→lookback→
/// emit loop ([`ParallelExtract`] describes the protocol). The reduce pass
/// evaluates the predicate once per element to size the block, the emit
/// pass once more to place survivors — the standard two-touch trade of a
/// parallel compact, paid only on the multi-participant path.
#[derive(Debug)]
pub struct ParallelCompact<'a, F: Fn(u32) -> bool + Sync> {
    input: &'a [u32],
    keep: F,
    ledger: BlockLedger,
    out: Box<[AtomicU32]>,
    total: AtomicU64,
}

impl<'a, F: Fn(u32) -> bool + Sync> ParallelCompact<'a, F> {
    /// Prepares a compaction of `input` through `keep`. The output buffer
    /// is sized for the worst case (everything kept).
    pub fn new(input: &'a [u32], keep: F) -> Self {
        let blocks = input.len().div_ceil(BLOCK_ELEMS);
        Self {
            input,
            keep,
            ledger: BlockLedger::new(blocks),
            out: (0..input.len()).map(|_| AtomicU32::new(0)).collect(),
            total: AtomicU64::new(0),
        }
    }

    /// Participates until every block is claimed and emitted (see
    /// [`ParallelExtract::run`]). Returns `false` on abort.
    pub fn run(&self, abort: &mut dyn FnMut() -> bool) -> bool {
        let blocks = self.input.len().div_ceil(BLOCK_ELEMS);
        while let Some(b) = self.ledger.claim() {
            if abort() {
                return false;
            }
            let lo = b * BLOCK_ELEMS;
            let hi = (lo + BLOCK_ELEMS).min(self.input.len());
            let block = &self.input[lo..hi];
            let agg = block.iter().filter(|&&x| (self.keep)(x)).count() as u64;
            let excl = if b == 0 {
                0
            } else {
                self.ledger.states[b].store(pack(TAG_AGGREGATE, agg), Ordering::Release);
                match self.ledger.exclusive_prefix(b, abort) {
                    Some(p) => p,
                    None => return false,
                }
            };
            let mut idx = excl as usize;
            for &x in block {
                if (self.keep)(x) {
                    self.out[idx].store(x, Ordering::Relaxed);
                    idx += 1;
                }
            }
            if b + 1 == blocks {
                self.total.store(excl + agg, Ordering::Release);
            }
            self.ledger.states[b].store(pack(TAG_PREFIX, excl + agg), Ordering::Release);
            self.ledger.finish_block();
        }
        self.ledger.wait_done(abort)
    }

    /// Number of kept elements. Only meaningful after a participant's
    /// [`ParallelCompact::run`] returned `true`.
    pub fn len(&self) -> usize {
        self.total.load(Ordering::Acquire) as usize
    }

    /// Whether nothing survived (see [`ParallelCompact::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends the compacted elements to `out`. Only meaningful after a
    /// participant's [`ParallelCompact::run`] returned `true`.
    pub fn collect_into(&self, out: &mut Vec<u32>) {
        let n = self.len();
        out.reserve(n);
        for slot in &self.out[..n] {
            out.push(slot.load(Ordering::Relaxed));
        }
    }
}

/// Single-participant bitmap→list materialization: the same block loop
/// with the lookback degenerated to a running prefix (block `b`'s
/// predecessor is always `PREFIX`-complete when one thread claims in
/// order), so it touches no atomics. Appends the set bits of `words`,
/// ascending, to `out`.
pub fn extract_bits_into(words: &[u64], out: &mut Vec<u32>) {
    let mut lo = 0usize;
    while lo < words.len() {
        let hi = (lo + BLOCK_WORDS).min(words.len());
        let block = &words[lo..hi];
        // Reduce: reserve the block's exact contribution before emitting,
        // so a dense block never re-allocates mid-decode.
        let agg: usize = block.iter().map(|w| w.count_ones() as usize).sum();
        out.reserve(agg);
        for (wi, &word) in block.iter().enumerate() {
            let base = ((lo + wi) as u32) << 6;
            let mut w = word;
            while w != 0 {
                out.push(base + w.trailing_zeros());
                w &= w - 1;
            }
        }
        lo = hi;
    }
}

/// Single-participant compaction: clears `out`, then appends the elements
/// of `input` that satisfy `keep`, preserving order, block by block.
pub fn compact_into(input: &[u32], out: &mut Vec<u32>, mut keep: impl FnMut(u32) -> bool) {
    out.clear();
    let mut lo = 0usize;
    while lo < input.len() {
        let hi = (lo + BLOCK_ELEMS).min(input.len());
        out.extend(input[lo..hi].iter().copied().filter(|&x| keep(x)));
        lo = hi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgmatch_hypergraph::bitmap::Bitmap;

    fn never() -> impl FnMut() -> bool {
        || false
    }

    #[test]
    fn sequential_extract_matches_bitmap() {
        let ids: Vec<u32> = (0..20_000).filter(|i| i % 7 == 0 || i % 11 == 3).collect();
        let bm = Bitmap::from_sorted(&ids, 20_000);
        let mut out = Vec::new();
        extract_bits_into(bm.words(), &mut out);
        assert_eq!(out, ids);
    }

    #[test]
    fn sequential_compact_filters_in_order() {
        let input: Vec<u32> = (0..10_000).rev().collect();
        let mut out = vec![99]; // compact_into clears
        compact_into(&input, &mut out, |x| x % 3 == 0);
        let expect: Vec<u32> = (0..10_000).rev().filter(|x| x % 3 == 0).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn parallel_extract_single_participant() {
        let ids: Vec<u32> = (0..50_000).filter(|i| i % 13 != 5).collect();
        let bm = Bitmap::from_sorted(&ids, 50_000);
        let count = bm.count_ones();
        let px = ParallelExtract::new(bm.words().to_vec(), count);
        assert!(px.run(&mut never()));
        let got: Vec<u32> = (0..px.len()).map(|i| px.row(i)).collect();
        assert_eq!(got, ids);
    }

    #[test]
    fn parallel_extract_many_participants() {
        let ids: Vec<u32> = (0..300_000)
            .filter(|i: &u32| i.wrapping_mul(2654435761) % 5 < 3)
            .collect();
        let bm = Bitmap::from_sorted(&ids, 300_000);
        let px = ParallelExtract::new(bm.words().to_vec(), bm.count_ones());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| assert!(px.run(&mut never())));
            }
        });
        let got: Vec<u32> = (0..px.len()).map(|i| px.row(i)).collect();
        assert_eq!(got, ids);
    }

    #[test]
    fn parallel_extract_empty_and_tiny() {
        let px = ParallelExtract::new(Vec::new(), 0);
        assert!(px.run(&mut never()));
        assert_eq!(px.len(), 0);
        assert!(px.is_empty());

        let bm = Bitmap::from_sorted(&[3], 64);
        let px = ParallelExtract::new(bm.words().to_vec(), 1);
        assert!(px.run(&mut never()));
        assert_eq!((px.len(), px.row(0)), (1, 3));
    }

    #[test]
    fn parallel_extract_abort_stops() {
        let ids: Vec<u32> = (0..100_000).collect();
        let bm = Bitmap::from_sorted(&ids, 100_000);
        let px = ParallelExtract::new(bm.words().to_vec(), bm.count_ones());
        let mut calls = 0u32;
        let aborted = !px.run(&mut || {
            calls += 1;
            calls > 2
        });
        assert!(aborted, "abort mid-extraction must report failure");
    }

    #[test]
    fn parallel_compact_matches_sequential() {
        let input: Vec<u32> = (0..200_000u32)
            .map(|i| i.wrapping_mul(48271) % 65_536)
            .collect();
        let keep = |x: u32| x.is_multiple_of(2);
        let mut expect = Vec::new();
        compact_into(&input, &mut expect, keep);

        let pc = ParallelCompact::new(&input, keep);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| assert!(pc.run(&mut never())));
            }
        });
        assert_eq!(pc.len(), expect.len());
        let mut got = Vec::new();
        pc.collect_into(&mut got);
        assert_eq!(got, expect);
    }

    #[test]
    fn parallel_compact_keep_all_and_none() {
        let input: Vec<u32> = (0..10_000).collect();
        let all = ParallelCompact::new(&input, |_| true);
        assert!(all.run(&mut never()));
        assert_eq!(all.len(), input.len());

        let none = ParallelCompact::new(&input, |_| false);
        assert!(none.run(&mut never()));
        assert_eq!(none.len(), 0);
        assert!(none.is_empty());
        let mut out = Vec::new();
        none.collect_into(&mut out);
        assert!(out.is_empty());
    }
}
