//! High-level matching facade.
//!
//! [`Matcher`] ties the pipeline together: analyse the query, plan against
//! the indexed data hypergraph, pick an executor (sequential for one
//! thread, the task-based parallel engine otherwise) and run it into a
//! sink. This mirrors the paper's Fig. 3 online-processing path.

use hgmatch_hypergraph::Hypergraph;

use crate::aggregate::{ci95_half_width, AggregateMode, AggregateSummary};
use crate::config::MatchConfig;
use crate::embedding::Embedding;
use crate::engine::ParallelEngine;
use crate::error::Result;
use crate::exec::{RunStats, SequentialExecutor};
use crate::plan::{Plan, Planner};
use crate::query::QueryGraph;
use crate::sink::{CollectSink, CountSink, FirstKSink, SampleSink, Sink, TopKSink};

/// Result of [`Matcher::aggregate`]: the exact embedding count, whatever
/// embeddings the mode kept, the mode-specific summary and the run's
/// execution statistics.
#[derive(Debug)]
pub struct AggregateOutcome {
    /// Exact number of embeddings found (all modes count exactly).
    pub count: u64,
    /// Embeddings the mode kept: everything (sorted) under materialize,
    /// `None` under count-only, the best k (best first) under top-k, the
    /// sample (sorted) under sampled.
    pub embeddings: Option<Vec<Embedding>>,
    /// Mode-specific summary (top-k scores, sample confidence bounds, …).
    pub summary: AggregateSummary,
    /// Execution statistics of the run.
    pub stats: RunStats,
}

/// Matches query hypergraphs against one indexed data hypergraph.
///
/// One [`Matcher`] answers one query at a time (the parallel engine spins
/// its pool up per run). For streams of concurrent queries on a resident
/// pool, use [`crate::serve::MatchServer`].
///
/// # Example
///
/// ```
/// use hgmatch_core::{MatchConfig, Matcher};
/// use hgmatch_hypergraph::{HypergraphBuilder, Label};
///
/// // Data: two triangles sharing a vertex (labels A=0, B=1).
/// let mut b = HypergraphBuilder::new();
/// for &l in &[0u32, 0, 1, 0, 0] {
///     b.add_vertex(Label::new(l));
/// }
/// b.add_edge(vec![0, 1, 2]).unwrap();
/// b.add_edge(vec![2, 3, 4]).unwrap();
/// let data = b.build().unwrap();
///
/// // Query: one {A, A, B} hyperedge — matches both triangles.
/// let mut q = HypergraphBuilder::new();
/// for &l in &[0u32, 0, 1] {
///     q.add_vertex(Label::new(l));
/// }
/// q.add_edge(vec![0, 1, 2]).unwrap();
/// let query = q.build().unwrap();
///
/// let matcher = Matcher::with_config(&data, MatchConfig::parallel(2));
/// assert_eq!(matcher.count(&query).unwrap(), 2);
/// assert_eq!(matcher.find_all(&query).unwrap().len(), 2);
/// assert!(matcher.contains(&query).unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct Matcher<'a> {
    data: &'a Hypergraph,
    config: MatchConfig,
}

impl<'a> Matcher<'a> {
    /// Creates a matcher with the default (sequential) configuration.
    pub fn new(data: &'a Hypergraph) -> Self {
        Self {
            data,
            config: MatchConfig::default(),
        }
    }

    /// Creates a matcher with an explicit configuration.
    pub fn with_config(data: &'a Hypergraph, config: MatchConfig) -> Self {
        Self { data, config }
    }

    /// The active configuration.
    pub fn config(&self) -> &MatchConfig {
        &self.config
    }

    /// The data hypergraph.
    pub fn data(&self) -> &'a Hypergraph {
        self.data
    }

    /// Plans a query without executing it (EXPLAIN-style use).
    pub fn plan(&self, query: &Hypergraph) -> Result<Plan> {
        let q = QueryGraph::new(query)?;
        Planner::plan(&q, self.data)
    }

    /// Counts all embeddings of `query`.
    pub fn count(&self, query: &Hypergraph) -> Result<u64> {
        let sink = CountSink::new();
        let stats = self.run(query, &sink)?;
        Ok(stats.embeddings())
    }

    /// Counts embeddings and returns the full execution statistics.
    pub fn count_with_stats(&self, query: &Hypergraph) -> Result<(u64, RunStats)> {
        let sink = CountSink::new();
        let stats = self.run(query, &sink)?;
        Ok((stats.embeddings(), stats))
    }

    /// Enumerates all embeddings, sorted, in query-edge order.
    pub fn find_all(&self, query: &Hypergraph) -> Result<Vec<Embedding>> {
        let sink = CollectSink::new();
        self.run(query, &sink)?;
        Ok(sink.into_results())
    }

    /// Returns up to `k` embeddings, stopping early once found.
    pub fn find_first(&self, query: &Hypergraph, k: usize) -> Result<Vec<Embedding>> {
        let sink = FirstKSink::new(k);
        self.run(query, &sink)?;
        Ok(sink.into_results())
    }

    /// Tests whether at least one embedding exists.
    pub fn contains(&self, query: &Hypergraph) -> Result<bool> {
        Ok(!self.find_first(query, 1)?.is_empty())
    }

    /// Runs `query` under the configured aggregation mode
    /// ([`MatchConfig::aggregate`]): exact count plus whatever embeddings
    /// the mode keeps (DESIGN.md §18.2).
    pub fn aggregate(&self, query: &Hypergraph) -> Result<AggregateOutcome> {
        self.aggregate_with(query, self.config.aggregate)
    }

    /// Runs `query` under an explicit aggregation mode, overriding the
    /// configured one.
    pub fn aggregate_with(
        &self,
        query: &Hypergraph,
        mode: AggregateMode,
    ) -> Result<AggregateOutcome> {
        Ok(match mode {
            AggregateMode::Materialize => {
                let sink = CollectSink::new();
                let stats = self.run(query, &sink)?;
                let embeddings = sink.into_results();
                AggregateOutcome {
                    count: embeddings.len() as u64,
                    embeddings: Some(embeddings),
                    summary: AggregateSummary::Materialized,
                    stats,
                }
            }
            AggregateMode::CountOnly => {
                let sink = CountSink::new();
                let stats = self.run(query, &sink)?;
                AggregateOutcome {
                    count: sink.count(),
                    embeddings: None,
                    summary: AggregateSummary::Count,
                    stats,
                }
            }
            AggregateMode::TopK { k, score } => {
                let sink = TopKSink::new(k, score);
                let stats = self.run(query, &sink)?;
                let count = sink.count();
                let (embeddings, scores) = sink.into_results();
                AggregateOutcome {
                    count,
                    embeddings: Some(embeddings),
                    summary: AggregateSummary::TopK { k, score, scores },
                    stats,
                }
            }
            AggregateMode::Sampled { budget, seed } => {
                let sink = SampleSink::new(budget, seed);
                let stats = self.run(query, &sink)?;
                let count = sink.count();
                let embeddings = sink.into_results();
                let sampled = embeddings.len() as u64;
                let fraction = if count == 0 {
                    1.0
                } else {
                    sampled as f64 / count as f64
                };
                AggregateOutcome {
                    count,
                    embeddings: Some(embeddings),
                    summary: AggregateSummary::Sampled {
                        budget,
                        seed,
                        sampled,
                        fraction,
                        ci95: ci95_half_width(sampled, count),
                    },
                    stats,
                }
            }
        })
    }

    /// Runs `query` into `sink` with the configured executor. Parallel
    /// runs additionally re-optimize mid-query when observed candidate
    /// counts cross [`MatchConfig::replan_ratio`] × the plan's estimate
    /// (DESIGN.md §15); set the ratio to 0 — or use
    /// [`Matcher::run_plan`] — for a strictly static execution.
    pub fn run<S: Sink>(&self, query: &Hypergraph, sink: &S) -> Result<RunStats> {
        let q = QueryGraph::new(query)?;
        let plan = Planner::plan(&q, self.data)?;
        if self.config.threads > 1 && self.config.replan_ratio > 0.0 {
            let plan = std::sync::Arc::new(plan);
            return Ok(ParallelEngine::run_adaptive(
                &q,
                &plan,
                self.data,
                sink,
                &self.config,
            ));
        }
        Ok(self.run_plan(&plan, sink))
    }

    /// Runs a pre-compiled plan into `sink`, exactly as compiled — never
    /// adaptively (the order-invariance differential harnesses depend on
    /// this executing the given order to completion).
    pub fn run_plan<S: Sink>(&self, plan: &Plan, sink: &S) -> RunStats {
        if self.config.threads <= 1 {
            SequentialExecutor::run(plan, self.data, sink, &self.config)
        } else {
            ParallelEngine::run(plan, self.data, sink, &self.config)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::MatchError;
    use hgmatch_hypergraph::{HypergraphBuilder, Label};

    fn paper_data() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1, 2, 0] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![4, 6]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![3, 5, 6]).unwrap();
        b.add_edge(vec![0, 1, 4, 6]).unwrap();
        b.add_edge(vec![2, 3, 4, 5]).unwrap();
        b.build().unwrap()
    }

    fn paper_query() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![0, 1, 3, 4]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn count_and_find_agree() {
        let data = paper_data();
        let query = paper_query();
        let m = Matcher::new(&data);
        assert_eq!(m.count(&query).unwrap(), 2);
        let all = m.find_all(&query).unwrap();
        assert_eq!(all.len(), 2);
        assert!(m.contains(&query).unwrap());
        assert_eq!(m.find_first(&query, 1).unwrap().len(), 1);
    }

    #[test]
    fn parallel_config_uses_engine() {
        let data = paper_data();
        let query = paper_query();
        let m = Matcher::with_config(&data, MatchConfig::parallel(2));
        let (count, stats) = m.count_with_stats(&query).unwrap();
        assert_eq!(count, 2);
        assert_eq!(stats.workers.len(), 2);
    }

    #[test]
    fn aggregate_modes_agree_on_count() {
        use crate::aggregate::ScoreFn;
        let data = paper_data();
        let query = paper_query();
        let m = Matcher::new(&data);
        let full = m
            .aggregate_with(&query, AggregateMode::Materialize)
            .unwrap();
        let count = m.aggregate_with(&query, AggregateMode::CountOnly).unwrap();
        let topk = m
            .aggregate_with(
                &query,
                AggregateMode::TopK {
                    k: 1,
                    score: ScoreFn::EdgeIdSum,
                },
            )
            .unwrap();
        let sampled = m
            .aggregate_with(&query, AggregateMode::Sampled { budget: 1, seed: 7 })
            .unwrap();
        assert_eq!(full.count, 2);
        assert_eq!(count.count, 2);
        assert_eq!(topk.count, 2);
        assert_eq!(sampled.count, 2);
        assert!(count.embeddings.is_none());
        assert_eq!(full.embeddings.as_ref().unwrap().len(), 2);
        assert_eq!(topk.embeddings.as_ref().unwrap().len(), 1);
        assert_eq!(sampled.embeddings.as_ref().unwrap().len(), 1);
        // The top-1 by edge-id sum is the max-sum member of the full set.
        let best = full
            .embeddings
            .unwrap()
            .into_iter()
            .max_by_key(|e| e.raw().iter().map(|&x| x as u64).sum::<u64>())
            .unwrap();
        assert_eq!(topk.embeddings.unwrap()[0], best);
        // The sample is a member of the full result set.
        match sampled.summary {
            AggregateSummary::Sampled {
                sampled: n,
                fraction,
                ..
            } => {
                assert_eq!(n, 1);
                assert!((fraction - 0.5).abs() < 1e-9);
            }
            other => panic!("unexpected summary {other:?}"),
        }
    }

    #[test]
    fn empty_query_errors() {
        let data = paper_data();
        let empty = HypergraphBuilder::new().build().unwrap();
        assert_eq!(
            Matcher::new(&data).count(&empty).unwrap_err(),
            MatchError::EmptyQuery
        );
    }

    #[test]
    fn plan_is_inspectable() {
        let data = paper_data();
        let plan = Matcher::new(&data).plan(&paper_query()).unwrap();
        assert_eq!(plan.len(), 3);
    }
}
