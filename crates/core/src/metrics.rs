//! Execution metrics.
//!
//! The counters mirror the quantities the paper reports in Fig. 9
//! ("Candidates Filtering"): the number of candidate hyperedges produced by
//! Algorithm 4, how many survive the cheap vertex-count check of
//! Observation V.5 ("Filtered"), and how many are true embeddings after the
//! vertex-profile comparison ("Embeddings"). Engines keep one
//! `MatchMetrics` per worker and merge at the end, so recording is free of
//! contention.
//!
//! Beyond the aggregate counters, [`StepCounts`] attributes candidates and
//! validated partials to the *plan position* that produced them — the
//! runtime-feedback signal the adaptive re-optimizer (DESIGN.md §15)
//! compares against the planner's per-step estimates. The storage is a
//! fixed-capacity inline array (no heap allocation on the hot path): plan
//! length is bounded by [`MAX_PLAN_STEPS`] because the engine tracks
//! matched query edges in a `u64` bitmask.

use serde::{Deserialize, Serialize};

/// Upper bound on plan length for per-step attribution — the engine's
/// query-edge bitmask is a `u64`, so no compilable plan exceeds it.
pub const MAX_PLAN_STEPS: usize = 64;

/// Per-plan-position counters, stored inline (allocation-free).
///
/// Position `0` is the SCAN step (candidates = partials = scanned rows);
/// position `d > 0` counts the candidates generated while extending
/// depth-`d` partials and how many of them validated into depth-`d+1`
/// partials. After a mid-query re-plan, counts at positions past the
/// switch point aggregate over every plan version that executed there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepCounts {
    len: u32,
    candidates: [u64; MAX_PLAN_STEPS],
    partials: [u64; MAX_PLAN_STEPS],
}

impl Default for StepCounts {
    fn default() -> Self {
        Self {
            len: 0,
            candidates: [0; MAX_PLAN_STEPS],
            partials: [0; MAX_PLAN_STEPS],
        }
    }
}

impl StepCounts {
    /// Number of positions with recorded data (highest touched + 1).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Candidates produced per position, truncated to the touched prefix.
    pub fn candidates(&self) -> &[u64] {
        &self.candidates[..self.len as usize]
    }

    /// Validated partials per position, truncated to the touched prefix.
    pub fn partials(&self) -> &[u64] {
        &self.partials[..self.len as usize]
    }

    /// Adds `n` produced candidates at plan position `step`.
    #[inline]
    pub fn record_candidates(&mut self, step: usize, n: u64) {
        if step < MAX_PLAN_STEPS {
            self.candidates[step] += n;
            self.len = self.len.max(step as u32 + 1);
        }
    }

    /// Adds `n` validated partials at plan position `step`.
    #[inline]
    pub fn record_partials(&mut self, step: usize, n: u64) {
        if step < MAX_PLAN_STEPS {
            self.partials[step] += n;
            self.len = self.len.max(step as u32 + 1);
        }
    }

    /// Merges another worker's per-step counters into this one.
    pub fn merge(&mut self, other: &StepCounts) {
        for i in 0..other.len as usize {
            self.candidates[i] += other.candidates[i];
            self.partials[i] += other.partials[i];
        }
        self.len = self.len.max(other.len);
    }
}

/// Counters collected during one match execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchMetrics {
    /// Rows emitted by the SCAN operator (matches of the first query edge).
    pub scan_rows: u64,
    /// Candidate hyperedges produced by candidate generation (Fig. 9
    /// "Candidates"), summed over all EXPAND steps.
    pub candidates: u64,
    /// Candidates that passed the vertex-count check of Observation V.5
    /// (Fig. 9 "Filtered").
    pub filtered: u64,
    /// Candidates that passed full vertex-profile validation — i.e. valid
    /// (partial) embeddings produced by EXPAND.
    pub validated: u64,
    /// Complete embeddings delivered to the sink (Fig. 9 "Embeddings").
    /// Counting is exact in every aggregation mode; this is the logical
    /// result count, not an allocation count.
    pub embeddings: u64,
    /// Embeddings actually *materialised* (converted to query order and
    /// handed to `Sink::consume`). Zero in count-only mode; ≤ `embeddings`
    /// always. Keeping this separate from `embeddings` is what lets
    /// `/metrics` and `explain --observed` report bulk-counted results
    /// without claiming they were allocated (DESIGN.md §18.3).
    pub materialized: u64,
    /// EXPAND invocations (one per partial embedding per step).
    pub expansions: u64,
    /// Expansions whose candidate range was published as splittable
    /// (DESIGN.md §12): the validating loop could be joined mid-flight by
    /// idle workers instead of running serially on one.
    pub split_expansions: u64,
    /// Candidate chunks claimed by *assisting* workers — participants that
    /// joined a splittable expansion through a stolen assist ticket rather
    /// than having generated the candidates themselves.
    pub assist_chunks: u64,
    /// Mid-query suffix re-plans adopted by the adaptive re-optimizer
    /// (DESIGN.md §15); zero when `replan_ratio` is 0 or no estimate blew
    /// past the trigger.
    pub replans: u64,
    /// Candidates / validated partials attributed to the plan position that
    /// produced them — observed cardinalities the adaptive re-optimizer
    /// compares against [`crate::Plan::est_candidates`].
    pub steps: StepCounts,
}

impl MatchMetrics {
    /// Merges another worker's counters into this one.
    pub fn merge(&mut self, other: &MatchMetrics) {
        self.scan_rows += other.scan_rows;
        self.candidates += other.candidates;
        self.filtered += other.filtered;
        self.validated += other.validated;
        self.embeddings += other.embeddings;
        self.materialized += other.materialized;
        self.expansions += other.expansions;
        self.split_expansions += other.split_expansions;
        self.assist_chunks += other.assist_chunks;
        self.replans += other.replans;
        self.steps.merge(&other.steps);
    }

    /// True when no counter was touched — the cheap per-task merge guard
    /// (every per-step record also bumps an aggregate counter, so checking
    /// the scalars suffices; no 1 KiB struct compare on the hot path).
    pub fn is_empty(&self) -> bool {
        self.scan_rows == 0
            && self.candidates == 0
            && self.filtered == 0
            && self.validated == 0
            && self.embeddings == 0
            && self.materialized == 0
            && self.expansions == 0
            && self.split_expansions == 0
            && self.assist_chunks == 0
            && self.replans == 0
    }

    /// False-positive rate of candidate generation: the fraction of
    /// candidates that were not valid embeddings (paper §V-B remark reports
    /// this is extremely low).
    pub fn false_positive_rate(&self) -> f64 {
        if self.candidates == 0 {
            return 0.0;
        }
        1.0 - self.validated as f64 / self.candidates as f64
    }

    /// Fraction of vertex-count-filtered candidates that were true
    /// embeddings (the paper observes ≈97%).
    pub fn filtered_precision(&self) -> f64 {
        if self.filtered == 0 {
            return 0.0;
        }
        self.validated as f64 / self.filtered as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = MatchMetrics {
            scan_rows: 1,
            candidates: 10,
            filtered: 8,
            validated: 7,
            embeddings: 3,
            materialized: 3,
            expansions: 5,
            split_expansions: 2,
            assist_chunks: 4,
            replans: 1,
            ..Default::default()
        };
        a.steps.record_candidates(1, 10);
        a.steps.record_partials(1, 7);
        let b = a;
        a.merge(&b);
        assert_eq!(a.candidates, 20);
        assert_eq!(a.embeddings, 6);
        assert_eq!(a.materialized, 6);
        assert_eq!(a.expansions, 10);
        assert_eq!(a.split_expansions, 4);
        assert_eq!(a.assist_chunks, 8);
        assert_eq!(a.replans, 2);
        assert_eq!(a.steps.candidates(), &[0, 20]);
        assert_eq!(a.steps.partials(), &[0, 14]);
    }

    #[test]
    fn rates() {
        let m = MatchMetrics {
            candidates: 100,
            filtered: 50,
            validated: 40,
            ..Default::default()
        };
        assert!((m.false_positive_rate() - 0.6).abs() < 1e-9);
        assert!((m.filtered_precision() - 0.8).abs() < 1e-9);
        let empty = MatchMetrics::default();
        assert_eq!(empty.false_positive_rate(), 0.0);
        assert_eq!(empty.filtered_precision(), 0.0);
    }

    #[test]
    fn step_counts_bound_and_emptiness() {
        let mut s = StepCounts::default();
        assert!(s.is_empty());
        s.record_candidates(2, 5);
        assert_eq!(s.len(), 3);
        assert_eq!(s.candidates(), &[0, 0, 5]);
        // Out-of-range positions are dropped, not panicking.
        s.record_candidates(MAX_PLAN_STEPS, 1);
        assert_eq!(s.len(), 3);

        let mut m = MatchMetrics::default();
        assert!(m.is_empty());
        m.expansions = 1;
        assert!(!m.is_empty());
    }
}
