//! Execution metrics.
//!
//! The counters mirror the quantities the paper reports in Fig. 9
//! ("Candidates Filtering"): the number of candidate hyperedges produced by
//! Algorithm 4, how many survive the cheap vertex-count check of
//! Observation V.5 ("Filtered"), and how many are true embeddings after the
//! vertex-profile comparison ("Embeddings"). Engines keep one
//! `MatchMetrics` per worker and merge at the end, so recording is free of
//! contention.

use serde::{Deserialize, Serialize};

/// Counters collected during one match execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchMetrics {
    /// Rows emitted by the SCAN operator (matches of the first query edge).
    pub scan_rows: u64,
    /// Candidate hyperedges produced by candidate generation (Fig. 9
    /// "Candidates"), summed over all EXPAND steps.
    pub candidates: u64,
    /// Candidates that passed the vertex-count check of Observation V.5
    /// (Fig. 9 "Filtered").
    pub filtered: u64,
    /// Candidates that passed full vertex-profile validation — i.e. valid
    /// (partial) embeddings produced by EXPAND.
    pub validated: u64,
    /// Complete embeddings delivered to the sink (Fig. 9 "Embeddings").
    pub embeddings: u64,
    /// EXPAND invocations (one per partial embedding per step).
    pub expansions: u64,
    /// Expansions whose candidate range was published as splittable
    /// (DESIGN.md §12): the validating loop could be joined mid-flight by
    /// idle workers instead of running serially on one.
    pub split_expansions: u64,
    /// Candidate chunks claimed by *assisting* workers — participants that
    /// joined a splittable expansion through a stolen assist ticket rather
    /// than having generated the candidates themselves.
    pub assist_chunks: u64,
}

impl MatchMetrics {
    /// Merges another worker's counters into this one.
    pub fn merge(&mut self, other: &MatchMetrics) {
        self.scan_rows += other.scan_rows;
        self.candidates += other.candidates;
        self.filtered += other.filtered;
        self.validated += other.validated;
        self.embeddings += other.embeddings;
        self.expansions += other.expansions;
        self.split_expansions += other.split_expansions;
        self.assist_chunks += other.assist_chunks;
    }

    /// False-positive rate of candidate generation: the fraction of
    /// candidates that were not valid embeddings (paper §V-B remark reports
    /// this is extremely low).
    pub fn false_positive_rate(&self) -> f64 {
        if self.candidates == 0 {
            return 0.0;
        }
        1.0 - self.validated as f64 / self.candidates as f64
    }

    /// Fraction of vertex-count-filtered candidates that were true
    /// embeddings (the paper observes ≈97%).
    pub fn filtered_precision(&self) -> f64 {
        if self.filtered == 0 {
            return 0.0;
        }
        self.validated as f64 / self.filtered as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = MatchMetrics {
            scan_rows: 1,
            candidates: 10,
            filtered: 8,
            validated: 7,
            embeddings: 3,
            expansions: 5,
            split_expansions: 2,
            assist_chunks: 4,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.candidates, 20);
        assert_eq!(a.embeddings, 6);
        assert_eq!(a.expansions, 10);
        assert_eq!(a.split_expansions, 4);
        assert_eq!(a.assist_chunks, 8);
    }

    #[test]
    fn rates() {
        let m = MatchMetrics {
            candidates: 100,
            filtered: 50,
            validated: 40,
            ..Default::default()
        };
        assert!((m.false_positive_rate() - 0.6).abs() < 1e-9);
        assert!((m.filtered_precision() - 0.8).abs() < 1e-9);
        let empty = MatchMetrics::default();
        assert_eq!(empty.false_positive_rate(), 0.0);
        assert_eq!(empty.filtered_precision(), 0.0);
    }
}
