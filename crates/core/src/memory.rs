//! Intermediate-result memory accounting.
//!
//! Fig. 11 of the paper compares the memory footprint of the task-based
//! scheduler against BFS-style (level-at-a-time) scheduling. We account the
//! bytes of *materialised partial embeddings* (the quantity Theorem VI.1
//! bounds) with a shared live/peak tracker: each executor registers every
//! embedding it materialises and releases it when consumed.

use std::sync::atomic::{AtomicI64, Ordering};

/// Tracks live and peak bytes of materialised intermediate results.
#[derive(Debug, Default)]
pub struct MemoryTracker {
    live: AtomicI64,
    peak: AtomicI64,
}

impl MemoryTracker {
    /// Creates a zeroed tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `bytes` of newly materialised intermediate state.
    #[inline]
    pub fn alloc(&self, bytes: usize) {
        let now = self.live.fetch_add(bytes as i64, Ordering::Relaxed) + bytes as i64;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Releases `bytes` of intermediate state.
    #[inline]
    pub fn free(&self, bytes: usize) {
        self.live.fetch_sub(bytes as i64, Ordering::Relaxed);
    }

    /// Currently live bytes.
    pub fn live_bytes(&self) -> i64 {
        self.live.load(Ordering::Relaxed)
    }

    /// Peak live bytes observed.
    pub fn peak_bytes(&self) -> i64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Accounted size of one partial embedding of `len` hyperedges: the
    /// edge-id payload plus a fixed per-task overhead (box header + depth +
    /// queue slot).
    #[inline]
    pub fn embedding_bytes(len: usize) -> usize {
        len * std::mem::size_of::<u32>() + 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_live_and_peak() {
        let t = MemoryTracker::new();
        t.alloc(100);
        t.alloc(50);
        assert_eq!(t.live_bytes(), 150);
        assert_eq!(t.peak_bytes(), 150);
        t.free(120);
        assert_eq!(t.live_bytes(), 30);
        assert_eq!(t.peak_bytes(), 150);
        t.alloc(10);
        assert_eq!(t.peak_bytes(), 150, "peak keeps its high-water mark");
    }

    #[test]
    fn embedding_bytes_scales_with_len() {
        assert!(MemoryTracker::embedding_bytes(6) > MemoryTracker::embedding_bytes(2));
        assert_eq!(
            MemoryTracker::embedding_bytes(4) - MemoryTracker::embedding_bytes(0),
            16
        );
    }

    #[test]
    fn concurrent_updates_are_consistent() {
        use std::sync::Arc;
        let t = Arc::new(MemoryTracker::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        t.alloc(8);
                        t.free(8);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.live_bytes(), 0);
        assert!(t.peak_bytes() >= 8);
        assert!(t.peak_bytes() <= 32);
    }
}
