//! Executors: sequential DFS and level-at-a-time BFS.
//!
//! Both interpret the same compiled [`crate::plan::Plan`] with the same
//! candidate generation and validation kernels; they differ only in
//! *scheduling* — which is exactly the paper's point in §VI-B. The
//! parallel task-based scheduler lives in [`crate::engine`].

pub mod bfs;
pub mod sequential;

pub use bfs::BfsExecutor;
pub use sequential::SequentialExecutor;

use std::time::Duration;

use crate::metrics::MatchMetrics;

/// Per-worker execution statistics (Fig. 12's per-worker busy times).
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Time spent executing tasks (excludes idle/steal spinning).
    pub busy: Duration,
    /// Tasks executed.
    pub tasks: u64,
    /// Successful steal operations.
    pub steals: u64,
    /// Expansions this worker split for the work-assisting scheduler
    /// (DESIGN.md §12): their candidate ranges were published for idle
    /// peers to join mid-flight.
    pub splits: u64,
    /// Assist tickets this worker executed that claimed at least one chunk
    /// of another worker's split expansion.
    pub assists: u64,
    /// Complete embeddings this worker delivered.
    pub matches: u64,
}

/// Outcome of one execution.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Merged metrics (Fig. 9 counters).
    pub metrics: MatchMetrics,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Whether the timeout fired before completion (results are a lower
    /// bound in that case).
    pub timed_out: bool,
    /// Per-worker statistics (one entry for sequential execution).
    pub workers: Vec<WorkerStats>,
    /// Peak bytes of materialised intermediate embeddings.
    pub peak_memory_bytes: i64,
}

impl RunStats {
    /// Total embeddings found (from the merged metrics).
    pub fn embeddings(&self) -> u64 {
        self.metrics.embeddings
    }
}
