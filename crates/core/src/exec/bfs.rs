//! Level-at-a-time (BFS) executor — the memory-hungry strawman of Fig. 11.
//!
//! Expands *all* partial embeddings of one step before moving to the next,
//! materialising every intermediate result. CPU utilisation is easy to get
//! (the level is split across threads) but memory grows with the largest
//! intermediate level — exponential in the worst case — which is exactly
//! the behaviour the paper's task-based scheduler avoids. Peak memory is
//! accounted through [`MemoryTracker`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use hgmatch_hypergraph::Hypergraph;
use parking_lot::Mutex;

use crate::candidates::{generate_candidates, ExpansionState};
use crate::config::MatchConfig;
use crate::exec::{RunStats, WorkerStats};
use crate::memory::MemoryTracker;
use crate::metrics::MatchMetrics;
use crate::plan::Plan;
use crate::sink::Sink;
use crate::validate::{validate_candidate, ValidateScratch, Validation};

/// Level-synchronous breadth-first executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct BfsExecutor;

impl BfsExecutor {
    /// Runs `plan` against `data`, delivering results to `sink`.
    pub fn run<S: Sink>(
        plan: &Plan,
        data: &Hypergraph,
        sink: &S,
        config: &MatchConfig,
    ) -> RunStats {
        let start = Instant::now();
        let mut stats = RunStats {
            workers: vec![WorkerStats::default(); config.threads.max(1)],
            ..RunStats::default()
        };
        if plan.is_infeasible() {
            stats.elapsed = start.elapsed();
            return stats;
        }

        let tracker = MemoryTracker::new();
        let deadline = config.timeout.map(|t| start + t);
        let aborted = AtomicBool::new(false);
        let mut metrics = MatchMetrics::default();

        // Level 0: scan.
        let mut level: Vec<Box<[u32]>> = {
            let step = &plan.steps()[0];
            let mut state = ExpansionState::new();
            state.prepare(data, step, &[]);
            generate_candidates(data, step, &[], &mut state, config);
            let partition = data.partition(step.partition.expect("feasible plan"));
            state
                .candidates
                .iter()
                .map(|&row| {
                    tracker.alloc(MemoryTracker::embedding_bytes(1));
                    vec![partition.global_id(row).raw()].into_boxed_slice()
                })
                .collect()
        };
        metrics.scan_rows = level.len() as u64;

        for depth in 1..plan.len() {
            if level.is_empty() || abort_now(&aborted, deadline, sink) {
                break;
            }
            let threads = config.threads.max(1).min(level.len().max(1));
            let chunk = level.len().div_ceil(threads);
            let merged: Mutex<(Vec<Box<[u32]>>, MatchMetrics)> =
                Mutex::new((Vec::new(), MatchMetrics::default()));

            std::thread::scope(|scope| {
                for slice in level.chunks(chunk) {
                    let merged = &merged;
                    let tracker = &tracker;
                    let aborted = &aborted;
                    scope.spawn(move || {
                        let mut state = ExpansionState::new();
                        let mut scratch = ValidateScratch::new();
                        let mut local: Vec<Box<[u32]>> = Vec::new();
                        let mut lm = MatchMetrics::default();
                        let step = &plan.steps()[depth];
                        // Absent signature ⇒ the level dies here; skip all
                        // state preparation.
                        let Some(pid) = step.partition else {
                            let mut guard = merged.lock();
                            guard.1.merge(&lm);
                            return;
                        };
                        let partition = data.partition(pid);
                        for (i, emb) in slice.iter().enumerate() {
                            if i % 256 == 0 && abort_now(aborted, deadline, sink) {
                                break;
                            }
                            state.prepare(data, step, emb);
                            let produced = generate_candidates(data, step, emb, &mut state, config);
                            lm.expansions += 1;
                            lm.candidates += produced as u64;
                            for &row in &state.candidates {
                                let global = partition.global_id(row).raw();
                                match validate_candidate(
                                    data,
                                    step,
                                    depth,
                                    emb,
                                    &state,
                                    global,
                                    partition.row(row),
                                    &mut scratch,
                                ) {
                                    Validation::Valid => {
                                        lm.filtered += 1;
                                        lm.validated += 1;
                                        let mut next = Vec::with_capacity(depth + 1);
                                        next.extend_from_slice(emb);
                                        next.push(global);
                                        tracker.alloc(MemoryTracker::embedding_bytes(depth + 1));
                                        local.push(next.into_boxed_slice());
                                    }
                                    Validation::WrongProfiles => lm.filtered += 1,
                                    _ => {}
                                }
                            }
                        }
                        let mut guard = merged.lock();
                        guard.0.append(&mut local);
                        guard.1.merge(&lm);
                    });
                }
            });

            let (next, level_metrics) = merged.into_inner();
            metrics.merge(&level_metrics);
            for emb in &level {
                tracker.free(MemoryTracker::embedding_bytes(emb.len()));
            }
            level = next;
        }

        // Deliver the final level.
        if !abort_now(&aborted, deadline, sink) {
            metrics.embeddings = level.len() as u64;
            sink.add_count(level.len() as u64);
            if sink.needs_embeddings() {
                metrics.materialized = level.len() as u64;
                for emb in &level {
                    sink.consume(&plan.to_query_order(emb));
                }
            }
        }
        for emb in &level {
            tracker.free(MemoryTracker::embedding_bytes(emb.len()));
        }

        stats.metrics = metrics;
        stats.timed_out = aborted.load(Ordering::Relaxed);
        stats.elapsed = start.elapsed();
        stats.peak_memory_bytes = tracker.peak_bytes();
        stats
    }
}

fn abort_now<S: Sink>(aborted: &AtomicBool, deadline: Option<Instant>, sink: &S) -> bool {
    if aborted.load(Ordering::Relaxed) {
        return true;
    }
    if sink.is_satisfied() || deadline.is_some_and(|d| Instant::now() >= d) {
        aborted.store(true, Ordering::Relaxed);
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Planner;
    use crate::query::QueryGraph;
    use crate::sink::{CollectSink, CountSink};
    use hgmatch_hypergraph::{HypergraphBuilder, Label};

    fn paper_data() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1, 2, 0] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![4, 6]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![3, 5, 6]).unwrap();
        b.add_edge(vec![0, 1, 4, 6]).unwrap();
        b.add_edge(vec![2, 3, 4, 5]).unwrap();
        b.build().unwrap()
    }

    fn paper_query() -> QueryGraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![0, 1, 3, 4]).unwrap();
        QueryGraph::new(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn matches_sequential_results() {
        let data = paper_data();
        let plan = Planner::plan(&paper_query(), &data).unwrap();
        let sink = CollectSink::new();
        let stats = BfsExecutor::run(&plan, &data, &sink, &MatchConfig::default());
        assert_eq!(stats.embeddings(), 2);
        let results = sink.into_results();
        assert_eq!(results[0].raw(), &[0, 2, 4]);
        assert_eq!(results[1].raw(), &[1, 3, 5]);
    }

    #[test]
    fn parallel_bfs_matches_too() {
        let data = paper_data();
        let plan = Planner::plan(&paper_query(), &data).unwrap();
        let sink = CountSink::new();
        let stats = BfsExecutor::run(&plan, &data, &sink, &MatchConfig::parallel(4));
        assert_eq!(stats.embeddings(), 2);
        assert_eq!(sink.count(), 2);
    }

    #[test]
    fn peak_memory_is_tracked() {
        let data = paper_data();
        let plan = Planner::plan(&paper_query(), &data).unwrap();
        let sink = CountSink::new();
        let stats = BfsExecutor::run(&plan, &data, &sink, &MatchConfig::default());
        assert!(stats.peak_memory_bytes > 0);
    }

    #[test]
    fn infeasible_plan_short_circuits() {
        let data = paper_data();
        let mut b = HypergraphBuilder::new();
        b.add_vertices(2, Label::new(9));
        b.add_edge(vec![0, 1]).unwrap();
        let q = QueryGraph::new(&b.build().unwrap()).unwrap();
        let plan = Planner::plan(&q, &data).unwrap();
        let sink = CountSink::new();
        let stats = BfsExecutor::run(&plan, &data, &sink, &MatchConfig::default());
        assert_eq!(stats.embeddings(), 0);
    }
}
