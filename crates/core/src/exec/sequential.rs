//! Single-threaded depth-first executor.
//!
//! The reference implementation of the match-by-hyperedge framework
//! (Algorithm 2 executed depth-first): one partial embedding is live per
//! depth, so memory is `O(aq · |E(q)| + Σ candidates)`. All Fig. 9
//! filtering metrics are collected here.

use std::time::Instant;

use hgmatch_hypergraph::Hypergraph;

use crate::candidates::{generate_candidates, ExpansionState};
use crate::config::MatchConfig;
use crate::exec::{RunStats, WorkerStats};
use crate::metrics::MatchMetrics;
use crate::plan::Plan;
use crate::sink::Sink;
use crate::validate::{validate_candidate, ValidateScratch, Validation};

/// How many expansions between timeout / early-stop checks.
const CHECK_INTERVAL: u64 = 1024;

/// Sequential (single-thread, depth-first) executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialExecutor;

struct Dfs<'a, S: Sink> {
    plan: &'a Plan,
    data: &'a Hypergraph,
    sink: &'a S,
    config: &'a MatchConfig,
    states: Vec<ExpansionState>,
    scratch: ValidateScratch,
    metrics: MatchMetrics,
    emb: Vec<u32>,
    deadline: Option<Instant>,
    checks: u64,
    stop: bool,
    pending_count: u64,
}

impl SequentialExecutor {
    /// Runs `plan` against `data`, delivering results to `sink`.
    pub fn run<S: Sink>(
        plan: &Plan,
        data: &Hypergraph,
        sink: &S,
        config: &MatchConfig,
    ) -> RunStats {
        let start = Instant::now();
        let mut stats = RunStats::default();
        if plan.is_infeasible() {
            stats.elapsed = start.elapsed();
            stats.workers = vec![WorkerStats::default()];
            return stats;
        }

        let mut dfs = Dfs {
            plan,
            data,
            sink,
            config,
            states: (0..plan.len()).map(|_| ExpansionState::new()).collect(),
            scratch: ValidateScratch::new(),
            metrics: MatchMetrics::default(),
            emb: Vec::with_capacity(plan.len()),
            deadline: config.timeout.map(|t| start + t),
            checks: 0,
            stop: false,
            pending_count: 0,
        };
        dfs.descend(0);
        dfs.flush_counts();

        stats.metrics = dfs.metrics;
        stats.timed_out = dfs.stop && dfs.deadline.is_some_and(|d| Instant::now() >= d);
        stats.elapsed = start.elapsed();
        stats.workers = vec![WorkerStats {
            busy: stats.elapsed,
            tasks: dfs.metrics.expansions + 1,
            steals: 0,
            splits: 0,
            assists: 0,
            matches: dfs.metrics.embeddings,
        }];
        stats
    }
}

impl<S: Sink> Dfs<'_, S> {
    fn descend(&mut self, depth: usize) {
        if self.stop {
            return;
        }
        if depth == self.plan.len() {
            self.deliver();
            return;
        }

        let step = &self.plan.steps()[depth];
        // An absent signature means zero candidates: skip the state
        // preparation entirely instead of preparing and then discovering
        // there is no partition.
        let partition = match step.partition {
            Some(p) => self.data.partition(p),
            None => {
                if depth > 0 {
                    self.metrics.expansions += 1;
                }
                return;
            }
        };
        self.states[depth].prepare(self.data, step, &self.emb);
        let produced = generate_candidates(
            self.data,
            step,
            &self.emb,
            &mut self.states[depth],
            self.config,
        );

        // Per-step observed counts (the same feedback the adaptive trigger
        // consumes in the parallel engine — recorded here too so
        // single-threaded runs report observed-vs-estimated cardinalities,
        // e.g. for `explain --observed`, but never re-planned: the
        // sequential executor is the reference semantics).
        self.metrics.steps.record_candidates(depth, produced as u64);
        if depth == 0 {
            self.metrics.scan_rows += produced as u64;
            // Scan rows are valid by construction.
            self.metrics.steps.record_partials(0, produced as u64);
        } else {
            self.metrics.expansions += 1;
            self.metrics.candidates += produced as u64;
        }
        let mut valid_here = 0u64;

        // Take ownership of the candidate buffer so deeper recursion can
        // reuse the per-depth state; restored afterwards to keep capacity.
        let cands = std::mem::take(&mut self.states[depth].candidates);
        for &row in &cands {
            if self.stop {
                break;
            }
            self.tick();
            let global = partition.global_id(row).raw();
            if depth == 0 {
                // Scan rows are valid by construction (signature equality).
                self.emb.push(global);
                self.descend(1.min(self.plan.len()));
                self.emb.pop();
                continue;
            }
            let verdict = validate_candidate(
                self.data,
                step,
                depth,
                &self.emb,
                &self.states[depth],
                global,
                partition.row(row),
                &mut self.scratch,
            );
            match verdict {
                Validation::Valid => {
                    self.metrics.filtered += 1;
                    self.metrics.validated += 1;
                    valid_here += 1;
                    self.emb.push(global);
                    self.descend(depth + 1);
                    self.emb.pop();
                }
                Validation::WrongProfiles => {
                    self.metrics.filtered += 1;
                }
                Validation::WrongVertexCount | Validation::Duplicate => {}
            }
        }
        self.states[depth].candidates = cands;
        if depth > 0 {
            self.metrics.steps.record_partials(depth, valid_here);
        }
    }

    fn deliver(&mut self) {
        self.metrics.embeddings += 1;
        self.pending_count += 1;
        if self.sink.needs_embeddings() {
            self.metrics.materialized += 1;
            let ordered = self.plan.to_query_order(&self.emb);
            self.sink.consume(&ordered);
        }
        if self.pending_count >= CHECK_INTERVAL {
            self.flush_counts();
        }
    }

    fn flush_counts(&mut self) {
        if self.pending_count > 0 {
            self.sink.add_count(self.pending_count);
            self.pending_count = 0;
        }
    }

    #[inline]
    fn tick(&mut self) {
        self.checks += 1;
        if self.checks.is_multiple_of(CHECK_INTERVAL) {
            if self.sink.is_satisfied() {
                self.stop = true;
            }
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    self.stop = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Planner;
    use crate::query::QueryGraph;
    use crate::sink::{CollectSink, CountSink, FirstKSink};
    use hgmatch_hypergraph::{HypergraphBuilder, Label};

    fn paper_data() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1, 2, 0] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![4, 6]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![3, 5, 6]).unwrap();
        b.add_edge(vec![0, 1, 4, 6]).unwrap();
        b.add_edge(vec![2, 3, 4, 5]).unwrap();
        b.build().unwrap()
    }

    fn paper_query() -> QueryGraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![0, 1, 3, 4]).unwrap();
        QueryGraph::new(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn paper_example_finds_two_embeddings() {
        let data = paper_data();
        let plan = Planner::plan(&paper_query(), &data).unwrap();
        let sink = CollectSink::new();
        let stats = SequentialExecutor::run(&plan, &data, &sink, &MatchConfig::default());
        assert_eq!(stats.embeddings(), 2);
        assert!(!stats.timed_out);
        let results = sink.into_results();
        // In query-edge order: (q0,q1,q2) → (e0,e2,e4) and (e1,e3,e5).
        assert_eq!(results[0].raw(), &[0, 2, 4]);
        assert_eq!(results[1].raw(), &[1, 3, 5]);
    }

    #[test]
    fn single_edge_query_counts_partition() {
        let data = paper_data();
        let mut b = HypergraphBuilder::new();
        b.add_vertex(Label::new(0));
        b.add_vertex(Label::new(1));
        b.add_edge(vec![0, 1]).unwrap();
        let q = QueryGraph::new(&b.build().unwrap()).unwrap();
        let plan = Planner::plan(&q, &data).unwrap();
        let sink = CountSink::new();
        let stats = SequentialExecutor::run(&plan, &data, &sink, &MatchConfig::default());
        // Two {A,B} data hyperedges.
        assert_eq!(stats.embeddings(), 2);
        assert_eq!(sink.count(), 2);
        assert_eq!(stats.metrics.scan_rows, 2);
    }

    #[test]
    fn infeasible_query_returns_zero() {
        let data = paper_data();
        let mut b = HypergraphBuilder::new();
        b.add_vertices(2, Label::new(7));
        b.add_edge(vec![0, 1]).unwrap();
        let q = QueryGraph::new(&b.build().unwrap()).unwrap();
        let plan = Planner::plan(&q, &data).unwrap();
        let sink = CountSink::new();
        let stats = SequentialExecutor::run(&plan, &data, &sink, &MatchConfig::default());
        assert_eq!(stats.embeddings(), 0);
        assert_eq!(sink.count(), 0);
    }

    #[test]
    fn first_k_stops_early() {
        let data = paper_data();
        let plan = Planner::plan(&paper_query(), &data).unwrap();
        let sink = FirstKSink::new(1);
        SequentialExecutor::run(&plan, &data, &sink, &MatchConfig::default());
        assert_eq!(sink.into_results().len(), 1);
    }

    #[test]
    fn metrics_are_consistent() {
        let data = paper_data();
        let plan = Planner::plan(&paper_query(), &data).unwrap();
        let sink = CountSink::new();
        let stats = SequentialExecutor::run(&plan, &data, &sink, &MatchConfig::default());
        let m = stats.metrics;
        assert!(m.filtered <= m.candidates);
        assert!(m.validated <= m.filtered);
        assert!(m.embeddings <= m.validated + m.scan_rows);
        assert!(m.expansions > 0);
    }

    #[test]
    fn disconnected_query_still_correct() {
        // Two independent {A,B} edges in the paper data: e0 {2,4}, e1 {4,6}
        // share v4, so the only disconnected assignments are none — the two
        // edges always intersect. Expect 0 embeddings for a disconnected
        // 2-edge query whose parts must not overlap... they do overlap, so
        // the vertex-count check rejects every pair.
        let data = paper_data();
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 1, 0, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![0, 1]).unwrap();
        b.add_edge(vec![2, 3]).unwrap();
        let q = QueryGraph::new(&b.build().unwrap()).unwrap();
        let plan = Planner::plan(&q, &data).unwrap();
        let sink = CountSink::new();
        let stats = SequentialExecutor::run(&plan, &data, &sink, &MatchConfig::default());
        assert_eq!(stats.embeddings(), 0);
    }
}
