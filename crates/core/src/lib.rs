//! # hgmatch-core
//!
//! The HGMatch match-by-hyperedge subhypergraph matching engine
//! (Yang et al., "HGMatch: A Match-by-Hyperedge Approach for Subgraph
//! Matching on Hypergraphs", ICDE 2023).
//!
//! Instead of extending a partial embedding one *vertex* at a time (the
//! match-by-vertex framework used by every prior subhypergraph matcher),
//! HGMatch expands by one *hyperedge* at a time:
//!
//! 1. [`plan`] computes a matching order over query hyperedges from the
//!    data hypergraph's per-partition cardinality statistics: a
//!    statistics-driven cost model with bounded enumeration of connected
//!    orders ([`cost`], DESIGN.md §13), falling back to the paper's greedy
//!    Algorithm 3 whenever the model predicts no significant win.
//! 2. [`candidates`] generates candidate data hyperedges for the next query
//!    hyperedge purely with sorted-set operations over the inverted
//!    hyperedge index (Algorithm 4, Observations V.1–V.4).
//! 3. [`validate`] removes false positives by comparing multisets of
//!    *vertex profiles* — no backtracking ever happens (Algorithm 5,
//!    Theorem V.2).
//!
//! Execution is expressed as a SCAN → EXPAND* → SINK dataflow
//! ([`operators`]) and scheduled by one of three executors:
//!
//! * [`exec::SequentialExecutor`] — depth-first, single thread, the
//!   reference semantics (also collects the Fig. 9 filtering metrics);
//! * [`exec::BfsExecutor`] — level-at-a-time with full materialisation,
//!   the memory-hungry strawman of Fig. 11;
//! * [`engine::ParallelEngine`] — the paper's task-based scheduler: LIFO
//!   Chase–Lev deques, dynamic work stealing, bounded memory
//!   (§VI, Theorem VI.1).
//!
//! The per-task execution core (candidate generation, validation,
//! delivery) is shared between two *schedulers* of that third executor:
//! the one-shot [`engine::ParallelEngine`], which owns a scoped pool for a
//! single query, and the resident [`serve::MatchServer`], which keeps one
//! worker pool alive for the process lifetime and serves many concurrent
//! queries against a shared data hypergraph — with fair interleaving,
//! per-query cancellation/timeouts/result limits, and a plan cache
//! (DESIGN.md §8). Use [`Matcher`] for one-query-at-a-time workloads and
//! [`serve::MatchServer`] when queries arrive as a stream.
//!
//! ```
//! use hgmatch_hypergraph::{HypergraphBuilder, Label};
//! use hgmatch_core::Matcher;
//!
//! // Data: two triangles sharing a vertex (labels A=0, B=1).
//! let mut b = HypergraphBuilder::new();
//! for &l in &[0u32, 0, 1, 0, 0] {
//!     b.add_vertex(Label::new(l));
//! }
//! b.add_edge(vec![0, 1, 2]).unwrap();
//! b.add_edge(vec![2, 3, 4]).unwrap();
//! let data = b.build().unwrap();
//!
//! // Query: one hyperedge {A, A, B}.
//! let mut q = HypergraphBuilder::new();
//! for &l in &[0u32, 0, 1] {
//!     q.add_vertex(Label::new(l));
//! }
//! q.add_edge(vec![0, 1, 2]).unwrap();
//! let query = q.build().unwrap();
//!
//! let matcher = Matcher::new(&data);
//! assert_eq!(matcher.count(&query).unwrap(), 2);
//! ```

pub(crate) mod adaptive;
pub mod aggregate;
pub mod candidates;
pub mod config;
pub mod cost;
pub mod delta;
pub mod embedding;
pub mod engine;
pub mod error;
pub mod exec;
pub mod extensions;
pub mod matcher;
pub mod memory;
pub mod metrics;
pub mod operators;
pub mod plan;
pub mod query;
pub mod scan;
pub mod serve;
pub mod sink;
pub mod validate;

pub use aggregate::{AggregateMode, AggregateSummary, ScoreFn};
pub use config::MatchConfig;
pub use cost::{CostModel, Explain, OrderEstimate, StepEstimate};
pub use delta::{delta_match, DeltaBatch, DeltaOutcome};
pub use embedding::Embedding;
pub use error::{MatchError, Result};
pub use matcher::{AggregateOutcome, Matcher};
pub use metrics::{MatchMetrics, StepCounts, MAX_PLAN_STEPS};
pub use plan::{Plan, Planner};
pub use query::{validate_query_shape, QueryGraph, MAX_QUERY_EDGES};
pub use serve::{MatchServer, QueryHandle, QueryOptions, QueryOutcome, QueryStatus, ServeConfig};
pub use sink::{CollectSink, CountSink, FirstKSink, SampleSink, Sink, TopKSink};
