//! Query-side analysis.
//!
//! A [`QueryGraph`] wraps a (small) query hypergraph with the derived
//! structure the planner and the matching operators need: per-hyperedge
//! signatures, hyperedge adjacency as 64-bit masks, and per-vertex incidence
//! masks. Queries in the paper's workloads have at most six hyperedges;
//! the engine supports up to 64 so that all incidence sets fit in one word.

use hgmatch_hypergraph::{Hypergraph, Label, Signature};

use crate::error::{MatchError, Result};

/// Maximum number of query hyperedges (incidence masks are `u64`).
pub const MAX_QUERY_EDGES: usize = 64;

/// Validates the engine-level shape constraints of a query hypergraph
/// without compiling it: non-empty, and at most [`MAX_QUERY_EDGES`]
/// hyperedges — which is also [`crate::MAX_PLAN_STEPS`], the width of the
/// per-position `StepCounts` accounting, so anything longer would not
/// merely be slow but silently truncate its own observability. Shared by
/// the CLI's query-file parsers and the HTTP front door's request parser,
/// so untrusted input is rejected with one clear diagnostic at the edge
/// instead of failing deep inside submission.
///
/// # Errors
/// [`MatchError::EmptyQuery`] or [`MatchError::QueryTooLarge`].
pub fn validate_query_shape(query: &Hypergraph) -> Result<()> {
    let ne = query.num_edges();
    if ne == 0 {
        return Err(MatchError::EmptyQuery);
    }
    if ne > MAX_QUERY_EDGES {
        return Err(MatchError::QueryTooLarge {
            edges: ne,
            max: MAX_QUERY_EDGES,
        });
    }
    Ok(())
}

/// A query hypergraph plus derived matching structure.
#[derive(Debug, Clone)]
pub struct QueryGraph {
    /// Sorted vertex list per query hyperedge.
    edges: Vec<Vec<u32>>,
    /// Signature per query hyperedge.
    signatures: Vec<Signature>,
    /// Label per query vertex.
    labels: Vec<Label>,
    /// Bitmask of hyperedges adjacent to hyperedge `i` (excluding `i`).
    adjacency: Vec<u64>,
    /// Bitmask of hyperedges incident to vertex `v`.
    incidence: Vec<u64>,
}

impl QueryGraph {
    /// Analyses a query hypergraph.
    ///
    /// # Errors
    /// Fails if the query has no hyperedges or more than
    /// [`MAX_QUERY_EDGES`].
    pub fn new(query: &Hypergraph) -> Result<Self> {
        validate_query_shape(query)?;
        let ne = query.num_edges();

        let edges: Vec<Vec<u32>> = query.iter_edges().map(|(_, vs)| vs.to_vec()).collect();
        let labels = query.labels().to_vec();
        let signatures: Vec<Signature> = edges
            .iter()
            .map(|vs| Signature::new(vs.iter().map(|&v| labels[v as usize]).collect()))
            .collect();

        let mut incidence = vec![0u64; query.num_vertices()];
        for (i, vs) in edges.iter().enumerate() {
            for &v in vs {
                incidence[v as usize] |= 1 << i;
            }
        }

        let mut adjacency = vec![0u64; ne];
        for (i, adj) in adjacency.iter_mut().enumerate() {
            let mut mask = 0u64;
            for &v in &edges[i] {
                mask |= incidence[v as usize];
            }
            *adj = mask & !(1 << i);
        }

        Ok(Self {
            edges,
            signatures,
            labels,
            adjacency,
            incidence,
        })
    }

    /// Number of query hyperedges `|E(q)|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of query vertices `|V(q)|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Sorted vertex list of query hyperedge `i`.
    #[inline]
    pub fn edge(&self, i: usize) -> &[u32] {
        &self.edges[i]
    }

    /// Signature of query hyperedge `i`.
    #[inline]
    pub fn signature(&self, i: usize) -> &Signature {
        &self.signatures[i]
    }

    /// Label of query vertex `v`.
    #[inline]
    pub fn label(&self, v: u32) -> Label {
        self.labels[v as usize]
    }

    /// Bitmask of hyperedges adjacent to hyperedge `i` (sharing ≥1 vertex).
    #[inline]
    pub fn adjacent_edges(&self, i: usize) -> u64 {
        self.adjacency[i]
    }

    /// Bitmask of hyperedges incident to vertex `v`.
    #[inline]
    pub fn incident_edges(&self, v: u32) -> u64 {
        self.incidence[v as usize]
    }

    /// Degree of vertex `v` within the hyperedge subset `mask`.
    #[inline]
    pub fn degree_within(&self, v: u32, mask: u64) -> u32 {
        (self.incidence[v as usize] & mask).count_ones()
    }

    /// Average arity `a_q` of the query (used in the memory-bound theorem).
    pub fn average_arity(&self) -> f64 {
        let total: usize = self.edges.iter().map(Vec::len).sum();
        total as f64 / self.edges.len() as f64
    }

    /// Whether the query is connected (every hyperedge reachable from the
    /// first through shared vertices). The paper assumes connected queries;
    /// the planner falls back gracefully for disconnected ones.
    pub fn is_connected(&self) -> bool {
        let ne = self.num_edges();
        let mut visited = 1u64;
        let mut frontier = 1u64;
        while frontier != 0 {
            let mut next = 0u64;
            let mut f = frontier;
            while f != 0 {
                let i = f.trailing_zeros() as usize;
                f &= f - 1;
                next |= self.adjacency[i] & !visited;
            }
            visited |= next;
            frontier = next;
        }
        visited.count_ones() as usize == ne
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgmatch_hypergraph::HypergraphBuilder;

    /// The paper's Fig. 1a query: u0:A u1:C u2:A u3:A u4:B,
    /// edges ({u2,u4}, {u0,u1,u2}, {u0,u1,u3,u4}).
    pub(crate) fn paper_query() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![0, 1, 3, 4]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn rejects_empty_query() {
        let q = HypergraphBuilder::new().build().unwrap();
        assert_eq!(QueryGraph::new(&q).unwrap_err(), MatchError::EmptyQuery);
    }

    #[test]
    fn rejects_oversized_query() {
        let mut b = HypergraphBuilder::new();
        b.add_vertices(66, Label::new(0));
        for i in 0..65 {
            b.add_edge(vec![i, i + 1]).unwrap();
        }
        let q = b.build().unwrap();
        assert!(matches!(
            QueryGraph::new(&q).unwrap_err(),
            MatchError::QueryTooLarge { edges: 65, max: 64 }
        ));
    }

    #[test]
    fn adjacency_masks() {
        let q = QueryGraph::new(&paper_query()).unwrap();
        assert_eq!(q.num_edges(), 3);
        assert_eq!(q.num_vertices(), 5);
        // e0 {u2,u4} shares u2 with e1 and u4 with e2.
        assert_eq!(q.adjacent_edges(0), 0b110);
        assert_eq!(q.adjacent_edges(1), 0b101);
        assert_eq!(q.adjacent_edges(2), 0b011);
    }

    #[test]
    fn incidence_masks_and_degree() {
        let q = QueryGraph::new(&paper_query()).unwrap();
        // u2 ∈ e0, e1.
        assert_eq!(q.incident_edges(2), 0b011);
        // u0 ∈ e1, e2.
        assert_eq!(q.incident_edges(0), 0b110);
        assert_eq!(q.degree_within(2, 0b001), 1);
        assert_eq!(q.degree_within(2, 0b111), 2);
        assert_eq!(q.degree_within(3, 0b011), 0);
    }

    #[test]
    fn signatures_match_labels() {
        let q = QueryGraph::new(&paper_query()).unwrap();
        assert_eq!(q.signature(0).labels(), &[Label::new(0), Label::new(1)]);
        assert_eq!(
            q.signature(2).labels(),
            &[Label::new(0), Label::new(0), Label::new(1), Label::new(2)]
        );
    }

    #[test]
    fn connectivity() {
        let q = QueryGraph::new(&paper_query()).unwrap();
        assert!(q.is_connected());

        let mut b = HypergraphBuilder::new();
        b.add_vertices(4, Label::new(0));
        b.add_edge(vec![0, 1]).unwrap();
        b.add_edge(vec![2, 3]).unwrap();
        let disconnected = QueryGraph::new(&b.build().unwrap()).unwrap();
        assert!(!disconnected.is_connected());
    }

    #[test]
    fn average_arity() {
        let q = QueryGraph::new(&paper_query()).unwrap();
        assert!((q.average_arity() - 3.0).abs() < 1e-9);
    }
}
