//! The dataflow model (paper §VI-A).
//!
//! A compiled plan is presented as a dataflow graph — always a straight
//! path `SCAN → EXPAND* → SINK` (Fig. 5a). The executors interpret the plan
//! steps directly; this module gives the dataflow an explicit, inspectable
//! form for `EXPLAIN`-style output, tooling and tests, and is the natural
//! extension point for the richer operators (aggregation, property filters)
//! the paper sketches as future work.

use std::fmt;

use crate::plan::Plan;

/// One dataflow operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operator {
    /// Scans the partition matching the first query hyperedge's signature.
    Scan {
        /// Query hyperedge matched by the scan.
        query_edge: u32,
        /// Cardinality of the scanned partition (0 when absent).
        cardinality: usize,
    },
    /// Expands each partial embedding by one hyperedge.
    Expand {
        /// Query hyperedge matched by this expansion.
        query_edge: u32,
        /// Number of candidate-generation anchors.
        anchors: usize,
        /// Cardinality of the target partition (0 when absent).
        cardinality: usize,
    },
    /// Consumes complete embeddings (count or output).
    Sink,
}

/// A dataflow graph: a path of operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataflow {
    operators: Vec<Operator>,
}

impl Dataflow {
    /// Builds the dataflow for a plan against a data hypergraph.
    pub fn from_plan(plan: &Plan, data: &hgmatch_hypergraph::Hypergraph) -> Self {
        let mut operators = Vec::with_capacity(plan.len() + 1);
        for (i, step) in plan.steps().iter().enumerate() {
            let cardinality = step.partition.map_or(0, |p| data.partition(p).len());
            if i == 0 {
                operators.push(Operator::Scan {
                    query_edge: step.query_edge,
                    cardinality,
                });
            } else {
                operators.push(Operator::Expand {
                    query_edge: step.query_edge,
                    anchors: step.anchors.len(),
                    cardinality,
                });
            }
        }
        operators.push(Operator::Sink);
        Self { operators }
    }

    /// The operators, SCAN first, SINK last.
    pub fn operators(&self) -> &[Operator] {
        &self.operators
    }

    /// Number of operators (|E(q)| + 1).
    pub fn len(&self) -> usize {
        self.operators.len()
    }

    /// Dataflows always contain at least SCAN and SINK.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, op) in self.operators.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            match op {
                Operator::Scan {
                    query_edge,
                    cardinality,
                } => {
                    write!(f, "SCAN(q{query_edge}) [card={cardinality}]")?;
                }
                Operator::Expand {
                    query_edge,
                    anchors,
                    cardinality,
                } => {
                    write!(
                        f,
                        "EXPAND(q{query_edge}) [anchors={anchors}, card={cardinality}]"
                    )?;
                }
                Operator::Sink => write!(f, "SINK")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Planner;
    use crate::query::QueryGraph;
    use hgmatch_hypergraph::{HypergraphBuilder, Label};

    fn tiny() -> (hgmatch_hypergraph::Hypergraph, QueryGraph) {
        let mut d = HypergraphBuilder::new();
        d.add_vertices(3, Label::new(0));
        d.add_edge(vec![0, 1]).unwrap();
        d.add_edge(vec![1, 2]).unwrap();
        let data = d.build().unwrap();
        let mut q = HypergraphBuilder::new();
        q.add_vertices(3, Label::new(0));
        q.add_edge(vec![0, 1]).unwrap();
        q.add_edge(vec![1, 2]).unwrap();
        (data, QueryGraph::new(&q.build().unwrap()).unwrap())
    }

    #[test]
    fn path_shape() {
        let (data, query) = tiny();
        let plan = Planner::plan(&query, &data).unwrap();
        let df = Dataflow::from_plan(&plan, &data);
        assert_eq!(df.len(), 3);
        assert!(matches!(df.operators()[0], Operator::Scan { .. }));
        assert!(matches!(df.operators()[1], Operator::Expand { .. }));
        assert_eq!(df.operators()[2], Operator::Sink);
    }

    #[test]
    fn display_is_explainable() {
        let (data, query) = tiny();
        let plan = Planner::plan(&query, &data).unwrap();
        let text = Dataflow::from_plan(&plan, &data).to_string();
        assert!(text.contains("SCAN"));
        assert!(text.contains("EXPAND"));
        assert!(text.ends_with("SINK"));
        assert!(text.contains("card=2"));
    }
}
