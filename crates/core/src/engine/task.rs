//! The shared per-task execution core.
//!
//! One *task* (paper Definition VI.1) is the unit both schedulers trade in:
//! the one-shot [`ParallelEngine`](super::ParallelEngine) (scoped pool, one
//! query per run) and the resident serving pool of [`crate::serve`] (one
//! pool, many concurrent queries). This module owns everything that happens
//! *inside* a task — scan-range splitting, candidate generation, validation,
//! delivery, spill-buffer pooling, memory accounting — while the scheduler
//! supplies two closures:
//!
//! * `emit(Task)` — where child tasks go. The one-shot engine pushes to its
//!   local deque and bumps the global pending counter; the serving pool
//!   additionally tags each child with its query handle so tasks of many
//!   queries can interleave in one deque.
//! * `abort() -> bool` — the cooperative stop signal, polled at task entry
//!   and every [`ABORT_PROBE`] candidates inside a long expansion, so
//!   cancellation and timeouts take effect *mid-expansion* instead of at
//!   the next task boundary.
//!
//! Child expansions are emitted in **reverse candidate order**: the worker
//! deques are LIFO, so popping then visits candidates in ascending order —
//! the exact depth-first order of [`crate::exec::SequentialExecutor`]. With
//! one worker the delivery sequence is therefore identical to the
//! sequential executor's, which is what makes `max_results` early-exit
//! deterministic (and testable) under the serving layer.

use crossbeam::deque::{Steal, Stealer, Worker as Deque};
use hgmatch_hypergraph::Hypergraph;

use crate::candidates::{generate_candidates, ExpansionState};
use crate::config::MatchConfig;
use crate::memory::MemoryTracker;
use crate::metrics::MatchMetrics;
use crate::plan::Plan;
use crate::sink::Sink;
use crate::validate::{validate_candidate, ValidateScratch, Validation};

/// Abort polls / deadline checks happen every this many probe ticks (the
/// schedulers' `abort` closures are expected to do the cheap flag load every
/// call and the expensive checks on this cadence).
pub(crate) const CHECK_INTERVAL: u64 = 256;

/// Candidates validated between `abort()` polls inside one expansion, so a
/// cancelled query releases its worker even mid-way through a huge
/// candidate list.
const ABORT_PROBE: usize = 1024;

/// Partial embeddings of at most this many edges live inline in the task —
/// no heap allocation on the expansion path. Queries with more hyperedges
/// than this spill to pooled buffers (DESIGN.md §6.2).
pub(crate) const INLINE_EMB: usize = 8;

/// Recycled spill buffers kept per worker.
const POOL_CAP: usize = 64;

/// A schedulable unit (paper Definition VI.1).
#[derive(Debug)]
pub(crate) enum Task {
    /// Scan rows `start..end` of the first step's partition; splits itself
    /// while the range exceeds the configured chunk size.
    Scan { start: u32, end: u32 },
    /// Expand the partial embedding `emb[..depth]` (matching-order
    /// positions `0..depth`) at step `depth`. Inline: no allocation.
    Expand { depth: u8, emb: [u32; INLINE_EMB] },
    /// Expansion deeper than [`INLINE_EMB`]; the buffer is recycled through
    /// the executing worker's pool.
    ExpandSpilled { emb: Vec<u32> },
}

/// Everything one task execution needs to know about the query it belongs
/// to. The one-shot engine builds one per run; the serving pool builds one
/// per *task* from the task's query tag.
pub(crate) struct QueryEnv<'a, S: Sink + ?Sized> {
    pub plan: &'a Plan,
    pub data: &'a Hypergraph,
    pub sink: &'a S,
    pub config: &'a MatchConfig,
    pub tracker: &'a MemoryTracker,
}

/// Per-worker scratch reused across tasks — and, in the serving pool,
/// across *queries*: the expansion level-stack caches data-edge prefixes
/// ([`ExpansionState::prepare`]), which are query-agnostic.
#[derive(Debug, Default)]
pub(crate) struct ExecScratch {
    state: ExpansionState,
    validate: ValidateScratch,
    /// Recycled spill buffers for embeddings deeper than [`INLINE_EMB`].
    pool: Vec<Vec<u32>>,
    /// Reused buffer for assembling complete embeddings at the last step.
    full: Vec<u32>,
    /// Reused buffer for query-order delivery.
    ordered: Vec<u32>,
    /// Valid extensions of the current expansion, buffered so children can
    /// be emitted in reverse (LIFO ⇒ ascending pop order).
    valid: Vec<u32>,
}

impl ExecScratch {
    pub(crate) fn new() -> Self {
        Self::default()
    }
}

/// Executes one task against `env`, emitting child tasks through `emit` and
/// polling `abort` cooperatively. Returns the number of complete embeddings
/// this task delivered.
///
/// The task's queued-embedding bytes are released from `env.tracker` here
/// regardless of the abort outcome, so schedulers can account spawned tasks
/// eagerly and drop cancelled ones by simply executing them (the execution
/// degenerates to the accounting).
pub(crate) fn execute_task<S: Sink + ?Sized>(
    env: &QueryEnv<'_, S>,
    scratch: &mut ExecScratch,
    metrics: &mut MatchMetrics,
    task: Task,
    abort: &mut dyn FnMut() -> bool,
    emit: &mut dyn FnMut(Task),
) -> u64 {
    let mut exec = Exec {
        env,
        scratch,
        metrics,
        abort,
        emit,
        delivered: 0,
        uncounted: 0,
    };
    exec.execute(task);
    exec.flush_counts();
    exec.delivered
}

/// xorshift64* — the per-worker steal-victim RNG shared by both schedulers.
pub(crate) fn next_rand(rng: &mut u64) -> u64 {
    let mut x = *rng;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *rng = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Random-victim batch stealing (paper §VI-C): up to `2 * stealers.len()`
/// attempts at taking half of a random victim's deque from its cold
/// (oldest-task) end into `local`. Returns the popped task; the caller
/// records the steal in its own counters.
pub(crate) fn steal_from_victims<T>(
    stealers: &[Stealer<T>],
    local: &Deque<T>,
    self_id: usize,
    rng: &mut u64,
) -> Option<T> {
    let n = stealers.len();
    if n <= 1 {
        return None;
    }
    for _ in 0..2 * n {
        let victim = (next_rand(rng) as usize) % n;
        if victim == self_id {
            continue;
        }
        match stealers[victim].steal_batch_and_pop(local) {
            Steal::Success(t) => return Some(t),
            Steal::Retry | Steal::Empty => continue,
        }
    }
    None
}

struct Exec<'e, 'a, S: Sink + ?Sized> {
    env: &'e QueryEnv<'a, S>,
    scratch: &'e mut ExecScratch,
    metrics: &'e mut MatchMetrics,
    abort: &'e mut dyn FnMut() -> bool,
    emit: &'e mut dyn FnMut(Task),
    delivered: u64,
    uncounted: u64,
}

impl<S: Sink + ?Sized> Exec<'_, '_, S> {
    fn execute(&mut self, task: Task) {
        match task {
            Task::Scan { start, end } => self.execute_scan(start, end),
            Task::Expand { depth, emb } => {
                let depth = depth as usize;
                self.env.tracker.free(MemoryTracker::embedding_bytes(depth));
                self.execute_expand(depth, &emb[..depth]);
            }
            Task::ExpandSpilled { emb } => {
                self.env
                    .tracker
                    .free(MemoryTracker::embedding_bytes(emb.len()));
                self.execute_expand(emb.len(), &emb);
                if self.scratch.pool.len() < POOL_CAP {
                    self.scratch.pool.push(emb);
                }
            }
        }
    }

    fn execute_scan(&mut self, start: u32, end: u32) {
        if (self.abort)() {
            return;
        }
        let chunk = self.env.config.scan_chunk.max(1) as u32;
        if end - start > chunk {
            let mid = start + (end - start) / 2;
            // Emit the far half first so the near half is processed next
            // (LIFO), keeping the scan roughly in order locally.
            (self.emit)(Task::Scan { start: mid, end });
            (self.emit)(Task::Scan { start, end: mid });
            return;
        }

        let plan = self.env.plan;
        let partition = self
            .env
            .data
            .partition(plan.steps()[0].partition.expect("feasible"));
        self.metrics.scan_rows += (end - start) as u64;
        if plan.len() == 1 {
            // Single-edge query: scan rows are complete embeddings.
            for row in start..end {
                let global = partition.global_id(row).raw();
                self.scratch.full.clear();
                self.scratch.full.push(global);
                self.deliver_full();
            }
            return;
        }
        for row in (start..end).rev() {
            let global = partition.global_id(row).raw();
            self.spawn_expand(&[], global);
        }
    }

    fn execute_expand(&mut self, depth: usize, emb: &[u32]) {
        if (self.abort)() {
            return;
        }
        let plan = self.env.plan;
        let data = self.env.data;
        let step = &plan.steps()[depth];
        // A step whose signature is absent from the data can never extend
        // anything: skip the (non-trivial) state preparation outright.
        let Some(pid) = step.partition else {
            self.metrics.expansions += 1;
            return;
        };
        self.scratch.state.prepare(data, step, emb);
        let produced =
            generate_candidates(data, step, emb, &mut self.scratch.state, self.env.config);
        self.metrics.expansions += 1;
        self.metrics.candidates += produced as u64;
        let partition = data.partition(pid);
        let last = depth + 1 == plan.len();

        let cands = std::mem::take(&mut self.scratch.state.candidates);
        let mut valid = std::mem::take(&mut self.scratch.valid);
        valid.clear();
        let mut aborted = false;
        for (i, &row) in cands.iter().enumerate() {
            // Mid-expansion cancellation: a huge candidate list must not pin
            // this worker past a cancel/timeout/limit signal.
            if i % ABORT_PROBE == ABORT_PROBE - 1 && (self.abort)() {
                aborted = true;
                break;
            }
            let global = partition.global_id(row).raw();
            match validate_candidate(
                data,
                step,
                depth,
                emb,
                &self.scratch.state,
                global,
                partition.row(row),
                &mut self.scratch.validate,
            ) {
                Validation::Valid => {
                    self.metrics.filtered += 1;
                    self.metrics.validated += 1;
                    if last {
                        self.scratch.full.clear();
                        self.scratch.full.extend_from_slice(emb);
                        self.scratch.full.push(global);
                        self.deliver_full();
                    } else {
                        valid.push(global);
                    }
                }
                Validation::WrongProfiles => self.metrics.filtered += 1,
                Validation::WrongVertexCount | Validation::Duplicate => {}
            }
        }
        // Reverse emission: the LIFO deque then pops extensions in ascending
        // candidate order, matching the sequential executor's visit order.
        // After a mid-loop abort nothing is emitted — the extensions would
        // only degenerate to accounting when popped, delaying worker
        // release (and nothing has been allocated for them yet).
        if !aborted {
            for idx in (0..valid.len()).rev() {
                let global = valid[idx];
                self.spawn_expand(emb, global);
            }
        }
        self.scratch.state.candidates = cands;
        self.scratch.valid = valid;
    }

    /// Emits the expansion of `parent + [global]`, inline when it fits and
    /// through a pooled spill buffer beyond [`INLINE_EMB`]. The memory
    /// tracker accounts the queued embedding either way — Theorem VI.1
    /// bounds materialised partial embeddings, not allocator traffic.
    fn spawn_expand(&mut self, parent: &[u32], global: u32) {
        let len = parent.len() + 1;
        self.env.tracker.alloc(MemoryTracker::embedding_bytes(len));
        if len <= INLINE_EMB {
            let mut emb = [0u32; INLINE_EMB];
            emb[..parent.len()].copy_from_slice(parent);
            emb[parent.len()] = global;
            (self.emit)(Task::Expand {
                depth: len as u8,
                emb,
            });
        } else {
            let mut buf = self.scratch.pool.pop().unwrap_or_default();
            buf.clear();
            buf.reserve(len);
            buf.extend_from_slice(parent);
            buf.push(global);
            (self.emit)(Task::ExpandSpilled { emb: buf });
        }
    }

    /// Delivers `self.scratch.full` as a complete embedding.
    fn deliver_full(&mut self) {
        self.metrics.embeddings += 1;
        self.delivered += 1;
        // Counts are batched per task (`flush_counts`) so counting costs no
        // shared atomic per embedding.
        self.uncounted += 1;
        if self.env.sink.needs_embeddings() {
            self.env
                .plan
                .to_query_order_into(&self.scratch.full, &mut self.scratch.ordered);
            self.env.sink.consume(&self.scratch.ordered);
        }
    }

    fn flush_counts(&mut self) {
        if self.uncounted > 0 {
            self.env.sink.add_count(self.uncounted);
            self.uncounted = 0;
        }
    }
}
