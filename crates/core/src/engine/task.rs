//! The shared per-task execution core.
//!
//! One *task* (paper Definition VI.1) is the unit both schedulers trade in:
//! the one-shot [`ParallelEngine`](super::ParallelEngine) (scoped pool, one
//! query per run) and the resident serving pool of [`crate::serve`] (one
//! pool, many concurrent queries). This module owns everything that happens
//! *inside* a task — scan-range splitting, candidate generation, validation,
//! delivery, spill-buffer pooling, memory accounting — while the scheduler
//! supplies two closures:
//!
//! * `emit(Task)` — where child tasks go. The one-shot engine pushes to its
//!   local deque and bumps the global pending counter; the serving pool
//!   additionally tags each child with its query handle so tasks of many
//!   queries can interleave in one deque.
//! * `abort() -> bool` — the cooperative stop signal, polled at task entry
//!   and every [`ABORT_PROBE`] candidates inside a long expansion, so
//!   cancellation and timeouts take effect *mid-expansion* instead of at
//!   the next task boundary.
//!
//! Child expansions are emitted in **reverse candidate order**: the worker
//! deques are LIFO, so popping then visits candidates in ascending order —
//! the exact depth-first order of [`crate::exec::SequentialExecutor`]. With
//! one worker the delivery sequence is therefore identical to the
//! sequential executor's, which is what makes `max_results` early-exit
//! deterministic (and testable) under the serving layer.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::deque::{Steal, Stealer, Worker as Deque};
use hgmatch_hypergraph::{Hypergraph, Partition};

use crate::adaptive::AdaptiveState;
use crate::candidates::{generate_candidates_dense, ExpansionState, GenOutput};
use crate::config::MatchConfig;
use crate::memory::MemoryTracker;
use crate::metrics::MatchMetrics;
use crate::plan::Plan;
use crate::scan::ParallelExtract;
use crate::sink::Sink;
use crate::validate::{validate_candidate, ValidateScratch, Validation};

/// Abort polls / deadline checks happen every this many probe ticks (the
/// schedulers' `abort` closures are expected to do the cheap flag load every
/// call and the expensive checks on this cadence).
pub(crate) const CHECK_INTERVAL: u64 = 256;

/// Candidates validated between `abort()` polls inside one expansion, so a
/// cancelled query releases its worker even mid-way through a huge
/// candidate list.
const ABORT_PROBE: usize = 1024;

/// Deliveries batched before the sink's count is flushed mid-task. Counts
/// used to flush only at task end, which starved `is_satisfied()` during
/// one giant (possibly split) expansion: every stop probe saw a stale
/// count and every participant validated its entire share past
/// `max_results`. Small enough that a limit lands within one probe-ish of
/// saturation, large enough that counting stays a batched atomic.
const COUNT_FLUSH: u64 = 64;

/// Partial embeddings of at most this many edges live inline in the task —
/// no heap allocation on the expansion path. Queries with more hyperedges
/// than this spill to pooled buffers (DESIGN.md §6.2).
pub(crate) const INLINE_EMB: usize = 8;

/// Recycled spill buffers kept per worker.
const POOL_CAP: usize = 64;

/// A schedulable unit (paper Definition VI.1).
#[derive(Debug)]
pub(crate) enum Task {
    /// Scan rows `start..end` of the first step's partition; splits itself
    /// while the range exceeds the configured chunk size. Scans carry no
    /// plan-version tag: every adaptive re-plan pins position 0, so a scan
    /// always runs the latest version.
    Scan { start: u32, end: u32 },
    /// Expand the partial embedding `emb[..depth]` (matching-order
    /// positions `0..depth`) at step `depth`. Inline: no allocation.
    /// `ver` is the plan version the embedding was generated under
    /// (DESIGN.md §15); the scheduler resolves which version to execute.
    Expand {
        depth: u8,
        ver: u32,
        emb: [u32; INLINE_EMB],
    },
    /// Expansion deeper than [`INLINE_EMB`]; the buffer is recycled through
    /// the executing worker's pool.
    ExpandSpilled { emb: Vec<u32>, ver: u32 },
    /// An assist ticket for a splittable expansion (DESIGN.md §12): a
    /// claim on the shared candidate range of an expansion some other
    /// worker is (or was) validating. Executing it joins the work-assisting
    /// claim loop; if the range has already drained it degenerates to
    /// accounting.
    Assist { shared: Arc<SplitExpansion> },
}

/// A splittable expansion — the work-assisting scheduler's shared unit.
///
/// One worker ran candidate generation for `emb` and found a list long
/// enough to divide ([`crate::MatchConfig::split_threshold`]); instead of
/// validating it serially, the list and everything needed to *resume the
/// expansion on another worker* (the pinned partial embedding; the plan,
/// data snapshot and sink travel with the task's query environment) moves
/// into this shared object, and `next` becomes the single source of truth
/// for who validates what: every participant — the owner plus any thief
/// that stole an [`Task::Assist`] ticket — claims disjoint `chunk`-sized
/// sub-ranges via `fetch_add` until the range drains. A chunk is therefore
/// validated exactly once, by exactly one participant, with no coordination
/// beyond one atomic per chunk.
#[derive(Debug)]
pub(crate) struct SplitExpansion {
    /// The partial embedding this expansion extends (matching-order data
    /// edge ids; its length is the step index).
    emb: Vec<u32>,
    /// The shared candidate range (materialised list or dense bitmap
    /// pending extraction).
    source: SplitSource,
    /// Next unclaimed candidate index; `fetch_add(chunk)` claims
    /// `[old, old + chunk)`.
    next: AtomicUsize,
    /// Rows per claim.
    chunk: usize,
    /// Plan version the candidates were generated under: every participant
    /// — owner and assisting thieves — validates against exactly this
    /// version's step, never an upgraded one (the candidate list is only
    /// meaningful for the step that produced it).
    ver: u32,
}

/// The candidate range of a [`SplitExpansion`], in one of two
/// representations.
#[derive(Debug)]
pub(crate) enum SplitSource {
    /// Algorithm 4 produced a materialised sorted row list on the owner.
    List(Vec<u32>),
    /// Generation ended on the dense bitmap representation and handed the
    /// words over un-decoded ([`crate::candidates::GenOutput::Dense`]):
    /// every participant first joins the block-state reduce-then-scan
    /// extraction (DESIGN.md §18.1) before claiming validation chunks, so
    /// the bitmap→list materialization itself is parallel across the same
    /// assist tickets that parallelise validation.
    Dense(ParallelExtract),
}

impl SplitExpansion {
    /// Heap bytes this shared expansion materialises (tracked against the
    /// query's [`MemoryTracker`]: allocated at split, released by the
    /// participant that claims the final chunk).
    fn bytes(&self) -> usize {
        self.emb.len() * std::mem::size_of::<u32>()
            + match &self.source {
                SplitSource::List(c) => c.len() * std::mem::size_of::<u32>(),
                SplitSource::Dense(x) => x.bytes(),
            }
    }

    /// Total candidate rows in the shared range.
    fn total(&self) -> usize {
        match &self.source {
            SplitSource::List(c) => c.len(),
            SplitSource::Dense(x) => x.len(),
        }
    }

    /// Candidate row at index `i`. For a dense source this is only
    /// meaningful once the shared extraction completed (participants run
    /// it to completion before claiming).
    #[inline]
    fn row(&self, i: usize) -> u32 {
        match &self.source {
            SplitSource::List(c) => c[i],
            SplitSource::Dense(x) => x.row(i),
        }
    }

    /// The plan version this split's candidates belong to.
    pub(crate) fn ver(&self) -> u32 {
        self.ver
    }
}

/// Everything one task execution needs to know about the query it belongs
/// to. The one-shot engine builds one per run; the serving pool builds one
/// per *task* from the task's query tag.
pub(crate) struct QueryEnv<'a, S: Sink + ?Sized> {
    pub plan: &'a Plan,
    pub data: &'a Hypergraph,
    pub sink: &'a S,
    pub config: &'a MatchConfig,
    pub tracker: &'a MemoryTracker,
    /// Version id of `plan` in the adaptive version table (0 when static).
    /// Children spawned by this task are tagged with it.
    pub ver: u32,
    /// Adaptive re-optimization state (DESIGN.md §15), `None` for static
    /// execution. When set, completed step boundaries feed observed counts
    /// back and may adopt a re-planned suffix.
    pub adaptive: Option<&'a AdaptiveState>,
}

/// Per-worker scratch reused across tasks — and, in the serving pool,
/// across *queries*: the expansion level-stack caches data-edge prefixes
/// ([`ExpansionState::prepare`]), which are query-agnostic.
#[derive(Debug, Default)]
pub(crate) struct ExecScratch {
    state: ExpansionState,
    validate: ValidateScratch,
    /// Recycled spill buffers for embeddings deeper than [`INLINE_EMB`].
    pool: Vec<Vec<u32>>,
    /// Reused buffer for assembling complete embeddings at the last step.
    full: Vec<u32>,
    /// Reused buffer for query-order delivery.
    ordered: Vec<u32>,
    /// Valid extensions of the current expansion, buffered so children can
    /// be emitted in reverse (LIFO ⇒ ascending pop order).
    valid: Vec<u32>,
}

impl ExecScratch {
    pub(crate) fn new() -> Self {
        Self::default()
    }
}

/// Executes one task against `env`, emitting child tasks through `emit` and
/// polling `abort` cooperatively. Returns the number of complete embeddings
/// this task delivered.
///
/// The task's queued-embedding bytes are released from `env.tracker` here
/// regardless of the abort outcome, so schedulers can account spawned tasks
/// eagerly and drop cancelled ones by simply executing them (the execution
/// degenerates to the accounting).
pub(crate) fn execute_task<S: Sink + ?Sized>(
    env: &QueryEnv<'_, S>,
    scratch: &mut ExecScratch,
    metrics: &mut MatchMetrics,
    task: Task,
    abort: &mut dyn FnMut() -> bool,
    emit: &mut dyn FnMut(Task),
) -> u64 {
    let mut exec = Exec {
        env,
        scratch,
        metrics,
        abort,
        emit,
        delivered: 0,
        uncounted: 0,
    };
    exec.execute(task);
    exec.flush_counts();
    exec.delivered
}

/// xorshift64* — the per-worker steal-victim RNG shared by both schedulers.
pub(crate) fn next_rand(rng: &mut u64) -> u64 {
    let mut x = *rng;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *rng = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Random-victim batch stealing (paper §VI-C): up to `2 * stealers.len()`
/// attempts at taking half of a random victim's deque from its cold
/// (oldest-task) end into `local`. Returns the popped task; the caller
/// records the steal in its own counters.
pub(crate) fn steal_from_victims<T>(
    stealers: &[Stealer<T>],
    local: &Deque<T>,
    self_id: usize,
    rng: &mut u64,
) -> Option<T> {
    let n = stealers.len();
    if n <= 1 {
        return None;
    }
    for _ in 0..2 * n {
        let victim = (next_rand(rng) as usize) % n;
        if victim == self_id {
            continue;
        }
        match stealers[victim].steal_batch_and_pop(local) {
            Steal::Success(t) => return Some(t),
            Steal::Retry | Steal::Empty => continue,
        }
    }
    None
}

struct Exec<'e, 'a, S: Sink + ?Sized> {
    env: &'e QueryEnv<'a, S>,
    scratch: &'e mut ExecScratch,
    metrics: &'e mut MatchMetrics,
    abort: &'e mut dyn FnMut() -> bool,
    emit: &'e mut dyn FnMut(Task),
    delivered: u64,
    uncounted: u64,
}

impl<S: Sink + ?Sized> Exec<'_, '_, S> {
    fn execute(&mut self, task: Task) {
        match task {
            Task::Scan { start, end } => self.execute_scan(start, end),
            Task::Expand { depth, ver: _, emb } => {
                let depth = depth as usize;
                self.env.tracker.free(MemoryTracker::embedding_bytes(depth));
                self.execute_expand(depth, &emb[..depth]);
            }
            Task::ExpandSpilled { emb, ver: _ } => {
                self.env
                    .tracker
                    .free(MemoryTracker::embedding_bytes(emb.len()));
                self.execute_expand(emb.len(), &emb);
                if self.scratch.pool.len() < POOL_CAP {
                    self.scratch.pool.push(emb);
                }
            }
            // Tickets carry no queued embedding (the split owner's Expand
            // task already released its bytes), so there is nothing to free.
            Task::Assist { shared } => self.execute_assist(&shared),
        }
    }

    /// Joins the claim loop of a splittable expansion as an assisting
    /// participant: rebuilds the expansion state for the pinned partial
    /// embedding (the one non-amortised cost of resuming on another
    /// worker), then validates chunks until the shared range drains. A
    /// ticket popped after the range drained — or after the query stopped —
    /// degenerates to accounting.
    fn execute_assist(&mut self, shared: &SplitExpansion) {
        if (self.abort)() || shared.next.load(Ordering::Relaxed) >= shared.total() {
            return;
        }
        let step = &self.env.plan.steps()[shared.emb.len()];
        self.scratch.state.prepare(self.env.data, step, &shared.emb);
        self.run_split(shared, false);
    }

    fn execute_scan(&mut self, start: u32, end: u32) {
        if (self.abort)() {
            return;
        }
        let chunk = self.env.config.scan_chunk.max(1) as u32;
        if end - start > chunk {
            let mid = start + (end - start) / 2;
            // Emit the far half first so the near half is processed next
            // (LIFO), keeping the scan roughly in order locally.
            (self.emit)(Task::Scan { start: mid, end });
            (self.emit)(Task::Scan { start, end: mid });
            return;
        }

        let plan = self.env.plan;
        let partition = self
            .env
            .data
            .partition(plan.steps()[0].partition.expect("feasible"));
        let rows = (end - start) as u64;
        self.metrics.scan_rows += rows;
        // Every scanned row is a position-0 partial (SCAN filters nothing).
        self.note_step(0, rows, rows);
        if plan.len() == 1 {
            // Single-edge query: scan rows are complete embeddings.
            for row in start..end {
                let global = partition.global_id(row).raw();
                self.scratch.full.clear();
                self.scratch.full.push(global);
                self.deliver_full();
            }
            return;
        }
        for row in (start..end).rev() {
            let global = partition.global_id(row).raw();
            self.spawn_expand(&[], global);
        }
    }

    fn execute_expand(&mut self, depth: usize, emb: &[u32]) {
        if (self.abort)() {
            return;
        }
        let plan = self.env.plan;
        let data = self.env.data;
        let step = &plan.steps()[depth];
        // A step whose signature is absent from the data can never extend
        // anything: skip the (non-trivial) state preparation outright.
        let Some(pid) = step.partition else {
            self.metrics.expansions += 1;
            return;
        };
        self.scratch.state.prepare(data, step, emb);
        // Dense handoff floor: when a split could actually recruit peers
        // (stealing on, threshold set, >1 worker), a bitmap accumulator at
        // least this large skips the sequential decode entirely and is
        // published as a shared parallel extraction instead. The floor
        // guarantees the ticket formula below yields ≥ 1 for every dense
        // return (`count - 1 >= chunk`), so a dense split always has a
        // range worth sharing.
        let cfg = self.env.config;
        let chunk = cfg.split_chunk.max(1);
        let dense_min = if cfg.split_threshold > 0 && cfg.work_stealing && cfg.threads > 1 {
            cfg.split_threshold.max(chunk + 1)
        } else {
            0
        };
        // Generation probes the abort signal at anchor/block boundaries
        // (compressed decodes and anchor-less scans can emit far more than
        // ABORT_PROBE rows in one call); a mid-generation abort leaves the
        // candidate buffer partial, so nothing below may run.
        let Some(out) = generate_candidates_dense(
            data,
            step,
            emb,
            &mut self.scratch.state,
            cfg,
            dense_min,
            self.abort,
        ) else {
            self.metrics.expansions += 1;
            return;
        };
        self.metrics.expansions += 1;
        let produced = match out {
            GenOutput::List(n) => n,
            GenOutput::Dense(count) => {
                // The candidates are still the accumulator bitmap: publish
                // it as a splittable expansion whose participants first run
                // the shared reduce-then-scan extraction, then validate.
                self.metrics.candidates += count as u64;
                let words = self.scratch.state.take_acc_words();
                let tickets = ((count as usize - 1) / chunk).min(cfg.threads - 1);
                debug_assert!(tickets > 0, "dense_min guarantees a shareable range");
                self.publish_split(
                    emb,
                    SplitSource::Dense(ParallelExtract::new(words, count)),
                    count as u64,
                    depth,
                    chunk,
                    tickets,
                );
                return;
            }
        };
        self.metrics.candidates += produced as u64;
        let partition = data.partition(pid);
        let last = depth + 1 == plan.len();

        let cands = std::mem::take(&mut self.scratch.state.candidates);

        // Work-assisting split (DESIGN.md §12): a candidate list long
        // enough to dominate this worker's schedule moves into shared
        // ownership, and assist tickets let idle peers claim chunks of it
        // mid-flight. The ticket count — one per peer that could usefully
        // join, bounded by the chunks beyond the owner's first — gates the
        // whole split: zero tickets (one worker, stealing disabled so
        // nobody could ever take one, or a range of at most one chunk)
        // means the shared state could never offer parallelism, and the
        // plain serial loop below is strictly cheaper. With one worker
        // this also keeps delivery order exactly the sequential
        // executor's — the `max_results` determinism contract.
        let tickets =
            if cfg.split_threshold > 0 && cfg.work_stealing && cands.len() >= cfg.split_threshold {
                ((cands.len() - 1) / chunk).min(cfg.threads.saturating_sub(1))
            } else {
                0
            };
        if tickets > 0 {
            // Copied, not moved: the Arc outlives this task on other
            // workers' deques, so donating the scratch buffer would
            // forfeit its warmed capacity on every split. One exact-size
            // copy is cheaper than regrowing the buffer from empty past
            // the (large) split threshold on the next expansion.
            let source = SplitSource::List(cands.clone());
            self.scratch.state.candidates = cands;
            self.publish_split(emb, source, produced as u64, depth, chunk, tickets);
            return;
        }

        let mut valid = std::mem::take(&mut self.scratch.valid);
        valid.clear();
        let mut aborted = false;
        let validated_before = self.metrics.validated;
        for (i, &row) in cands.iter().enumerate() {
            // Mid-expansion cancellation: a huge candidate list must not pin
            // this worker past a cancel/timeout/limit signal.
            if i % ABORT_PROBE == ABORT_PROBE - 1 && (self.abort)() {
                aborted = true;
                break;
            }
            self.validate_row(partition, step, depth, emb, row, last, &mut valid);
        }
        // Reverse emission: the LIFO deque then pops extensions in ascending
        // candidate order, matching the sequential executor's visit order.
        // After a mid-loop abort nothing is emitted — the extensions would
        // only degenerate to accounting when popped, delaying worker
        // release (and nothing has been allocated for them yet).
        if !aborted {
            for idx in (0..valid.len()).rev() {
                let global = valid[idx];
                self.spawn_expand(emb, global);
            }
            // A completed expansion is a step boundary: attribute the
            // counts to this position and give the adaptive trigger its
            // chance (DESIGN.md §15).
            let partials = self.metrics.validated - validated_before;
            self.note_step(depth, produced as u64, partials);
        }
        self.scratch.state.candidates = cands;
        self.scratch.valid = valid;
    }

    /// Publishes a splittable expansion (DESIGN.md §12): moves the
    /// candidate range into shared ownership, accounts it, emits `tickets`
    /// assist tickets for idle peers, and joins the claim loop as owner.
    ///
    /// Tickets are pushed *before* the owner starts validating, so they
    /// sit at the cold end of its LIFO deque — exactly where thieves steal
    /// from — while the children spawned by the claim loop stack on the
    /// hot end for the owner's own depth-first descent.
    fn publish_split(
        &mut self,
        emb: &[u32],
        source: SplitSource,
        produced: u64,
        depth: usize,
        chunk: usize,
        tickets: usize,
    ) {
        let shared = Arc::new(SplitExpansion {
            emb: emb.to_vec(),
            source,
            next: AtomicUsize::new(0),
            chunk,
            ver: self.env.ver,
        });
        // The shared buffers are materialised state that outlives this
        // task (they stay live until the range drains), so they count
        // against the query's memory bound like queued embeddings do.
        self.env.tracker.alloc(shared.bytes());
        self.metrics.split_expansions += 1;
        // Re-planning is suppressed from publication until the range
        // drains (`split_finished` in the claim loop); the candidates
        // still feed the observed counts so the trigger re-checks at
        // the next boundary once the splits are gone.
        self.metrics.steps.record_candidates(depth, produced);
        if let Some(ad) = self.env.adaptive {
            ad.split_started();
            ad.observe(depth, produced, 0);
        }
        for _ in 0..tickets {
            (self.emit)(Task::Assist {
                shared: Arc::clone(&shared),
            });
        }
        self.run_split(&shared, true);
    }

    /// The work-assisting claim loop: claims disjoint chunks of `shared`'s
    /// candidate range until it drains, validating each row and spawning
    /// this participant's share of child expansions locally (so the assist
    /// hands the thief a subtree to descend, not a one-off batch).
    ///
    /// A dense source has a phase before the claims: every participant
    /// joins the shared reduce-then-scan extraction until *all* blocks are
    /// emitted (late joiners shorten it; a lone owner degenerates to a
    /// sequential decode), because claimed validation ranges index the
    /// extracted output.
    ///
    /// [`ExpansionState::prepare`] must have run for `shared.emb` on this
    /// worker's scratch (the owner did so before generating candidates;
    /// [`Exec::execute_assist`] does it for thieves).
    fn run_split(&mut self, shared: &SplitExpansion, owner: bool) {
        if let SplitSource::Dense(extract) = &shared.source {
            if !extract.run(self.abort) {
                // Aborted mid-extraction: the query is stopping, so no
                // claims are made (rows may be partial garbage). The
                // stop signal is sticky — every other participant bails
                // the same way, so nobody reads the partial output.
                return;
            }
        }
        let depth = shared.emb.len();
        let plan = self.env.plan;
        let step = &plan.steps()[depth];
        let Some(pid) = step.partition else {
            return; // unreachable: a split implies candidates, which imply a partition
        };
        let partition = self.env.data.partition(pid);
        let last = depth + 1 == plan.len();
        let total = shared.total();
        let mut valid = std::mem::take(&mut self.scratch.valid);
        valid.clear();
        let mut aborted = false;
        let validated_before = self.metrics.validated;
        'claim: loop {
            let start = shared.next.fetch_add(shared.chunk, Ordering::Relaxed);
            if start >= total {
                break;
            }
            if !owner {
                self.metrics.assist_chunks += 1;
            }
            let end = (start + shared.chunk).min(total);
            // The claimer of the final chunk releases the shared buffers'
            // accounting (exactly one participant sees end == total with a
            // live claim). A stopped query may skip the release — harmless:
            // its peak is already recorded and the tracker dies with it.
            // The same exactly-once point lifts the split's re-planning
            // suppression (a stopped query leaves it raised, which only
            // blocks re-plans the dying query would never use).
            if end == total {
                self.env.tracker.free(shared.bytes());
                if let Some(ad) = self.env.adaptive {
                    ad.split_finished();
                }
            }
            for (i, idx) in (start..end).enumerate() {
                if i % ABORT_PROBE == ABORT_PROBE - 1 && (self.abort)() {
                    aborted = true;
                    break 'claim;
                }
                let row = shared.row(idx);
                self.validate_row(partition, step, depth, &shared.emb, row, last, &mut valid);
            }
            // Per-chunk probe: stop claiming promptly once the query stops
            // (unclaimed chunks are dropped — every other participant sees
            // the same signal).
            if (self.abort)() {
                aborted = true;
                break;
            }
        }
        let partials = self.metrics.validated - validated_before;
        self.metrics.steps.record_partials(depth, partials);
        if !aborted {
            for idx in (0..valid.len()).rev() {
                let global = valid[idx];
                self.spawn_expand(&shared.emb, global);
            }
            // This participant's share of the split is done — a step
            // boundary. The candidates were already observed by the owner
            // at publication; the trigger re-check here is what resumes a
            // re-plan that was suppressed while the splits were live.
            if let Some(ad) = self.env.adaptive {
                if ad.observe(depth, 0, partials) && ad.maybe_replan(depth, self.env.data) {
                    self.metrics.replans += 1;
                }
            }
        }
        self.scratch.valid = valid;
    }

    /// Validates one candidate row, delivering complete embeddings at the
    /// last step and buffering earlier valid extensions into `valid`.
    #[allow(clippy::too_many_arguments)] // hot-path kernel shared by the serial and split loops
    fn validate_row(
        &mut self,
        partition: &Partition,
        step: &crate::plan::Step,
        depth: usize,
        emb: &[u32],
        row: u32,
        last: bool,
        valid: &mut Vec<u32>,
    ) {
        let global = partition.global_id(row).raw();
        match validate_candidate(
            self.env.data,
            step,
            depth,
            emb,
            &self.scratch.state,
            global,
            partition.row(row),
            &mut self.scratch.validate,
        ) {
            Validation::Valid => {
                self.metrics.filtered += 1;
                self.metrics.validated += 1;
                if last {
                    self.scratch.full.clear();
                    self.scratch.full.extend_from_slice(emb);
                    self.scratch.full.push(global);
                    self.deliver_full();
                } else {
                    valid.push(global);
                }
            }
            Validation::WrongProfiles => self.metrics.filtered += 1,
            Validation::WrongVertexCount | Validation::Duplicate => {}
        }
    }

    /// Emits the expansion of `parent + [global]`, inline when it fits and
    /// through a pooled spill buffer beyond [`INLINE_EMB`]. The memory
    /// tracker accounts the queued embedding either way — Theorem VI.1
    /// bounds materialised partial embeddings, not allocator traffic.
    fn spawn_expand(&mut self, parent: &[u32], global: u32) {
        let len = parent.len() + 1;
        self.env.tracker.alloc(MemoryTracker::embedding_bytes(len));
        if len <= INLINE_EMB {
            let mut emb = [0u32; INLINE_EMB];
            emb[..parent.len()].copy_from_slice(parent);
            emb[parent.len()] = global;
            (self.emit)(Task::Expand {
                depth: len as u8,
                ver: self.env.ver,
                emb,
            });
        } else {
            let mut buf = self.scratch.pool.pop().unwrap_or_default();
            buf.clear();
            buf.reserve(len);
            buf.extend_from_slice(parent);
            buf.push(global);
            (self.emit)(Task::ExpandSpilled {
                emb: buf,
                ver: self.env.ver,
            });
        }
    }

    /// Records per-position feedback at a completed step boundary and, when
    /// running adaptively, drives the re-plan trigger (DESIGN.md §15).
    fn note_step(&mut self, pos: usize, candidates: u64, partials: u64) {
        self.metrics.steps.record_candidates(pos, candidates);
        self.metrics.steps.record_partials(pos, partials);
        if let Some(ad) = self.env.adaptive {
            if ad.observe(pos, candidates, partials) && ad.maybe_replan(pos, self.env.data) {
                self.metrics.replans += 1;
            }
        }
    }

    /// Delivers `self.scratch.full` as a complete embedding.
    fn deliver_full(&mut self) {
        self.metrics.embeddings += 1;
        self.delivered += 1;
        // Counts are batched (`flush_counts`) so counting costs a shared
        // atomic once per COUNT_FLUSH deliveries, not per embedding — but
        // they must flush *during* the task, not only at its end: a
        // `max_results` stop probes `is_satisfied()` mid-expansion, and a
        // count that only advances at task boundaries lets one giant
        // (split) expansion validate its whole range past the limit.
        self.uncounted += 1;
        if self.uncounted >= COUNT_FLUSH {
            self.flush_counts();
        }
        if self.env.sink.needs_embeddings() {
            self.metrics.materialized += 1;
            self.env
                .plan
                .to_query_order_into(&self.scratch.full, &mut self.scratch.ordered);
            self.env.sink.consume(&self.scratch.ordered);
        }
    }

    fn flush_counts(&mut self) {
        if self.uncounted > 0 {
            self.env.sink.add_count(self.uncounted);
            self.uncounted = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{generate_candidates, ExpansionState};
    use crate::config::MatchConfig;
    use crate::memory::MemoryTracker;
    use crate::plan::{Plan, Planner};
    use crate::query::QueryGraph;
    use crate::sink::CountSink;
    use hgmatch_hypergraph::{HypergraphBuilder, Label};

    /// Complete pair graph over `n` same-label vertices and a 2-edge path
    /// query: every expansion of a matched first edge sees a fat candidate
    /// list (every other edge in the single {A,A} partition).
    fn pair_clique(n: u32) -> (Hypergraph, Plan) {
        let mut d = HypergraphBuilder::new();
        d.add_vertices(n as usize, Label::new(0));
        for i in 0..n {
            for j in (i + 1)..n {
                d.add_edge(vec![i, j]).unwrap();
            }
        }
        let data = d.build().unwrap();
        let mut q = HypergraphBuilder::new();
        q.add_vertices(3, Label::new(0));
        q.add_edge(vec![0, 1]).unwrap();
        q.add_edge(vec![1, 2]).unwrap();
        let query = QueryGraph::new(&q.build().unwrap()).unwrap();
        let plan = Planner::plan(&query, &data).unwrap();
        (data, plan)
    }

    /// Runs `root` and every task it transitively spawns on one thread,
    /// returning (delivered, executed tasks, metrics). With a config that
    /// splits, this drains assist tickets after the owner's claim loop —
    /// the degenerate-ticket path.
    fn drain(
        data: &Hypergraph,
        plan: &Plan,
        config: &MatchConfig,
        root: Task,
    ) -> (u64, u64, MatchMetrics) {
        let sink = CountSink::new();
        let tracker = MemoryTracker::new();
        let env = QueryEnv {
            plan,
            data,
            sink: &sink,
            config,
            tracker: &tracker,
            ver: 0,
            adaptive: None,
        };
        let mut scratch = ExecScratch::new();
        let mut metrics = MatchMetrics::default();
        let mut queue = vec![root];
        let mut delivered = 0;
        let mut executed = 0;
        while let Some(task) = queue.pop() {
            delivered += execute_task(
                &env,
                &mut scratch,
                &mut metrics,
                task,
                &mut || false,
                &mut |t| queue.push(t),
            );
            executed += 1;
        }
        (delivered, executed, metrics)
    }

    #[test]
    fn split_path_delivers_the_same_embeddings() {
        let (data, plan) = pair_clique(9); // 36 edges, plenty of candidates
        let root = || Task::Scan {
            start: 0,
            end: data.partition(plan.steps()[0].partition.unwrap()).len() as u32,
        };

        let plain = MatchConfig::parallel(4).with_split_threshold(0);
        let (expect, _, m0) = drain(&data, &plan, &plain, root());
        assert!(expect > 0);
        assert_eq!(m0.split_expansions, 0);

        let split = MatchConfig::parallel(4)
            .with_split_threshold(4)
            .with_split_chunk(3);
        let (got, executed, m1) = drain(&data, &plan, &split, root());
        assert_eq!(got, expect, "splitting must not change the result set");
        assert!(m1.split_expansions > 0, "threshold 4 must trigger splits");
        // One thread drains everything: the owner's claim loop empties each
        // shared range, so every ticket degenerates to accounting — but is
        // still executed exactly once.
        assert_eq!(m1.assist_chunks, 0);
        assert!(executed > m1.split_expansions);
    }

    #[test]
    fn single_worker_config_never_splits() {
        let (data, plan) = pair_clique(9);
        let config = MatchConfig::parallel(1)
            .with_split_threshold(1)
            .with_split_chunk(1);
        let root = Task::Scan {
            start: 0,
            end: data.partition(plan.steps()[0].partition.unwrap()).len() as u32,
        };
        let (_, _, m) = drain(&data, &plan, &config, root);
        assert_eq!(m.split_expansions, 0, "threads=1 suppresses splitting");
    }

    /// The thief path, deterministically: an assist ticket executed on a
    /// *fresh* scratch (as a thief would) must validate exactly the chunks
    /// the owner did not claim and deliver the same embeddings.
    #[test]
    fn assist_ticket_resumes_on_fresh_scratch() {
        let (data, plan) = pair_clique(9);
        let config = MatchConfig::parallel(2).with_split_threshold(0);
        let step = &plan.steps()[1];
        let emb = vec![0u32];

        // Oracle: the plain (unsplit) expansion of emb.
        let mut inline = [0u32; INLINE_EMB];
        inline[0] = 0;
        let (expect, _, _) = drain(
            &data,
            &plan,
            &config,
            Task::Expand {
                depth: 1,
                ver: 0,
                emb: inline,
            },
        );
        assert!(expect > 0);

        // Regenerate the candidate list the owner would have shared.
        let mut state = ExpansionState::new();
        state.prepare(&data, step, &emb);
        let produced = generate_candidates(&data, step, &emb, &mut state, &config);
        assert!(produced > 0);
        let shared = Arc::new(SplitExpansion {
            emb,
            source: SplitSource::List(std::mem::take(&mut state.candidates)),
            next: AtomicUsize::new(0),
            chunk: 2,
            ver: 0,
        });

        // The ticket alone (owner never claims): a fresh scratch must
        // rebuild the expansion state and drain the whole range.
        let (got, _, m) = drain(
            &data,
            &plan,
            &config,
            Task::Assist {
                shared: Arc::clone(&shared),
            },
        );
        assert_eq!(got, expect);
        assert_eq!(m.assist_chunks as usize, produced.div_ceil(2));

        // A second ticket on the drained range degenerates to accounting.
        let (rest, executed, m2) = drain(&data, &plan, &config, Task::Assist { shared });
        assert_eq!((rest, executed), (0, 1));
        assert_eq!(m2.assist_chunks, 0);
    }

    /// A stop raised *during* candidate generation (not just between
    /// validation probes) must abandon the expansion: no children, no
    /// deliveries, and no candidate accounting for the partial decode —
    /// the cancellation-latency contract generation's block-boundary
    /// probes exist to uphold.
    #[test]
    fn mid_generation_abort_spawns_nothing() {
        let (data, plan) = pair_clique(12);
        let sink = CountSink::new();
        let tracker = MemoryTracker::new();
        let config = MatchConfig::default();
        let env = QueryEnv {
            plan: &plan,
            data: &data,
            sink: &sink,
            config: &config,
            tracker: &tracker,
            ver: 0,
            adaptive: None,
        };
        let mut scratch = ExecScratch::new();
        let mut metrics = MatchMetrics::default();
        let mut spawned = 0usize;
        let mut probes = 0u64;
        let mut inline = [0u32; INLINE_EMB];
        inline[0] = 0;
        // Probe 1 is the task-entry check; every later probe (the first of
        // which generation itself issues) sees the stop raised.
        let delivered = execute_task(
            &env,
            &mut scratch,
            &mut metrics,
            Task::Expand {
                depth: 1,
                ver: 0,
                emb: inline,
            },
            &mut || {
                probes += 1;
                probes > 1
            },
            &mut |_| spawned += 1,
        );
        assert!(probes >= 2, "generation must probe past task entry");
        assert_eq!(delivered, 0);
        assert_eq!(spawned, 0, "an aborted generation must emit no children");
        assert_eq!(
            metrics.candidates, 0,
            "a partial decode contributes no candidate accounting"
        );
        assert_eq!(metrics.expansions, 1);
    }
}
