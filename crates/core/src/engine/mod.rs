//! The task-based parallel execution engine (paper §VI).
//!
//! Computation is a SCAN → EXPAND* → SINK dataflow executed as *tasks*
//! (Definition VI.1): a `Scan` task covers a range of partition rows and
//! splits itself until ranges are small; an `Expand` task carries one
//! partial embedding, generates candidates, validates them and spawns one
//! child task per valid extension (or delivers to the sink at the last
//! step).
//!
//! Scheduling follows the paper exactly:
//!
//! * **LIFO task deques** — every worker owns a deque
//!   (`crossbeam::deque`, the same non-blocking design as the paper's \[17\])
//!   and pushes/pops at its hot end, so the engine runs depth-first locally
//!   and memory stays within the Theorem VI.1 bound
//!   `O(aq · |E(q)|² · |E(H)|)`.
//! * **Dynamic work stealing** (§VI-C) — an idle worker picks a random
//!   victim and steals a batch (up to half) from the cold end of its deque,
//!   i.e. the oldest, coarsest tasks. Disabling stealing (plus static
//!   first-level partitioning) reproduces the `HGMatch-NOSTL` baseline of
//!   Fig. 12.
//!
//! # Architecture: one task core, two schedulers
//!
//! Everything that happens *inside* a task — candidate generation,
//! validation, delivery, spill-buffer pooling — lives in the shared
//! `task` submodule, decoupled from any scheduler's lifetime. Two
//! schedulers drive it:
//!
//! * [`ParallelEngine`] (this module) — the paper's one-shot engine: a
//!   scoped pool is spun up for a single `run()`, executes one query, and
//!   is torn down when the run returns. Best for batch experiments and the
//!   figure-reproduction benches.
//! * [`crate::serve::MatchServer`] — the resident serving pool: worker
//!   threads live for the process lifetime, tasks are tagged with the query
//!   they belong to, and many queries execute concurrently against one
//!   shared data hypergraph with fair interleaving, per-query cancellation,
//!   timeouts and result limits.
//!
//! The expansion path is allocation-free in the common case
//! (DESIGN.md §6): embeddings of up to `INLINE_EMB` edges are stored
//! inline in the task itself, deeper ones spill to heap buffers recycled
//! through a per-worker pool, and per-expansion state (vertex multisets,
//! candidate and delivery buffers) is reused across tasks.

pub(crate) mod task;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::deque::{Injector, Steal, Stealer, Worker as Deque};
use hgmatch_hypergraph::Hypergraph;
use parking_lot::Mutex;

use crate::adaptive::AdaptiveState;
use crate::config::MatchConfig;
use crate::exec::{RunStats, WorkerStats};
use crate::memory::MemoryTracker;
use crate::metrics::MatchMetrics;
use crate::plan::Plan;
use crate::query::QueryGraph;
use crate::sink::Sink;

use task::{execute_task, steal_from_victims, ExecScratch, QueryEnv, Task, CHECK_INTERVAL};

/// The parallel engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelEngine;

struct Shared<'a, S: Sink> {
    /// The base plan — the only plan of a static run, version 0 of an
    /// adaptive one.
    plan: &'a Plan,
    /// Adaptive re-optimization state (DESIGN.md §15); `None` = static.
    adaptive: Option<&'a AdaptiveState>,
    data: &'a Hypergraph,
    sink: &'a S,
    config: &'a MatchConfig,
    tracker: &'a MemoryTracker,
    injector: Injector<Task>,
    stealers: Vec<Stealer<Task>>,
    pending: AtomicU64,
    abort: AtomicBool,
    timed_out: AtomicBool,
    deadline: Option<Instant>,
}

impl ParallelEngine {
    /// Runs `plan` against `data` with `config.threads` workers, delivering
    /// results to `sink`. Static: the plan is executed as compiled, with no
    /// mid-query re-optimization (the differential harnesses depend on
    /// this entry point staying order-faithful).
    pub fn run<S: Sink>(
        plan: &Plan,
        data: &Hypergraph,
        sink: &S,
        config: &MatchConfig,
    ) -> RunStats {
        Self::run_inner(plan, None, data, sink, config)
    }

    /// Runs `plan` with mid-query adaptive re-optimization (DESIGN.md §15):
    /// observed per-step candidate counts feed a trigger that, past
    /// `config.replan_ratio × estimate`, re-orders the unmatched suffix and
    /// adopts it for everything whose matched prefix still agrees. Falls
    /// back to the static [`ParallelEngine::run`] when the ratio is 0, the
    /// plan is trivial (≤ 1 step) or infeasible.
    pub fn run_adaptive<S: Sink>(
        query: &QueryGraph,
        plan: &Arc<Plan>,
        data: &Hypergraph,
        sink: &S,
        config: &MatchConfig,
    ) -> RunStats {
        if config.replan_ratio <= 0.0 || plan.len() <= 1 || plan.is_infeasible() {
            return Self::run(plan, data, sink, config);
        }
        let state = AdaptiveState::new(query.clone(), Arc::clone(plan), config.replan_ratio);
        Self::run_inner(plan, Some(&state), data, sink, config)
    }

    fn run_inner<S: Sink>(
        plan: &Plan,
        adaptive: Option<&AdaptiveState>,
        data: &Hypergraph,
        sink: &S,
        config: &MatchConfig,
    ) -> RunStats {
        let start = Instant::now();
        let threads = config.threads.max(1);
        let mut stats = RunStats::default();
        if plan.is_infeasible() {
            stats.workers = vec![WorkerStats::default(); threads];
            stats.elapsed = start.elapsed();
            return stats;
        }

        let deques: Vec<Deque<Task>> = (0..threads).map(|_| Deque::new_lifo()).collect();
        let stealers: Vec<Stealer<Task>> = deques.iter().map(Deque::stealer).collect();
        let tracker = MemoryTracker::new();

        let shared = Shared {
            plan,
            adaptive,
            data,
            sink,
            config,
            tracker: &tracker,
            injector: Injector::new(),
            stealers,
            pending: AtomicU64::new(0),
            abort: AtomicBool::new(false),
            timed_out: AtomicBool::new(false),
            deadline: config.timeout.map(|t| start + t),
        };

        // Seed the scan. With stealing the whole range goes to the injector
        // and splits dynamically; without stealing (NOSTL) the first-level
        // rows are divided statically and evenly among workers — the
        // coarse-grained baseline of Fig. 12.
        let scan_rows = data
            .partition(plan.steps()[0].partition.expect("feasible"))
            .len() as u32;
        let mut seeded: Vec<Vec<Task>> = (0..threads).map(|_| Vec::new()).collect();
        if config.work_stealing {
            if scan_rows > 0 {
                shared.pending.fetch_add(1, Ordering::Relaxed);
                shared.injector.push(Task::Scan {
                    start: 0,
                    end: scan_rows,
                });
            }
        } else {
            let per = scan_rows.div_ceil(threads.max(1) as u32).max(1);
            let mut begin = 0u32;
            let mut w = 0usize;
            while begin < scan_rows {
                let end = (begin + per).min(scan_rows);
                shared.pending.fetch_add(1, Ordering::Relaxed);
                seeded[w % threads].push(Task::Scan { start: begin, end });
                begin = end;
                w += 1;
            }
        }

        let results: Mutex<Vec<(usize, WorkerStats, MatchMetrics)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for (id, deque) in deques.into_iter().enumerate() {
                let shared = &shared;
                let results = &results;
                let seed = std::mem::take(&mut seeded[id]);
                scope.spawn(move || {
                    for task in seed {
                        deque.push(task);
                    }
                    let (wstats, metrics) = worker_loop(id, deque, shared);
                    results.lock().push((id, wstats, metrics));
                });
            }
        });

        let mut collected = results.into_inner();
        collected.sort_by_key(|(id, _, _)| *id);
        let mut metrics = MatchMetrics::default();
        let mut workers = Vec::with_capacity(threads);
        for (_, w, m) in collected {
            metrics.merge(&m);
            workers.push(w);
        }

        stats.metrics = metrics;
        stats.workers = workers;
        stats.timed_out = shared.timed_out.load(Ordering::Relaxed);
        stats.elapsed = start.elapsed();
        stats.peak_memory_bytes = tracker.peak_bytes();
        stats
    }
}

fn worker_loop<S: Sink>(
    id: usize,
    local: Deque<Task>,
    shared: &Shared<'_, S>,
) -> (WorkerStats, MatchMetrics) {
    let mut scratch = ExecScratch::new();
    let mut metrics = MatchMetrics::default();
    let mut stats = WorkerStats::default();
    let mut rng = 0x9E37_79B9 ^ (id as u64 + 1).wrapping_mul(0x2545_F491_4F6C_DD1D);
    let mut checks = 0u64;

    loop {
        if let Some(task) = find_task(id, &local, shared, &mut rng, &mut stats) {
            let begin = Instant::now();
            let was_assist = matches!(task, Task::Assist { .. });
            let splits_before = metrics.split_expansions;
            let assist_chunks_before = metrics.assist_chunks;
            // Resolve which plan version this task runs under (DESIGN.md
            // §15): per-task, at the step boundary, before any state for
            // the step is built — the switch-point contract.
            let (resolved, ver) = resolve_plan(shared, &task);
            let env = QueryEnv {
                plan: resolved.as_deref().unwrap_or(shared.plan),
                data: shared.data,
                sink: shared.sink,
                config: shared.config,
                tracker: shared.tracker,
                ver,
                adaptive: shared.adaptive,
            };
            let delivered = execute_task(
                &env,
                &mut scratch,
                &mut metrics,
                task,
                &mut || check_abort(shared, &mut checks),
                &mut |t| {
                    shared.pending.fetch_add(1, Ordering::Relaxed);
                    local.push(t);
                },
            );
            stats.matches += delivered;
            stats.busy += begin.elapsed();
            stats.tasks += 1;
            stats.splits += metrics.split_expansions - splits_before;
            if was_assist && metrics.assist_chunks > assist_chunks_before {
                stats.assists += 1;
            }
            shared.pending.fetch_sub(1, Ordering::Release);
        } else {
            if shared.pending.load(Ordering::Acquire) == 0 || shared.abort.load(Ordering::Relaxed) {
                break;
            }
            // Periodic deadline check also while idle, so a stuck queue
            // cannot outlive the timeout.
            check_abort(shared, &mut checks);
            std::thread::yield_now();
        }
    }
    (stats, metrics)
}

/// Picks the plan version a task executes under. Scans always run the
/// latest version (position 0 is pinned by every re-plan). Expansions
/// upgrade to the latest version iff its order agrees with the task's
/// birth version on every already-matched position; otherwise they finish
/// under the plan they were born with (per-subtree order invariance).
/// Assist tickets resolve their *exact* birth version: the shared scratch
/// they chunk through was laid out by it.
///
/// Returns `None` (run the static base plan, version 0) when adaptivity
/// is off.
fn resolve_plan<S: Sink>(shared: &Shared<'_, S>, task: &Task) -> (Option<Arc<Plan>>, u32) {
    match shared.adaptive {
        None => (None, 0),
        Some(ad) => {
            let (plan, ver) = ad.resolve_task(task);
            (Some(plan), ver)
        }
    }
}

fn find_task<S: Sink>(
    id: usize,
    local: &Deque<Task>,
    shared: &Shared<'_, S>,
    rng: &mut u64,
    stats: &mut WorkerStats,
) -> Option<Task> {
    if let Some(t) = local.pop() {
        return Some(t);
    }
    // Injector next: seed tasks and overflow.
    loop {
        match shared.injector.steal_batch_and_pop(local) {
            Steal::Success(t) => return Some(t),
            Steal::Retry => continue,
            Steal::Empty => break,
        }
    }
    if !shared.config.work_stealing {
        return None;
    }
    let stolen = steal_from_victims(&shared.stealers, local, id, rng);
    if stolen.is_some() {
        stats.steals += 1;
    }
    stolen
}

/// The one-shot engine's cooperative stop check: an already-raised abort
/// flag and the sink's satisfaction are honoured on *every* call (two
/// cheap atomic loads — with counts flushing mid-task, a first-k limit
/// must land within one probe of saturation, not one [`CHECK_INTERVAL`]
/// window of ABORT_PROBE-sized strides); only the `Instant::now()`
/// deadline check stays on the interval cadence.
#[inline]
fn check_abort<S: Sink>(shared: &Shared<'_, S>, checks: &mut u64) -> bool {
    *checks += 1;
    if shared.abort.load(Ordering::Relaxed) {
        return true;
    }
    if shared.sink.is_satisfied() {
        shared.abort.store(true, Ordering::Relaxed);
        return true;
    }
    if (checks.is_multiple_of(CHECK_INTERVAL) || *checks == 1)
        && shared.deadline.is_some_and(|d| Instant::now() >= d)
    {
        shared.abort.store(true, Ordering::Relaxed);
        shared.timed_out.store(true, Ordering::Relaxed);
        return true;
    }
    shared.abort.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::task::INLINE_EMB;
    use super::*;
    use crate::plan::Planner;
    use crate::query::QueryGraph;
    use crate::sink::{CollectSink, CountSink, FirstKSink};
    use hgmatch_hypergraph::{HypergraphBuilder, Label};

    fn paper_data() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1, 2, 0] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![4, 6]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![3, 5, 6]).unwrap();
        b.add_edge(vec![0, 1, 4, 6]).unwrap();
        b.add_edge(vec![2, 3, 4, 5]).unwrap();
        b.build().unwrap()
    }

    fn paper_query() -> QueryGraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![0, 1, 3, 4]).unwrap();
        QueryGraph::new(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn parallel_matches_paper_example() {
        let data = paper_data();
        let plan = Planner::plan(&paper_query(), &data).unwrap();
        for threads in [1, 2, 4] {
            let sink = CollectSink::new();
            let stats = ParallelEngine::run(&plan, &data, &sink, &MatchConfig::parallel(threads));
            assert_eq!(stats.embeddings(), 2, "threads={threads}");
            assert_eq!(stats.workers.len(), threads);
            let results = sink.into_results();
            assert_eq!(results[0].raw(), &[0, 2, 4]);
            assert_eq!(results[1].raw(), &[1, 3, 5]);
        }
    }

    #[test]
    fn nostl_static_partitioning_matches() {
        let data = paper_data();
        let plan = Planner::plan(&paper_query(), &data).unwrap();
        let sink = CountSink::new();
        let cfg = MatchConfig::parallel(3).with_work_stealing(false);
        let stats = ParallelEngine::run(&plan, &data, &sink, &cfg);
        assert_eq!(stats.embeddings(), 2);
        assert_eq!(sink.count(), 2);
        assert!(stats.workers.iter().all(|w| w.steals == 0));
    }

    #[test]
    fn single_edge_query_parallel() {
        let data = paper_data();
        let mut b = HypergraphBuilder::new();
        b.add_vertex(Label::new(0));
        b.add_vertex(Label::new(1));
        b.add_edge(vec![0, 1]).unwrap();
        let q = QueryGraph::new(&b.build().unwrap()).unwrap();
        let plan = Planner::plan(&q, &data).unwrap();
        let sink = CountSink::new();
        let stats = ParallelEngine::run(&plan, &data, &sink, &MatchConfig::parallel(2));
        assert_eq!(stats.embeddings(), 2);
    }

    #[test]
    fn infeasible_returns_immediately() {
        let data = paper_data();
        let mut b = HypergraphBuilder::new();
        b.add_vertices(2, Label::new(9));
        b.add_edge(vec![0, 1]).unwrap();
        let q = QueryGraph::new(&b.build().unwrap()).unwrap();
        let plan = Planner::plan(&q, &data).unwrap();
        let sink = CountSink::new();
        let stats = ParallelEngine::run(&plan, &data, &sink, &MatchConfig::parallel(2));
        assert_eq!(stats.embeddings(), 0);
        assert!(!stats.timed_out);
    }

    #[test]
    fn first_k_aborts_workers() {
        let data = paper_data();
        let plan = Planner::plan(&paper_query(), &data).unwrap();
        let sink = FirstKSink::new(1);
        ParallelEngine::run(&plan, &data, &sink, &MatchConfig::parallel(2));
        assert_eq!(sink.into_results().len(), 1);
    }

    #[test]
    fn memory_peak_tracked() {
        let data = paper_data();
        let plan = Planner::plan(&paper_query(), &data).unwrap();
        let sink = CountSink::new();
        let stats = ParallelEngine::run(&plan, &data, &sink, &MatchConfig::parallel(2));
        assert!(stats.peak_memory_bytes > 0);
    }

    /// A query with more hyperedges than [`INLINE_EMB`], exercising the
    /// spill-to-pool path: a path of 10 {A,A} edges over distinct vertices,
    /// matched against an identical data path (exactly one embedding).
    #[test]
    fn deep_queries_spill_and_still_match() {
        let n = 10usize;
        assert!(n > INLINE_EMB);
        let mut d = HypergraphBuilder::new();
        d.add_vertices(n + 1, Label::new(0));
        for i in 0..n {
            d.add_edge(vec![i as u32, i as u32 + 1]).unwrap();
        }
        let data = d.build().unwrap();

        let mut q = HypergraphBuilder::new();
        q.add_vertices(n + 1, Label::new(0));
        for i in 0..n {
            q.add_edge(vec![i as u32, i as u32 + 1]).unwrap();
        }
        let query = QueryGraph::new(&q.build().unwrap()).unwrap();
        let plan = Planner::plan(&query, &data).unwrap();

        // Oracle: the sequential executor (its recursion depth is unbounded
        // by INLINE_EMB, so it pins down the expected count — the identity
        // embedding plus the path-reversal automorphism).
        let oracle = CountSink::new();
        crate::exec::SequentialExecutor::run(&plan, &data, &oracle, &MatchConfig::sequential());
        assert!(oracle.count() >= 1);

        for threads in [1, 3] {
            let sink = CountSink::new();
            let stats = ParallelEngine::run(&plan, &data, &sink, &MatchConfig::parallel(threads));
            assert_eq!(stats.embeddings(), oracle.count(), "threads={threads}");
            assert_eq!(sink.count(), oracle.count());
        }
    }

    /// The chain-with-branch fixture of `crate::adaptive`'s unit tests: a
    /// stale plan (compiled from a model that believes the 30-row {C,D}
    /// fan-out is tiny) walks into the junk branch first; honest statistics
    /// put the selective {C,E} filter first.
    fn branch_fixture() -> (Hypergraph, QueryGraph, Arc<Plan>) {
        use crate::cost::CostModel;
        use crate::plan::Planner;
        let mut b = HypergraphBuilder::new();
        b.add_vertices(1, Label::new(0)); // A
        b.add_vertices(1, Label::new(1)); // B
        b.add_vertices(1, Label::new(2)); // C
        b.add_vertices(30, Label::new(3)); // D
        b.add_vertices(1, Label::new(4)); // E
        b.add_edge(vec![0, 1]).unwrap();
        b.add_edge(vec![1, 2]).unwrap();
        for i in 0..30u32 {
            b.add_edge(vec![2, 3 + i]).unwrap();
        }
        b.add_edge(vec![2, 33]).unwrap();
        let data = b.build().unwrap();

        let mut q = HypergraphBuilder::new();
        for &l in &[0u32, 1, 2, 3, 4] {
            q.add_vertex(Label::new(l));
        }
        q.add_edge(vec![0, 1]).unwrap();
        q.add_edge(vec![1, 2]).unwrap();
        q.add_edge(vec![2, 3]).unwrap();
        q.add_edge(vec![2, 4]).unwrap();
        let query = QueryGraph::new(&q.build().unwrap()).unwrap();

        let mut model = CostModel::new(&query, &data);
        model.scale_edge(2, 1.0 / 1000.0);
        let plan = Arc::new(
            Planner::plan_with_order_costed(&query, &data, vec![0, 1, 2, 3], &model).unwrap(),
        );
        (data, query, plan)
    }

    #[test]
    fn adaptive_run_matches_static_and_replans() {
        let (data, query, plan) = branch_fixture();
        let expected = {
            let sink = CollectSink::new();
            ParallelEngine::run(&plan, &data, &sink, &MatchConfig::parallel(2));
            sink.into_results()
        };
        assert!(!expected.is_empty());
        for threads in [1, 2, 4] {
            let cfg = MatchConfig::parallel(threads).with_replan_ratio(1.0);
            let sink = CollectSink::new();
            let stats = ParallelEngine::run_adaptive(&query, &plan, &data, &sink, &cfg);
            assert_eq!(sink.into_results(), expected, "threads={threads}");
            assert!(
                stats.metrics.replans >= 1,
                "threads={threads}: the stale plan must adopt a re-plan"
            );
        }
    }

    #[test]
    fn adaptive_ratio_zero_stays_static() {
        let (data, query, plan) = branch_fixture();
        let oracle = CountSink::new();
        ParallelEngine::run(&plan, &data, &oracle, &MatchConfig::parallel(2));
        let sink = CountSink::new();
        let cfg = MatchConfig::parallel(2).with_replan_ratio(0.0);
        let stats = ParallelEngine::run_adaptive(&query, &plan, &data, &sink, &cfg);
        assert_eq!(stats.metrics.replans, 0, "ratio 0 disables the trigger");
        assert_eq!(sink.count(), oracle.count());
    }
}
