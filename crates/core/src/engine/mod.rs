//! The task-based parallel execution engine (paper §VI).
//!
//! Computation is a SCAN → EXPAND* → SINK dataflow executed as *tasks*
//! (Definition VI.1): a `Scan` task covers a range of partition rows and
//! splits itself until ranges are small; an `Expand` task carries one
//! partial embedding, generates candidates, validates them and spawns one
//! child task per valid extension (or delivers to the sink at the last
//! step).
//!
//! Scheduling follows the paper exactly:
//!
//! * **LIFO task deques** — every worker owns a deque
//!   (`crossbeam::deque`, the same non-blocking design as the paper's [17])
//!   and pushes/pops at its hot end, so the engine runs depth-first locally
//!   and memory stays within the Theorem VI.1 bound
//!   `O(aq · |E(q)|² · |E(H)|)`.
//! * **Dynamic work stealing** (§VI-C) — an idle worker picks a random
//!   victim and steals a batch (up to half) from the cold end of its deque,
//!   i.e. the oldest, coarsest tasks. Disabling stealing (plus static
//!   first-level partitioning) reproduces the `HGMatch-NOSTL` baseline of
//!   Fig. 12.
//!
//! The expansion path is allocation-free in the common case
//! (DESIGN.md §6): embeddings of up to [`INLINE_EMB`] edges are stored
//! inline in the task itself, deeper ones spill to heap buffers recycled
//! through a per-worker pool, and per-expansion state (vertex multisets,
//! candidate and delivery buffers) is reused across tasks.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use crossbeam::deque::{Injector, Steal, Stealer, Worker as Deque};
use hgmatch_hypergraph::Hypergraph;
use parking_lot::Mutex;

use crate::candidates::{generate_candidates, ExpansionState};
use crate::config::MatchConfig;
use crate::exec::{RunStats, WorkerStats};
use crate::memory::MemoryTracker;
use crate::metrics::MatchMetrics;
use crate::plan::Plan;
use crate::sink::Sink;
use crate::validate::{validate_candidate, ValidateScratch, Validation};

/// Tasks between abort-flag checks.
const CHECK_INTERVAL: u64 = 256;

/// Partial embeddings of at most this many edges live inline in the task —
/// no heap allocation on the expansion path. Queries with more hyperedges
/// than this spill to pooled buffers (DESIGN.md §6.2).
const INLINE_EMB: usize = 8;

/// Recycled spill buffers kept per worker.
const POOL_CAP: usize = 64;

/// A schedulable unit (paper Definition VI.1).
#[derive(Debug)]
enum Task {
    /// Scan rows `start..end` of the first step's partition; splits itself
    /// while the range exceeds the configured chunk size.
    Scan { start: u32, end: u32 },
    /// Expand the partial embedding `emb[..depth]` (matching-order
    /// positions `0..depth`) at step `depth`. Inline: no allocation.
    Expand { depth: u8, emb: [u32; INLINE_EMB] },
    /// Expansion deeper than [`INLINE_EMB`]; the buffer is recycled through
    /// the executing worker's pool.
    ExpandSpilled { emb: Vec<u32> },
}

/// The parallel engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelEngine;

struct Shared<'a, S: Sink> {
    plan: &'a Plan,
    data: &'a Hypergraph,
    sink: &'a S,
    config: &'a MatchConfig,
    injector: Injector<Task>,
    stealers: Vec<Stealer<Task>>,
    pending: AtomicU64,
    abort: AtomicBool,
    timed_out: AtomicBool,
    deadline: Option<Instant>,
    tracker: MemoryTracker,
}

impl ParallelEngine {
    /// Runs `plan` against `data` with `config.threads` workers, delivering
    /// results to `sink`.
    pub fn run<S: Sink>(
        plan: &Plan,
        data: &Hypergraph,
        sink: &S,
        config: &MatchConfig,
    ) -> RunStats {
        let start = Instant::now();
        let threads = config.threads.max(1);
        let mut stats = RunStats::default();
        if plan.is_infeasible() {
            stats.workers = vec![WorkerStats::default(); threads];
            stats.elapsed = start.elapsed();
            return stats;
        }

        let deques: Vec<Deque<Task>> = (0..threads).map(|_| Deque::new_lifo()).collect();
        let stealers: Vec<Stealer<Task>> = deques.iter().map(Deque::stealer).collect();

        let shared = Shared {
            plan,
            data,
            sink,
            config,
            injector: Injector::new(),
            stealers,
            pending: AtomicU64::new(0),
            abort: AtomicBool::new(false),
            timed_out: AtomicBool::new(false),
            deadline: config.timeout.map(|t| start + t),
            tracker: MemoryTracker::new(),
        };

        // Seed the scan. With stealing the whole range goes to the injector
        // and splits dynamically; without stealing (NOSTL) the first-level
        // rows are divided statically and evenly among workers — the
        // coarse-grained baseline of Fig. 12.
        let scan_rows = data
            .partition(plan.steps()[0].partition.expect("feasible"))
            .len() as u32;
        let mut seeded: Vec<Vec<Task>> = (0..threads).map(|_| Vec::new()).collect();
        if config.work_stealing {
            if scan_rows > 0 {
                shared.pending.fetch_add(1, Ordering::Relaxed);
                shared.injector.push(Task::Scan {
                    start: 0,
                    end: scan_rows,
                });
            }
        } else {
            let per = scan_rows.div_ceil(threads.max(1) as u32).max(1);
            let mut begin = 0u32;
            let mut w = 0usize;
            while begin < scan_rows {
                let end = (begin + per).min(scan_rows);
                shared.pending.fetch_add(1, Ordering::Relaxed);
                seeded[w % threads].push(Task::Scan { start: begin, end });
                begin = end;
                w += 1;
            }
        }

        let results: Mutex<Vec<(usize, WorkerStats, MatchMetrics)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for (id, deque) in deques.into_iter().enumerate() {
                let shared = &shared;
                let results = &results;
                let seed = std::mem::take(&mut seeded[id]);
                scope.spawn(move || {
                    for task in seed {
                        deque.push(task);
                    }
                    let (wstats, metrics) = worker_loop(id, deque, shared);
                    results.lock().push((id, wstats, metrics));
                });
            }
        });

        let mut collected = results.into_inner();
        collected.sort_by_key(|(id, _, _)| *id);
        let mut metrics = MatchMetrics::default();
        let mut workers = Vec::with_capacity(threads);
        for (_, w, m) in collected {
            metrics.merge(&m);
            workers.push(w);
        }

        stats.metrics = metrics;
        stats.workers = workers;
        stats.timed_out = shared.timed_out.load(Ordering::Relaxed);
        stats.elapsed = start.elapsed();
        stats.peak_memory_bytes = shared.tracker.peak_bytes();
        stats
    }
}

fn worker_loop<S: Sink>(
    id: usize,
    local: Deque<Task>,
    shared: &Shared<'_, S>,
) -> (WorkerStats, MatchMetrics) {
    let mut ctx = WorkerCtx {
        local: &local,
        shared,
        state: ExpansionState::new(),
        scratch: ValidateScratch::new(),
        metrics: MatchMetrics::default(),
        stats: WorkerStats::default(),
        rng: 0x9E37_79B9 ^ (id as u64 + 1).wrapping_mul(0x2545_F491_4F6C_DD1D),
        checks: 0,
        uncounted: 0,
        pool: Vec::new(),
        full_scratch: Vec::new(),
        ordered_scratch: Vec::new(),
    };

    loop {
        if let Some(task) = ctx.find_task(id) {
            let begin = Instant::now();
            ctx.execute(task);
            ctx.flush_counts();
            ctx.stats.busy += begin.elapsed();
            ctx.stats.tasks += 1;
            shared.pending.fetch_sub(1, Ordering::Release);
        } else {
            if shared.pending.load(Ordering::Acquire) == 0 || shared.abort.load(Ordering::Relaxed) {
                break;
            }
            // Periodic deadline check also while idle, so a stuck queue
            // cannot outlive the timeout.
            ctx.check_abort();
            std::thread::yield_now();
        }
    }
    (ctx.stats, ctx.metrics)
}

struct WorkerCtx<'a, 'b, S: Sink> {
    local: &'a Deque<Task>,
    shared: &'a Shared<'b, S>,
    state: ExpansionState,
    scratch: ValidateScratch,
    metrics: MatchMetrics,
    stats: WorkerStats,
    rng: u64,
    checks: u64,
    uncounted: u64,
    /// Recycled spill buffers for embeddings deeper than [`INLINE_EMB`].
    pool: Vec<Vec<u32>>,
    /// Reused buffer for assembling complete embeddings at the last step.
    full_scratch: Vec<u32>,
    /// Reused buffer for query-order delivery.
    ordered_scratch: Vec<u32>,
}

impl<S: Sink> WorkerCtx<'_, '_, S> {
    fn find_task(&mut self, id: usize) -> Option<Task> {
        if let Some(t) = self.local.pop() {
            return Some(t);
        }
        // Injector next: seed tasks and overflow.
        loop {
            match self.shared.injector.steal_batch_and_pop(self.local) {
                Steal::Success(t) => return Some(t),
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
        if !self.shared.config.work_stealing {
            return None;
        }
        // Random-victim batch stealing: take up to half of the victim's
        // deque from the cold end (paper §VI-C).
        let n = self.shared.stealers.len();
        if n <= 1 {
            return None;
        }
        for _ in 0..2 * n {
            let victim = (self.next_rand() as usize) % n;
            if victim == id {
                continue;
            }
            match self.shared.stealers[victim].steal_batch_and_pop(self.local) {
                Steal::Success(t) => {
                    self.stats.steals += 1;
                    return Some(t);
                }
                Steal::Retry | Steal::Empty => continue,
            }
        }
        None
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    #[inline]
    fn check_abort(&mut self) -> bool {
        self.checks += 1;
        if self.checks.is_multiple_of(CHECK_INTERVAL) || self.checks == 1 {
            if self.shared.abort.load(Ordering::Relaxed) {
                return true;
            }
            if self.shared.sink.is_satisfied() {
                self.shared.abort.store(true, Ordering::Relaxed);
                return true;
            }
            if self.shared.deadline.is_some_and(|d| Instant::now() >= d) {
                self.shared.abort.store(true, Ordering::Relaxed);
                self.shared.timed_out.store(true, Ordering::Relaxed);
                return true;
            }
        }
        self.shared.abort.load(Ordering::Relaxed)
    }

    fn spawn(&mut self, task: Task) {
        self.shared.pending.fetch_add(1, Ordering::Relaxed);
        self.local.push(task);
    }

    /// Spawns the expansion of `parent + [global]`, inline when it fits and
    /// through a pooled spill buffer beyond [`INLINE_EMB`]. The memory
    /// tracker accounts the queued embedding either way — Theorem VI.1
    /// bounds materialised partial embeddings, not allocator traffic.
    fn spawn_expand(&mut self, parent: &[u32], global: u32) {
        let len = parent.len() + 1;
        self.shared
            .tracker
            .alloc(MemoryTracker::embedding_bytes(len));
        if len <= INLINE_EMB {
            let mut emb = [0u32; INLINE_EMB];
            emb[..parent.len()].copy_from_slice(parent);
            emb[parent.len()] = global;
            self.spawn(Task::Expand {
                depth: len as u8,
                emb,
            });
        } else {
            let mut buf = self.pool.pop().unwrap_or_default();
            buf.clear();
            buf.reserve(len);
            buf.extend_from_slice(parent);
            buf.push(global);
            self.spawn(Task::ExpandSpilled { emb: buf });
        }
    }

    fn execute(&mut self, task: Task) {
        match task {
            Task::Scan { start, end } => self.execute_scan(start, end),
            Task::Expand { depth, emb } => {
                let depth = depth as usize;
                self.shared
                    .tracker
                    .free(MemoryTracker::embedding_bytes(depth));
                self.execute_expand(depth, &emb[..depth]);
            }
            Task::ExpandSpilled { emb } => {
                self.shared
                    .tracker
                    .free(MemoryTracker::embedding_bytes(emb.len()));
                self.execute_expand(emb.len(), &emb);
                if self.pool.len() < POOL_CAP {
                    self.pool.push(emb);
                }
            }
        }
    }

    fn execute_scan(&mut self, start: u32, end: u32) {
        if self.check_abort() {
            return;
        }
        let chunk = self.shared.config.scan_chunk.max(1) as u32;
        if end - start > chunk {
            let mid = start + (end - start) / 2;
            // Push the far half first so the near half is processed next
            // (LIFO), keeping the scan roughly in order locally.
            self.spawn(Task::Scan { start: mid, end });
            self.spawn(Task::Scan { start, end: mid });
            return;
        }

        let plan = self.shared.plan;
        let partition = self
            .shared
            .data
            .partition(plan.steps()[0].partition.expect("feasible"));
        self.metrics.scan_rows += (end - start) as u64;
        if plan.len() == 1 {
            // Single-edge query: scan rows are complete embeddings.
            for row in start..end {
                let global = partition.global_id(row).raw();
                self.full_scratch.clear();
                self.full_scratch.push(global);
                self.deliver_full();
            }
            return;
        }
        for row in (start..end).rev() {
            let global = partition.global_id(row).raw();
            self.spawn_expand(&[], global);
        }
    }

    fn execute_expand(&mut self, depth: usize, emb: &[u32]) {
        if self.check_abort() {
            return;
        }
        let plan = self.shared.plan;
        let data = self.shared.data;
        let step = &plan.steps()[depth];
        // A step whose signature is absent from the data can never extend
        // anything: skip the (non-trivial) state preparation outright.
        let Some(pid) = step.partition else {
            self.metrics.expansions += 1;
            return;
        };
        self.state.prepare(data, step, emb);
        let produced = generate_candidates(data, step, emb, &mut self.state, self.shared.config);
        self.metrics.expansions += 1;
        self.metrics.candidates += produced as u64;
        let partition = data.partition(pid);
        let last = depth + 1 == plan.len();

        let cands = std::mem::take(&mut self.state.candidates);
        for &row in &cands {
            let global = partition.global_id(row).raw();
            match validate_candidate(
                data,
                step,
                depth,
                emb,
                &self.state,
                global,
                partition.row(row),
                &mut self.scratch,
            ) {
                Validation::Valid => {
                    self.metrics.filtered += 1;
                    self.metrics.validated += 1;
                    if last {
                        self.full_scratch.clear();
                        self.full_scratch.extend_from_slice(emb);
                        self.full_scratch.push(global);
                        self.deliver_full();
                    } else {
                        self.spawn_expand(emb, global);
                    }
                }
                Validation::WrongProfiles => self.metrics.filtered += 1,
                Validation::WrongVertexCount | Validation::Duplicate => {}
            }
        }
        self.state.candidates = cands;
    }

    /// Delivers `self.full_scratch` as a complete embedding.
    fn deliver_full(&mut self) {
        self.metrics.embeddings += 1;
        self.stats.matches += 1;
        // Counts are batched per task (`flush_counts`) so counting costs no
        // shared atomic per embedding.
        self.uncounted += 1;
        if self.shared.sink.needs_embeddings() {
            self.shared
                .plan
                .to_query_order_into(&self.full_scratch, &mut self.ordered_scratch);
            self.shared.sink.consume(&self.ordered_scratch);
        }
    }

    fn flush_counts(&mut self) {
        if self.uncounted > 0 {
            self.shared.sink.add_count(self.uncounted);
            self.uncounted = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Planner;
    use crate::query::QueryGraph;
    use crate::sink::{CollectSink, CountSink, FirstKSink};
    use hgmatch_hypergraph::{HypergraphBuilder, Label};

    fn paper_data() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1, 2, 0] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![4, 6]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![3, 5, 6]).unwrap();
        b.add_edge(vec![0, 1, 4, 6]).unwrap();
        b.add_edge(vec![2, 3, 4, 5]).unwrap();
        b.build().unwrap()
    }

    fn paper_query() -> QueryGraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![0, 1, 3, 4]).unwrap();
        QueryGraph::new(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn parallel_matches_paper_example() {
        let data = paper_data();
        let plan = Planner::plan(&paper_query(), &data).unwrap();
        for threads in [1, 2, 4] {
            let sink = CollectSink::new();
            let stats = ParallelEngine::run(&plan, &data, &sink, &MatchConfig::parallel(threads));
            assert_eq!(stats.embeddings(), 2, "threads={threads}");
            assert_eq!(stats.workers.len(), threads);
            let results = sink.into_results();
            assert_eq!(results[0].raw(), &[0, 2, 4]);
            assert_eq!(results[1].raw(), &[1, 3, 5]);
        }
    }

    #[test]
    fn nostl_static_partitioning_matches() {
        let data = paper_data();
        let plan = Planner::plan(&paper_query(), &data).unwrap();
        let sink = CountSink::new();
        let cfg = MatchConfig::parallel(3).with_work_stealing(false);
        let stats = ParallelEngine::run(&plan, &data, &sink, &cfg);
        assert_eq!(stats.embeddings(), 2);
        assert_eq!(sink.count(), 2);
        assert!(stats.workers.iter().all(|w| w.steals == 0));
    }

    #[test]
    fn single_edge_query_parallel() {
        let data = paper_data();
        let mut b = HypergraphBuilder::new();
        b.add_vertex(Label::new(0));
        b.add_vertex(Label::new(1));
        b.add_edge(vec![0, 1]).unwrap();
        let q = QueryGraph::new(&b.build().unwrap()).unwrap();
        let plan = Planner::plan(&q, &data).unwrap();
        let sink = CountSink::new();
        let stats = ParallelEngine::run(&plan, &data, &sink, &MatchConfig::parallel(2));
        assert_eq!(stats.embeddings(), 2);
    }

    #[test]
    fn infeasible_returns_immediately() {
        let data = paper_data();
        let mut b = HypergraphBuilder::new();
        b.add_vertices(2, Label::new(9));
        b.add_edge(vec![0, 1]).unwrap();
        let q = QueryGraph::new(&b.build().unwrap()).unwrap();
        let plan = Planner::plan(&q, &data).unwrap();
        let sink = CountSink::new();
        let stats = ParallelEngine::run(&plan, &data, &sink, &MatchConfig::parallel(2));
        assert_eq!(stats.embeddings(), 0);
        assert!(!stats.timed_out);
    }

    #[test]
    fn first_k_aborts_workers() {
        let data = paper_data();
        let plan = Planner::plan(&paper_query(), &data).unwrap();
        let sink = FirstKSink::new(1);
        ParallelEngine::run(&plan, &data, &sink, &MatchConfig::parallel(2));
        assert_eq!(sink.into_results().len(), 1);
    }

    #[test]
    fn memory_peak_tracked() {
        let data = paper_data();
        let plan = Planner::plan(&paper_query(), &data).unwrap();
        let sink = CountSink::new();
        let stats = ParallelEngine::run(&plan, &data, &sink, &MatchConfig::parallel(2));
        assert!(stats.peak_memory_bytes > 0);
    }

    /// A query with more hyperedges than [`INLINE_EMB`], exercising the
    /// spill-to-pool path: a path of 10 {A,A} edges over distinct vertices,
    /// matched against an identical data path (exactly one embedding).
    #[test]
    fn deep_queries_spill_and_still_match() {
        let n = 10usize;
        assert!(n > INLINE_EMB);
        let mut d = HypergraphBuilder::new();
        d.add_vertices(n + 1, Label::new(0));
        for i in 0..n {
            d.add_edge(vec![i as u32, i as u32 + 1]).unwrap();
        }
        let data = d.build().unwrap();

        let mut q = HypergraphBuilder::new();
        q.add_vertices(n + 1, Label::new(0));
        for i in 0..n {
            q.add_edge(vec![i as u32, i as u32 + 1]).unwrap();
        }
        let query = QueryGraph::new(&q.build().unwrap()).unwrap();
        let plan = Planner::plan(&query, &data).unwrap();

        // Oracle: the sequential executor (its recursion depth is unbounded
        // by INLINE_EMB, so it pins down the expected count — the identity
        // embedding plus the path-reversal automorphism).
        let oracle = CountSink::new();
        crate::exec::SequentialExecutor::run(&plan, &data, &oracle, &MatchConfig::sequential());
        assert!(oracle.count() >= 1);

        for threads in [1, 3] {
            let sink = CountSink::new();
            let stats = ParallelEngine::run(&plan, &data, &sink, &MatchConfig::parallel(threads));
            assert_eq!(stats.embeddings(), oracle.count(), "threads={threads}");
            assert_eq!(sink.count(), oracle.count());
        }
    }
}
