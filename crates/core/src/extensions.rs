//! Dataflow extensions: property filtering and aggregation.
//!
//! The paper remarks (§VI-A) that HGMatch's dataflow design "allows it to
//! be easily extended with other functionalities of hypergraph databases …
//! by introducing new dataflow operators. Examples include adding extra
//! aggregation and property filtering to the dataflow graph." This module
//! implements those two operators as *sink combinators*: they compose on
//! the SINK side of the dataflow path, so they run inside the workers with
//! zero extra materialisation, exactly like a fused post-SINK operator
//! would.
//!
//! * [`FilterSink`] — keeps only embeddings satisfying a predicate
//!   (property filtering; e.g. "the two matched hyperedges must not share
//!   the team entity").
//! * [`GroupCountSink`] — counts embeddings grouped by the data hyperedge
//!   matched to a chosen query hyperedge (aggregation; e.g. "answers per
//!   player fact").
//! * [`DistinctEdgeSink`] — counts the distinct data hyperedges used in
//!   some query-hyperedge position (a `COUNT(DISTINCT …)` aggregate).

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use hgmatch_hypergraph::fxhash::FxHashMap;

use crate::sink::Sink;

/// Property filter: forwards embeddings that satisfy `predicate` to the
/// inner sink.
///
/// The predicate receives the embedding in query-edge order (data edge id
/// per query hyperedge) and must be thread-safe.
pub struct FilterSink<S: Sink, P: Fn(&[u32]) -> bool + Sync> {
    inner: S,
    predicate: P,
    passed: AtomicU64,
    dropped: AtomicU64,
}

impl<S: Sink, P: Fn(&[u32]) -> bool + Sync> FilterSink<S, P> {
    /// Wraps `inner`, forwarding only embeddings where `predicate` holds.
    pub fn new(inner: S, predicate: P) -> Self {
        Self {
            inner,
            predicate,
            passed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Embeddings forwarded to the inner sink.
    pub fn passed(&self) -> u64 {
        self.passed.load(Ordering::Relaxed)
    }

    /// Embeddings rejected by the predicate.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Unwraps the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Sink, P: Fn(&[u32]) -> bool + Sync> Sink for FilterSink<S, P> {
    fn needs_embeddings(&self) -> bool {
        true // the predicate must see every embedding
    }

    fn consume(&self, embedding: &[u32]) {
        if (self.predicate)(embedding) {
            self.passed.fetch_add(1, Ordering::Relaxed);
            self.inner.add_count(1);
            if self.inner.needs_embeddings() {
                self.inner.consume(embedding);
            }
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn add_count(&self, _n: u64) {
        // Raw pre-filter counts are ignored; filtered counts are forwarded
        // from `consume`.
    }

    fn is_satisfied(&self) -> bool {
        self.inner.is_satisfied()
    }
}

/// Aggregation: counts embeddings per data hyperedge matched at one query
/// hyperedge position (a `GROUP BY f(eq) COUNT(*)`).
pub struct GroupCountSink {
    query_edge: usize,
    groups: Mutex<FxHashMap<u32, u64>>,
    total: AtomicU64,
}

impl GroupCountSink {
    /// Groups by the data edge matched to query hyperedge `query_edge`.
    pub fn new(query_edge: usize) -> Self {
        Self {
            query_edge,
            groups: Mutex::new(FxHashMap::default()),
            total: AtomicU64::new(0),
        }
    }

    /// The aggregated `(data edge, count)` pairs, sorted by edge id.
    pub fn into_groups(self) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self.groups.into_inner().into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Total embeddings aggregated.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }
}

impl Sink for GroupCountSink {
    fn needs_embeddings(&self) -> bool {
        true
    }

    fn consume(&self, embedding: &[u32]) {
        let key = embedding[self.query_edge];
        *self.groups.lock().entry(key).or_insert(0) += 1;
    }

    fn add_count(&self, n: u64) {
        self.total.fetch_add(n, Ordering::Relaxed);
    }
}

/// `COUNT(DISTINCT f(eq))`: distinct data hyperedges appearing at one
/// query-hyperedge position.
pub struct DistinctEdgeSink {
    query_edge: usize,
    seen: Mutex<hgmatch_hypergraph::fxhash::FxHashSet<u32>>,
    total: AtomicU64,
}

impl DistinctEdgeSink {
    /// Tracks distinct matches of query hyperedge `query_edge`.
    pub fn new(query_edge: usize) -> Self {
        Self {
            query_edge,
            seen: Mutex::new(hgmatch_hypergraph::fxhash::FxHashSet::default()),
            total: AtomicU64::new(0),
        }
    }

    /// Number of distinct data hyperedges observed.
    pub fn distinct(&self) -> usize {
        self.seen.lock().len()
    }

    /// Total embeddings seen.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }
}

impl Sink for DistinctEdgeSink {
    fn needs_embeddings(&self) -> bool {
        true
    }

    fn consume(&self, embedding: &[u32]) {
        self.seen.lock().insert(embedding[self.query_edge]);
    }

    fn add_count(&self, n: u64) {
        self.total.fetch_add(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::Matcher;
    use crate::sink::CollectSink;
    use hgmatch_hypergraph::{Hypergraph, HypergraphBuilder, Label};

    fn paper_data() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1, 2, 0] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![4, 6]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![3, 5, 6]).unwrap();
        b.add_edge(vec![0, 1, 4, 6]).unwrap();
        b.add_edge(vec![2, 3, 4, 5]).unwrap();
        b.build().unwrap()
    }

    fn paper_query() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![0, 1, 3, 4]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn filter_sink_partitions_results() {
        let data = paper_data();
        let query = paper_query();
        // Keep only embeddings whose first matched edge is e0.
        let sink = FilterSink::new(CollectSink::new(), |emb: &[u32]| emb[0] == 0);
        Matcher::new(&data).run(&query, &sink).unwrap();
        assert_eq!(sink.passed(), 1);
        assert_eq!(sink.dropped(), 1);
        let results = sink.into_inner().into_results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].raw(), &[0, 2, 4]);
    }

    #[test]
    fn filter_sink_under_parallel_engine() {
        let data = paper_data();
        let query = paper_query();
        let sink = FilterSink::new(CollectSink::new(), |_: &[u32]| true);
        Matcher::with_config(&data, crate::MatchConfig::parallel(3))
            .run(&query, &sink)
            .unwrap();
        assert_eq!(sink.passed(), 2);
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn group_count_aggregates_by_position() {
        let data = paper_data();
        let query = paper_query();
        let sink = GroupCountSink::new(2); // group by f(q2)
        Matcher::new(&data).run(&query, &sink).unwrap();
        let groups = sink.into_groups();
        assert_eq!(groups, vec![(4, 1), (5, 1)]);
    }

    #[test]
    fn distinct_edges_counted() {
        let data = paper_data();
        let query = paper_query();
        let sink = DistinctEdgeSink::new(0);
        Matcher::new(&data).run(&query, &sink).unwrap();
        assert_eq!(sink.distinct(), 2);
        assert_eq!(sink.total(), 2);
    }

    #[test]
    fn filter_respects_inner_satisfaction() {
        let data = paper_data();
        let query = paper_query();
        let sink = FilterSink::new(crate::sink::FirstKSink::new(1), |_: &[u32]| true);
        Matcher::new(&data).run(&query, &sink).unwrap();
        assert_eq!(sink.into_inner().into_results().len(), 1);
    }
}
