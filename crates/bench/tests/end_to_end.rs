//! Workspace-spanning end-to-end tests: dataset profiles → query sampling
//! → planning → parallel matching → baselines, exercised together the way
//! the experiment binaries use them.

use std::time::Duration;

use hgmatch_bench::experiments::{single_thread_sweep, time_index_build, SweepParams};
use hgmatch_bench::harness::{time_algorithm, AlgorithmChoice, Workload};
use hgmatch_core::{MatchConfig, Matcher};
use hgmatch_datasets::{profile_by_name, standard_settings, KnowledgeBase, KnowledgeBaseConfig};

#[test]
fn sweep_runs_and_all_algorithms_agree_on_counts() {
    // A miniature Fig. 8 sweep on the smallest dataset: all algorithms
    // must produce identical counts on every query they complete.
    let params = SweepParams {
        timeout: Duration::from_secs(10),
        queries_per_setting: 2,
        datasets: vec!["CH".to_string()],
        seed: 3,
    };
    let data = profile_by_name("CH").unwrap().generate();
    for setting in standard_settings().iter().take(2) {
        let workload = Workload::sample(&data, *setting, 2, 3);
        for query in &workload.queries {
            let mut counts = Vec::new();
            for alg in AlgorithmChoice::single_thread_lineup() {
                let run = time_algorithm(alg, &data, query, Some(params.timeout));
                if !run.timed_out {
                    counts.push((alg.name(), run.count));
                }
            }
            assert!(!counts.is_empty());
            let reference = counts[0].1;
            for (name, count) in &counts {
                assert_eq!(*count, reference, "{name} disagrees");
            }
        }
    }
}

#[test]
fn sweep_result_has_expected_shape() {
    let params = SweepParams {
        timeout: Duration::from_secs(5),
        queries_per_setting: 1,
        datasets: vec!["CH".to_string()],
        seed: 1,
    };
    let result = single_thread_sweep(&params, |_| {});
    // 4 settings x 5 algorithms (some settings may fail to sample).
    assert!(!result.cells.is_empty());
    let ratios = result.completion_ratios();
    assert!(ratios.contains_key("HGMatch"));
    assert!(
        ratios.len() == 5,
        "five algorithms expected, got {:?}",
        ratios.keys()
    );
    for (_, (completed, total)) in ratios {
        assert!(completed <= total);
    }
}

#[test]
fn index_build_timing_is_sane() {
    let h = profile_by_name("CP").unwrap().generate();
    let timing = time_index_build(&h);
    assert!(timing.build_seconds > 0.0);
    assert!(timing.build_seconds < 30.0);
    assert!(timing.table_bytes > 0);
    assert!(timing.index_bytes > 0);
}

#[test]
fn parallel_matches_sequential_on_profile_dataset() {
    let data = profile_by_name("CH").unwrap().generate();
    let workload = Workload::sample(&data, standard_settings()[1], 3, 17);
    assert!(!workload.is_empty());
    let seq = Matcher::new(&data);
    let par = Matcher::with_config(&data, MatchConfig::parallel(4));
    for query in &workload.queries {
        assert_eq!(seq.count(query).unwrap(), par.count(query).unwrap());
    }
}

#[test]
fn case_study_queries_return_answers() {
    let kb = KnowledgeBase::generate(&KnowledgeBaseConfig::default());
    let matcher = Matcher::new(&kb.graph);
    let q1 = matcher
        .count(&KnowledgeBase::query_multi_team_player())
        .unwrap();
    let q2 = matcher
        .count(&KnowledgeBase::query_recast_character())
        .unwrap();
    assert!(q1 > 0, "query 1 has planted answers");
    assert!(q2 > 0, "query 2 has planted answers");
}
