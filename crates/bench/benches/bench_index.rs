//! Fig. 7 microbenchmark: offline preprocessing (signature partitioning +
//! inverted hyperedge index construction) on the small/medium datasets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hgmatch_datasets::profile_by_name;
use hgmatch_hypergraph::HypergraphBuilder;
use std::hint::black_box;

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for name in ["HC", "CH", "CP", "SB"] {
        let profile = profile_by_name(name).expect("profile");
        let h = profile.generate();
        let labels = h.labels().to_vec();
        let edges: Vec<Vec<u32>> = h.iter_edges().map(|(_, vs)| vs.to_vec()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| {
                let mut builder = HypergraphBuilder::new();
                for &l in &labels {
                    builder.add_vertex(l);
                }
                for e in &edges {
                    builder.add_edge(e.clone()).unwrap();
                }
                black_box(builder.build().unwrap().num_edges())
            });
        });
    }
    group.finish();
}

fn bench_incident_lookup(c: &mut Criterion) {
    let h = profile_by_name("CP").expect("profile").generate();
    let partition = &h.partitions()[0];
    c.bench_function("inverted_index_lookup", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for v in 0..h.num_vertices() as u32 {
                total += partition.incident_posting(black_box(v)).len();
            }
            black_box(total)
        });
    });
}

criterion_group!(benches, bench_index_build, bench_incident_lookup);
criterion_main!(benches);
