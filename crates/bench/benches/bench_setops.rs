//! Microbenchmarks of the sorted-set kernels behind candidate generation
//! (paper §V-B): the merge-vs-gallop ablation, the scalar-vs-SIMD and
//! list-vs-bitmap comparisons of DESIGN.md §5, the k-way union, and the
//! allocation cost of the expansion task layout (DESIGN.md §6).
//!
//! Run `HGMATCH_BENCH_JSON=BENCH_setops.json cargo bench --bench
//! bench_setops` to regenerate the committed baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hgmatch_hypergraph::bitmap::Bitmap;
use hgmatch_hypergraph::compressed::CompressedPostings;
use hgmatch_hypergraph::setops::{self, KernelMode};
use std::hint::black_box;

fn evens(n: u32) -> Vec<u32> {
    (0..n).map(|i| i * 2).collect()
}

fn multiples(n: u32, k: u32) -> Vec<u32> {
    (0..n).map(|i| i * k).collect()
}

fn bench_intersections(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect");
    let large = evens(100_000);
    for small_len in [16u32, 256, 4_096, 65_536] {
        let small = multiples(small_len, 7);
        group.bench_with_input(
            BenchmarkId::new("adaptive", small_len),
            &small,
            |b, small| {
                let mut out = Vec::new();
                b.iter(|| {
                    setops::intersect_into(black_box(small), black_box(&large), &mut out);
                    black_box(out.len())
                });
            },
        );
    }
    group.finish();
}

/// The acceptance-criterion comparison: scalar merge vs SIMD dispatch vs
/// bitmap AND on large, similar-sized posting lists.
fn bench_scalar_vs_simd(c: &mut Criterion) {
    let a = multiples(100_000, 2);
    let b = multiples(100_000, 3);
    let mut group = c.benchmark_group("intersect_large");

    group.bench_function("scalar_merge", |bench| {
        let mut out = Vec::new();
        bench.iter(|| {
            setops::intersect_into_scalar(black_box(&a), black_box(&b), &mut out);
            black_box(out.len())
        });
    });
    group.bench_function(format!("simd_{}", setops::simd_level()), |bench| {
        let mut out = Vec::new();
        bench.iter(|| {
            setops::intersect_into(black_box(&a), black_box(&b), &mut out);
            black_box(out.len())
        });
    });
    // Bitmap AND over the same sets (domain = max value), pre-built as a
    // partition's inverted index would hold them.
    let domain = 300_001u32;
    let ba = Bitmap::from_sorted(&a, domain);
    let bb = Bitmap::from_sorted(&b, domain);
    group.bench_function("bitmap_and", |bench| {
        let mut acc = Bitmap::new(domain);
        let mut out = Vec::new();
        bench.iter(|| {
            acc.clone_from(black_box(&ba));
            acc.intersect_assign(black_box(&bb));
            out.clear();
            acc.extract_into(&mut out);
            black_box(out.len())
        });
    });
    group.finish();

    let mut group = c.benchmark_group("difference_large");
    group.bench_function("scalar_merge", |bench| {
        let mut out = Vec::new();
        bench.iter(|| {
            setops::difference_into_scalar(black_box(&a), black_box(&b), &mut out);
            black_box(out.len())
        });
    });
    group.bench_function(format!("simd_{}", setops::simd_level()), |bench| {
        let mut out = Vec::new();
        bench.iter(|| {
            setops::difference_into(black_box(&a), black_box(&b), &mut out);
            black_box(out.len())
        });
    });
    group.finish();
}

fn bench_union_difference(c: &mut Criterion) {
    let a = multiples(50_000, 2);
    let b = multiples(50_000, 3);
    c.bench_function("union/50k+50k", |bench| {
        let mut out = Vec::new();
        bench.iter(|| {
            setops::union_into(black_box(&a), black_box(&b), &mut out);
            black_box(out.len())
        });
    });
    c.bench_function("difference/50k-50k", |bench| {
        let mut out = Vec::new();
        bench.iter(|| {
            setops::difference_into(black_box(&a), black_box(&b), &mut out);
            black_box(out.len())
        });
    });
}

fn bench_multiway(c: &mut Criterion) {
    let lists: Vec<Vec<u32>> = (2..8u32).map(|k| multiples(20_000, k)).collect();
    c.bench_function("intersect_many/6-way", |bench| {
        bench.iter(|| {
            let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
            black_box(setops::intersect_many(refs).len())
        });
    });
    c.bench_function("union_many/6-way", |bench| {
        bench.iter(|| {
            let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
            black_box(setops::union_many(refs).len())
        });
    });

    // k-way tournament vs the old O(k·n) accumulating pairwise loop, on
    // many equal-sized lists (the shape of a hub anchor's posting union).
    let wide: Vec<Vec<u32>> = (0..16u32)
        .map(|k| (k..60_000).step_by(16).collect())
        .collect();
    let mut group = c.benchmark_group("union_many_16way");
    group.bench_function("tournament", |bench| {
        let mut out = Vec::new();
        let mut scratch = setops::MultiwayScratch::new();
        bench.iter(|| {
            let mut refs: Vec<&[u32]> = wide.iter().map(|l| l.as_slice()).collect();
            setops::union_many_into(&mut refs, &mut out, &mut scratch);
            black_box(out.len())
        });
    });
    group.bench_function("pairwise", |bench| {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        bench.iter(|| {
            let mut refs: Vec<&[u32]> = wide.iter().map(|l| l.as_slice()).collect();
            refs.sort_unstable_by_key(|s| s.len());
            setops::union_into(refs[0], refs[1], &mut out);
            for s in &refs[2..] {
                setops::union_into(&out, s, &mut scratch);
                std::mem::swap(&mut out, &mut scratch);
            }
            black_box(out.len())
        });
    });
    group.finish();
}

/// Allocation cost of the expansion task layout (DESIGN.md §6.2): per-task
/// boxed embeddings (the old layout) vs a recycled buffer pool vs the
/// inline fixed array, over a depth-4 embedding.
fn bench_task_alloc(c: &mut Criterion) {
    const DEPTH: usize = 4;
    let parent = [7u32, 11, 13, 17];
    let mut group = c.benchmark_group("expand_task_emb");

    group.bench_function("boxed_per_task", |bench| {
        bench.iter(|| {
            let mut next = Vec::with_capacity(DEPTH + 1);
            next.extend_from_slice(black_box(&parent));
            next.push(19);
            let boxed: Box<[u32]> = next.into_boxed_slice();
            black_box(boxed.len())
        });
    });
    group.bench_function("pooled_buffer", |bench| {
        let mut pool: Vec<Vec<u32>> = Vec::new();
        bench.iter(|| {
            let mut buf = pool.pop().unwrap_or_default();
            buf.clear();
            buf.extend_from_slice(black_box(&parent));
            buf.push(19);
            let len = buf.len();
            pool.push(buf);
            black_box(len)
        });
    });
    group.bench_function("inline_array", |bench| {
        bench.iter(|| {
            let mut emb = [0u32; 8];
            emb[..DEPTH].copy_from_slice(black_box(&parent));
            emb[DEPTH] = 19;
            black_box(emb[DEPTH] as usize + DEPTH + 1)
        });
    });
    group.finish();
}

/// `total` values in runs of `run` consecutive ids, one run per `period`
/// ids — the "mid-density long runs" shape `choose_repr` sends to the
/// compressed representation (overall density `run/period`). `offset`
/// staggers the runs so two such sets overlap partially.
fn run_structured(total: u32, run: u32, period: u32, offset: u32) -> Vec<u32> {
    (0..total)
        .map(|i| (i / run) * period + (i % run) + offset)
        .collect()
}

/// The compressed-posting rows (DESIGN.md §14): fused decode-and-intersect
/// and decode-and-difference against the plain list kernels (and the
/// bitmap AND) at two matched mid-density shapes, 100k postings each.
///
/// * `*_mid_runs`: runs of 256 ids at 1/32 overall density — the shape the
///   three-way selection rule targets. Run blocks pack to width 0 and the
///   fused kernels never decode them, so this is the ≤10% regression gate
///   (compare `intersect_mid_runs/fused_compressed` against
///   `intersect_mid_runs/list_simd`; the gate result is printed below).
/// * `*_mid_uniform`: every-32nd-id postings — the adversarial case where
///   every block really is bitpacked and the serial delta decode is paid
///   on top of the intersection; recorded so the decode cost stays visible.
fn bench_compressed_kernels(c: &mut Criterion) {
    // Gate shape: 256-long runs, period 8192 (density 1/32), the second
    // operand staggered half a run so every run pair overlaps by 128.
    let a = run_structured(100_000, 256, 8192, 0);
    let b = run_structured(100_000, 256, 8192, 128);
    let ca = CompressedPostings::from_sorted(&a);
    assert_eq!(ca.to_sorted(), a, "bench operand must round-trip");
    // Uniform mid-density shape: every block bitpacks at width 5.
    let ua = multiples(100_000, 32);
    let ub = multiples(100_000, 48);
    let cua = CompressedPostings::from_sorted(&ua);
    assert_eq!(cua.to_sorted(), ua, "bench operand must round-trip");

    for (tag, a, b, ca) in [
        ("intersect_mid_runs", &a, &b, &ca),
        ("intersect_mid_uniform", &ua, &ub, &cua),
    ] {
        let mut group = c.benchmark_group(tag);
        group.bench_function("list_simd", |bench| {
            let mut out = Vec::new();
            bench.iter(|| {
                setops::intersect_into(black_box(a), black_box(b), &mut out);
                black_box(out.len())
            });
        });
        group.bench_function("fused_compressed", |bench| {
            let mut out = Vec::new();
            bench.iter(|| {
                setops::intersect_compressed_into(black_box(ca), black_box(b), &mut out);
                black_box(out.len())
            });
        });
        let domain = a.last().unwrap().max(b.last().unwrap()) + 1;
        let ba = Bitmap::from_sorted(a, domain);
        let bb = Bitmap::from_sorted(b, domain);
        group.bench_function("bitmap_and", |bench| {
            let mut acc = Bitmap::new(domain);
            let mut out = Vec::new();
            bench.iter(|| {
                acc.clone_from(black_box(&ba));
                acc.intersect_assign(black_box(&bb));
                out.clear();
                acc.extract_into(&mut out);
                black_box(out.len())
            });
        });
        group.finish();
    }

    for (tag, a, b, ca) in [
        ("difference_mid_runs", &a, &b, &ca),
        ("difference_mid_uniform", &ua, &ub, &cua),
    ] {
        let mut group = c.benchmark_group(tag);
        group.bench_function("list_simd", |bench| {
            let mut out = Vec::new();
            bench.iter(|| {
                setops::difference_into(black_box(a), black_box(b), &mut out);
                black_box(out.len())
            });
        });
        group.bench_function("fused_compressed", |bench| {
            let mut out = Vec::new();
            bench.iter(|| {
                setops::difference_compressed_list_into(black_box(ca), black_box(b), &mut out);
                black_box(out.len())
            });
        });
        group.finish();
    }

    // The ≤10% gate, computed from the rows just measured and printed
    // next to them (the committed JSON holds the same medians).
    let median = |results: &Criterion, name: &str| {
        results
            .measurements()
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.median_ns)
            .expect("gate rows measured above")
    };
    for shape in ["mid_runs", "mid_uniform"] {
        let ratio = median(c, &format!("intersect_{shape}/fused_compressed"))
            / median(c, &format!("intersect_{shape}/list_simd"));
        println!("gate[{shape}]: fused_compressed / list_simd intersect ratio {ratio:.3} (target <= 1.10 on mid_runs)");
        c.record_metric(
            format!("gate/intersect_{shape}/fused_over_list_simd"),
            ratio,
            "x",
        );
    }
}

/// Bytes-per-posting across the three representations at the mid-density
/// shapes above, written into the JSON report's `"metrics"` table and
/// followed by decode-throughput timing rows. The names are deterministic;
/// the asserted invariant is the acceptance criterion — compressed postings
/// at least 3x smaller than raw lists.
fn bench_repr_memory(c: &mut Criterion) {
    for (shape, a) in [
        ("uniform_gap32", multiples(100_000, 32)),
        ("runs_256_8192", run_structured(100_000, 256, 8192, 0)),
    ] {
        let domain = a.last().unwrap() + 1;
        let ca = CompressedPostings::from_sorted(&a);
        let ba = Bitmap::from_sorted(&a, domain);
        let list_bpp = std::mem::size_of::<u32>() as f64;
        let comp_bpp = ca.size_bytes() as f64 / a.len() as f64;
        let bitmap_bpp = ba.size_bytes() as f64 / a.len() as f64;
        c.record_metric(format!("repr_memory/{shape}/list"), list_bpp, "B/posting");
        c.record_metric(
            format!("repr_memory/{shape}/bitmap"),
            bitmap_bpp,
            "B/posting",
        );
        c.record_metric(
            format!("repr_memory/{shape}/compressed"),
            comp_bpp,
            "B/posting",
        );
        c.record_metric(
            format!("repr_memory/{shape}/list_over_compressed"),
            list_bpp / comp_bpp,
            "x",
        );
        assert!(
            list_bpp >= 3.0 * comp_bpp,
            "compressed representation must be >=3x smaller than raw lists \
             at mid-density ({shape}): {comp_bpp:.3} B/posting vs {list_bpp:.2}"
        );
    }

    let a = multiples(100_000, 32);
    let domain = a.last().unwrap() + 1;
    let ca = CompressedPostings::from_sorted(&a);
    let ba = Bitmap::from_sorted(&a, domain);

    let mut group = c.benchmark_group("repr_decode_100k_gap32");
    group.bench_function("list_copy", |bench| {
        let mut out = Vec::new();
        bench.iter(|| {
            out.clear();
            out.extend_from_slice(black_box(&a));
            black_box(out.len())
        });
    });
    group.bench_function("bitmap_extract", |bench| {
        let mut out = Vec::new();
        bench.iter(|| {
            out.clear();
            black_box(&ba).extract_into(&mut out);
            black_box(out.len())
        });
    });
    group.bench_function("compressed_decode", |bench| {
        let mut out = Vec::new();
        bench.iter(|| {
            out.clear();
            black_box(&ca).decode_into(&mut out);
            black_box(out.len())
        });
    });
    group.finish();
}

/// Kernel-mode sanity for the JSON baseline: record that ForceScalar and
/// Auto agree on the measured shapes (cheap; the real guarantee is the
/// cross-check test suite).
fn bench_mode_agreement(c: &mut Criterion) {
    let a = multiples(100_000, 2);
    let b = multiples(100_000, 3);
    let mut auto_out = Vec::new();
    let mut scalar_out = Vec::new();
    setops::intersect_into(&a, &b, &mut auto_out);
    setops::set_kernel_mode(KernelMode::ForceScalar);
    setops::intersect_into(&a, &b, &mut scalar_out);
    setops::set_kernel_mode(KernelMode::Auto);
    assert_eq!(
        auto_out, scalar_out,
        "kernel families disagree on bench input"
    );
    c.bench_function("sanity/kernel_families_agree", |bench| {
        bench.iter(|| black_box(auto_out.len()));
    });
}

criterion_group!(
    benches,
    bench_intersections,
    bench_scalar_vs_simd,
    bench_union_difference,
    bench_multiway,
    bench_task_alloc,
    bench_compressed_kernels,
    bench_repr_memory,
    bench_mode_agreement
);
criterion_main!(benches);
