//! Microbenchmarks of the sorted-set kernels behind candidate generation
//! (paper §V-B): the merge-vs-gallop ablation, the scalar-vs-SIMD and
//! list-vs-bitmap comparisons of DESIGN.md §5, the k-way union, and the
//! allocation cost of the expansion task layout (DESIGN.md §6).
//!
//! Run `HGMATCH_BENCH_JSON=BENCH_setops.json cargo bench --bench
//! bench_setops` to regenerate the committed baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hgmatch_hypergraph::bitmap::Bitmap;
use hgmatch_hypergraph::setops::{self, KernelMode};
use std::hint::black_box;

fn evens(n: u32) -> Vec<u32> {
    (0..n).map(|i| i * 2).collect()
}

fn multiples(n: u32, k: u32) -> Vec<u32> {
    (0..n).map(|i| i * k).collect()
}

fn bench_intersections(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect");
    let large = evens(100_000);
    for small_len in [16u32, 256, 4_096, 65_536] {
        let small = multiples(small_len, 7);
        group.bench_with_input(
            BenchmarkId::new("adaptive", small_len),
            &small,
            |b, small| {
                let mut out = Vec::new();
                b.iter(|| {
                    setops::intersect_into(black_box(small), black_box(&large), &mut out);
                    black_box(out.len())
                });
            },
        );
    }
    group.finish();
}

/// The acceptance-criterion comparison: scalar merge vs SIMD dispatch vs
/// bitmap AND on large, similar-sized posting lists.
fn bench_scalar_vs_simd(c: &mut Criterion) {
    let a = multiples(100_000, 2);
    let b = multiples(100_000, 3);
    let mut group = c.benchmark_group("intersect_large");

    group.bench_function("scalar_merge", |bench| {
        let mut out = Vec::new();
        bench.iter(|| {
            setops::intersect_into_scalar(black_box(&a), black_box(&b), &mut out);
            black_box(out.len())
        });
    });
    group.bench_function(format!("simd_{}", setops::simd_level()), |bench| {
        let mut out = Vec::new();
        bench.iter(|| {
            setops::intersect_into(black_box(&a), black_box(&b), &mut out);
            black_box(out.len())
        });
    });
    // Bitmap AND over the same sets (domain = max value), pre-built as a
    // partition's inverted index would hold them.
    let domain = 300_001u32;
    let ba = Bitmap::from_sorted(&a, domain);
    let bb = Bitmap::from_sorted(&b, domain);
    group.bench_function("bitmap_and", |bench| {
        let mut acc = Bitmap::new(domain);
        let mut out = Vec::new();
        bench.iter(|| {
            acc.clone_from(black_box(&ba));
            acc.intersect_assign(black_box(&bb));
            out.clear();
            acc.extract_into(&mut out);
            black_box(out.len())
        });
    });
    group.finish();

    let mut group = c.benchmark_group("difference_large");
    group.bench_function("scalar_merge", |bench| {
        let mut out = Vec::new();
        bench.iter(|| {
            setops::difference_into_scalar(black_box(&a), black_box(&b), &mut out);
            black_box(out.len())
        });
    });
    group.bench_function(format!("simd_{}", setops::simd_level()), |bench| {
        let mut out = Vec::new();
        bench.iter(|| {
            setops::difference_into(black_box(&a), black_box(&b), &mut out);
            black_box(out.len())
        });
    });
    group.finish();
}

fn bench_union_difference(c: &mut Criterion) {
    let a = multiples(50_000, 2);
    let b = multiples(50_000, 3);
    c.bench_function("union/50k+50k", |bench| {
        let mut out = Vec::new();
        bench.iter(|| {
            setops::union_into(black_box(&a), black_box(&b), &mut out);
            black_box(out.len())
        });
    });
    c.bench_function("difference/50k-50k", |bench| {
        let mut out = Vec::new();
        bench.iter(|| {
            setops::difference_into(black_box(&a), black_box(&b), &mut out);
            black_box(out.len())
        });
    });
}

fn bench_multiway(c: &mut Criterion) {
    let lists: Vec<Vec<u32>> = (2..8u32).map(|k| multiples(20_000, k)).collect();
    c.bench_function("intersect_many/6-way", |bench| {
        bench.iter(|| {
            let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
            black_box(setops::intersect_many(refs).len())
        });
    });
    c.bench_function("union_many/6-way", |bench| {
        bench.iter(|| {
            let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
            black_box(setops::union_many(refs).len())
        });
    });

    // k-way tournament vs the old O(k·n) accumulating pairwise loop, on
    // many equal-sized lists (the shape of a hub anchor's posting union).
    let wide: Vec<Vec<u32>> = (0..16u32)
        .map(|k| (k..60_000).step_by(16).collect())
        .collect();
    let mut group = c.benchmark_group("union_many_16way");
    group.bench_function("tournament", |bench| {
        let mut out = Vec::new();
        let mut scratch = setops::MultiwayScratch::new();
        bench.iter(|| {
            let mut refs: Vec<&[u32]> = wide.iter().map(|l| l.as_slice()).collect();
            setops::union_many_into(&mut refs, &mut out, &mut scratch);
            black_box(out.len())
        });
    });
    group.bench_function("pairwise", |bench| {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        bench.iter(|| {
            let mut refs: Vec<&[u32]> = wide.iter().map(|l| l.as_slice()).collect();
            refs.sort_unstable_by_key(|s| s.len());
            setops::union_into(refs[0], refs[1], &mut out);
            for s in &refs[2..] {
                setops::union_into(&out, s, &mut scratch);
                std::mem::swap(&mut out, &mut scratch);
            }
            black_box(out.len())
        });
    });
    group.finish();
}

/// Allocation cost of the expansion task layout (DESIGN.md §6.2): per-task
/// boxed embeddings (the old layout) vs a recycled buffer pool vs the
/// inline fixed array, over a depth-4 embedding.
fn bench_task_alloc(c: &mut Criterion) {
    const DEPTH: usize = 4;
    let parent = [7u32, 11, 13, 17];
    let mut group = c.benchmark_group("expand_task_emb");

    group.bench_function("boxed_per_task", |bench| {
        bench.iter(|| {
            let mut next = Vec::with_capacity(DEPTH + 1);
            next.extend_from_slice(black_box(&parent));
            next.push(19);
            let boxed: Box<[u32]> = next.into_boxed_slice();
            black_box(boxed.len())
        });
    });
    group.bench_function("pooled_buffer", |bench| {
        let mut pool: Vec<Vec<u32>> = Vec::new();
        bench.iter(|| {
            let mut buf = pool.pop().unwrap_or_default();
            buf.clear();
            buf.extend_from_slice(black_box(&parent));
            buf.push(19);
            let len = buf.len();
            pool.push(buf);
            black_box(len)
        });
    });
    group.bench_function("inline_array", |bench| {
        bench.iter(|| {
            let mut emb = [0u32; 8];
            emb[..DEPTH].copy_from_slice(black_box(&parent));
            emb[DEPTH] = 19;
            black_box(emb[DEPTH] as usize + DEPTH + 1)
        });
    });
    group.finish();
}

/// Kernel-mode sanity for the JSON baseline: record that ForceScalar and
/// Auto agree on the measured shapes (cheap; the real guarantee is the
/// cross-check test suite).
fn bench_mode_agreement(c: &mut Criterion) {
    let a = multiples(100_000, 2);
    let b = multiples(100_000, 3);
    let mut auto_out = Vec::new();
    let mut scalar_out = Vec::new();
    setops::intersect_into(&a, &b, &mut auto_out);
    setops::set_kernel_mode(KernelMode::ForceScalar);
    setops::intersect_into(&a, &b, &mut scalar_out);
    setops::set_kernel_mode(KernelMode::Auto);
    assert_eq!(
        auto_out, scalar_out,
        "kernel families disagree on bench input"
    );
    c.bench_function("sanity/kernel_families_agree", |bench| {
        bench.iter(|| black_box(auto_out.len()));
    });
}

criterion_group!(
    benches,
    bench_intersections,
    bench_scalar_vs_simd,
    bench_union_difference,
    bench_multiway,
    bench_task_alloc,
    bench_mode_agreement
);
criterion_main!(benches);
