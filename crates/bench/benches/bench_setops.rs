//! Microbenchmarks of the sorted-set kernels behind candidate generation
//! (paper §V-B), including the merge-vs-gallop ablation: candidate
//! generation is posting-list intersection, and the adaptive kernel is a
//! design choice DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hgmatch_hypergraph::setops;
use std::hint::black_box;

fn evens(n: u32) -> Vec<u32> {
    (0..n).map(|i| i * 2).collect()
}

fn multiples(n: u32, k: u32) -> Vec<u32> {
    (0..n).map(|i| i * k).collect()
}

fn bench_intersections(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect");
    let large = evens(100_000);
    for small_len in [16u32, 256, 4_096, 65_536] {
        let small = multiples(small_len, 7);
        group.bench_with_input(
            BenchmarkId::new("adaptive", small_len),
            &small,
            |b, small| {
                let mut out = Vec::new();
                b.iter(|| {
                    setops::intersect_into(black_box(small), black_box(&large), &mut out);
                    black_box(out.len())
                });
            },
        );
    }
    group.finish();
}

fn bench_union_difference(c: &mut Criterion) {
    let a = multiples(50_000, 2);
    let b = multiples(50_000, 3);
    c.bench_function("union/50k+50k", |bench| {
        let mut out = Vec::new();
        bench.iter(|| {
            setops::union_into(black_box(&a), black_box(&b), &mut out);
            black_box(out.len())
        });
    });
    c.bench_function("difference/50k-50k", |bench| {
        let mut out = Vec::new();
        bench.iter(|| {
            setops::difference_into(black_box(&a), black_box(&b), &mut out);
            black_box(out.len())
        });
    });
}

fn bench_multiway(c: &mut Criterion) {
    let lists: Vec<Vec<u32>> = (2..8u32).map(|k| multiples(20_000, k)).collect();
    c.bench_function("intersect_many/6-way", |bench| {
        bench.iter(|| {
            let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
            black_box(setops::intersect_many(refs).len())
        });
    });
    c.bench_function("union_many/6-way", |bench| {
        bench.iter(|| {
            let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
            black_box(setops::union_many(refs).len())
        });
    });
}

criterion_group!(benches, bench_intersections, bench_union_difference, bench_multiway);
criterion_main!(benches);
