//! Ablations of HGMatch design choices (DESIGN.md §10):
//!
//! * eager non-incidence pruning (Observation V.3 applied in candidate
//!   generation) on/off;
//! * work stealing on/off;
//! * scan-chunk granularity;
//! * executor choice (sequential DFS vs task engine at one thread — the
//!   task abstraction's overhead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hgmatch_core::engine::ParallelEngine;
use hgmatch_core::exec::SequentialExecutor;
use hgmatch_core::{CountSink, MatchConfig, Matcher};
use hgmatch_datasets::{profile_by_name, sample_query, standard_settings};
use std::hint::black_box;
use std::time::Duration;

fn setup() -> (hgmatch_hypergraph::Hypergraph, hgmatch_core::Plan) {
    let data = profile_by_name("CP").expect("profile").generate();
    let matcher = Matcher::new(&data);
    let (query, _) = (0..10u64)
        .filter_map(|seed| sample_query(&data, &standard_settings()[2], seed))
        .map(|q| {
            let count = matcher.count(&q).unwrap_or(0);
            (q, count)
        })
        .max_by_key(|(_, c)| *c)
        .expect("query sampled");
    let plan = matcher.plan(&query).expect("plan");
    (data, plan)
}

fn bench_prune_non_incident(c: &mut Criterion) {
    let (data, plan) = setup();
    let mut group = c.benchmark_group("ablate_prune_non_incident");
    group.sample_size(10);
    for (label, enabled) in [("off(paper)", false), ("on", true)] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let config = MatchConfig::sequential().with_prune_non_incident(enabled);
            b.iter(|| {
                let sink = CountSink::new();
                SequentialExecutor::run(&plan, &data, &sink, &config);
                black_box(sink.count())
            });
        });
    }
    group.finish();
}

fn bench_stealing(c: &mut Criterion) {
    let (data, plan) = setup();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4);
    let mut group = c.benchmark_group("ablate_work_stealing");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    for (label, stealing) in [("nostl", false), ("stealing", true)] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let config = MatchConfig::parallel(threads).with_work_stealing(stealing);
            b.iter(|| {
                let sink = CountSink::new();
                ParallelEngine::run(&plan, &data, &sink, &config);
                black_box(sink.count())
            });
        });
    }
    group.finish();
}

fn bench_scan_chunk(c: &mut Criterion) {
    let (data, plan) = setup();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4);
    let mut group = c.benchmark_group("ablate_scan_chunk");
    group.sample_size(10);
    for chunk in [16usize, 256, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(chunk), &chunk, |b, &chunk| {
            let mut config = MatchConfig::parallel(threads);
            config.scan_chunk = chunk;
            b.iter(|| {
                let sink = CountSink::new();
                ParallelEngine::run(&plan, &data, &sink, &config);
                black_box(sink.count())
            });
        });
    }
    group.finish();
}

fn bench_engine_overhead(c: &mut Criterion) {
    let (data, plan) = setup();
    let mut group = c.benchmark_group("ablate_executor");
    group.sample_size(10);
    group.bench_function("sequential_dfs", |b| {
        let config = MatchConfig::sequential();
        b.iter(|| {
            let sink = CountSink::new();
            SequentialExecutor::run(&plan, &data, &sink, &config);
            black_box(sink.count())
        });
    });
    group.bench_function("task_engine_1thread", |b| {
        let config = MatchConfig::parallel(1);
        b.iter(|| {
            let sink = CountSink::new();
            ParallelEngine::run(&plan, &data, &sink, &config);
            black_box(sink.count())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_prune_non_incident,
    bench_stealing,
    bench_scan_chunk,
    bench_engine_overhead
);
criterion_main!(benches);
