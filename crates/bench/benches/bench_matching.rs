//! Fig. 8 microbenchmark: HGMatch versus the match-by-vertex baselines on
//! fixed queries over the contact datasets (small enough for statistically
//! meaningful criterion runs, large enough to show the ordering).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hgmatch_baselines::{run_baseline, BaselineAlgorithm};
use hgmatch_core::Matcher;
use hgmatch_datasets::{profile_by_name, sample_query, standard_settings};
use hgmatch_hypergraph::Hypergraph;
use std::hint::black_box;
use std::time::Duration;

fn fixed_query(data: &Hypergraph, setting_index: usize) -> Hypergraph {
    let setting = standard_settings()[setting_index];
    (0..50u64)
        .find_map(|seed| sample_query(data, &setting, seed))
        .expect("sampleable query")
}

fn bench_single_thread(c: &mut Criterion) {
    let data = profile_by_name("CH").expect("profile").generate();
    for (si, name) in [(0usize, "q2"), (1, "q3")] {
        let query = fixed_query(&data, si);
        let mut group = c.benchmark_group(format!("match_CH_{name}"));
        group.sample_size(10);
        group.measurement_time(Duration::from_secs(5));

        group.bench_function(BenchmarkId::from_parameter("HGMatch"), |b| {
            let matcher = Matcher::new(&data);
            b.iter(|| black_box(matcher.count(&query).unwrap()));
        });
        for alg in BaselineAlgorithm::all() {
            group.bench_function(BenchmarkId::from_parameter(alg.name()), |b| {
                b.iter(|| {
                    black_box(run_baseline(alg, &data, &query, Some(Duration::from_secs(10))).count)
                });
            });
        }
        group.finish();
    }
}

/// End-to-end kernel-family ablation: full HGMatch matching with the
/// set-op kernels in Auto (SIMD + bitmap) mode vs pinned to scalar.
fn bench_kernel_families_end_to_end(c: &mut Criterion) {
    use hgmatch_hypergraph::setops::{self, KernelMode};
    let data = profile_by_name("CH").expect("profile").generate();
    let query = fixed_query(&data, 1);
    let mut group = c.benchmark_group("match_CH_kernels");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    for (label, mode) in [
        ("auto", KernelMode::Auto),
        ("scalar", KernelMode::ForceScalar),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            setops::set_kernel_mode(mode);
            let matcher = Matcher::new(&data);
            b.iter(|| black_box(matcher.count(&query).unwrap()));
            setops::set_kernel_mode(KernelMode::Auto);
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_thread,
    bench_kernel_families_end_to_end
);
criterion_main!(benches);
