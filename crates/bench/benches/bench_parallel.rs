//! Fig. 10 microbenchmark: thread-count scaling of the task-based engine
//! on a heavy query over a hub-skewed dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hgmatch_core::engine::ParallelEngine;
use hgmatch_core::{CountSink, MatchConfig, Matcher};
use hgmatch_datasets::{profile_by_name, sample_query, standard_settings};
use std::hint::black_box;
use std::time::Duration;

fn bench_thread_scaling(c: &mut Criterion) {
    let data = profile_by_name("WT").expect("profile").generate();
    let matcher = Matcher::new(&data);
    // Heaviest q3 query among a few seeds.
    let (query, _) = (0..10u64)
        .filter_map(|seed| sample_query(&data, &standard_settings()[1], seed))
        .map(|q| {
            let count = matcher.count(&q).unwrap_or(0);
            (q, count)
        })
        .max_by_key(|(_, c)| *c)
        .expect("query sampled");
    let plan = matcher.plan(&query).expect("plan");

    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut group = c.benchmark_group("engine_threads");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    let mut threads = 1usize;
    while threads <= max_threads {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let config = MatchConfig::parallel(t);
            b.iter(|| {
                let sink = CountSink::new();
                ParallelEngine::run(&plan, &data, &sink, &config);
                black_box(sink.count())
            });
        });
        threads *= 2;
    }
    group.finish();
}

criterion_group!(benches, bench_thread_scaling);
criterion_main!(benches);
