//! §VII-D case study — question answering over a hypergraph knowledge
//! base (Fig. 13).
//!
//! Generates the JF17K-like knowledge base, runs the two example queries
//! ("players who represented different teams in different matches" and
//! "actors who played the same character in a TV show on different
//! seasons"), and prints counts plus a few named answers.
//!
//! Usage: `case_study [--answers N]`.

use hgmatch_core::Matcher;
use hgmatch_datasets::{KnowledgeBase, KnowledgeBaseConfig};
use hgmatch_hypergraph::{EdgeId, VertexId};

fn main() {
    let mut show = 5usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--answers" => {
                i += 1;
                show = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--answers N");
            }
            other => panic!("unknown flag {other:?}"),
        }
        i += 1;
    }

    let kb = KnowledgeBase::generate(&KnowledgeBaseConfig::default());
    let stats = kb.graph.stats();
    println!("# Case study: Q/A over a hypergraph knowledge base (JF17K-like)");
    println!(
        "# KB: {} entities, {} facts, {} types",
        stats.num_vertices, stats.num_edges, stats.num_labels
    );
    let matcher = Matcher::new(&kb.graph);

    for (title, query) in [
        (
            "Query 1: players who represented different teams in different matches",
            KnowledgeBase::query_multi_team_player(),
        ),
        (
            "Query 2: actors who played the same character in a TV show on different seasons",
            KnowledgeBase::query_recast_character(),
        ),
    ] {
        println!();
        println!("{title}");
        let embeddings = matcher.find_all(&query).expect("query valid");
        println!("embeddings found: {}", embeddings.len());
        for m in embeddings.iter().take(show) {
            let mut parts = Vec::new();
            for e in m.iter() {
                let fact: Vec<&str> = kb
                    .graph
                    .edge_vertices(EdgeId::new(e.raw()))
                    .iter()
                    .map(|&v| kb.names[VertexId::new(v).index()].as_str())
                    .collect();
                parts.push(format!("({})", fact.join(", ")));
            }
            println!("  {}", parts.join(" & "));
        }
        if embeddings.len() > show {
            println!("  … {} more", embeddings.len() - show);
        }
    }
    println!();
    println!("# Paper shape: both queries return non-trivial answer sets");
    println!("# (the paper found 111 and 76 on the real JF17K).");
}
