//! Adaptive mid-query re-optimization benchmark (DESIGN.md §15): what a
//! runtime-triggered suffix re-plan recovers when a plan's cardinality
//! estimates are badly stale, and what the feedback machinery costs when
//! they are accurate.
//!
//! Workloads:
//!
//! 1. `adversary` — the stale-statistics family: a chain-with-branch
//!    instance (A–B hub into `m` C vertices, each C fanning into `k` junk
//!    {C,D} rows, exactly one C carrying the selective {C,E} filter). The
//!    stale plan — compiled through a doctored cost model that believes
//!    the {B,C} hub is 1000× smaller, with the junk branch ordered before
//!    the filter — walks `m·k` partials into the junk. The adaptive run
//!    executes the *same stale plan*: the trigger fires at the {B,C}
//!    boundary (observed `m` vs an estimate below 1), the honest suffix
//!    re-search hoists the filter, and all but one junk expansion never
//!    happens. Recovery = static / adaptive wall-clock; the committed
//!    baseline asserts ≥ 10×.
//! 2. `well_estimated` — the regression guard: the planner's own honest
//!    plan on the same instance plus q2/q3 random-walk queries over a
//!    Table II profile, run with the trigger off (`ratio 0`) vs. on at the
//!    production default (`ratio 8`). Estimates are accurate, so the
//!    trigger never fires and the only cost is per-boundary observation
//!    bookkeeping; the committed baseline asserts ≤ 5% regression.
//!
//! Both arms of every pair run on the same parallel engine with the same
//! worker count — the comparison isolates the re-optimizer, not the
//! executor. Results print as TSV; `--json PATH` writes the committed
//! `BENCH_adaptive.json` baseline shape. `HGMATCH_BENCH_SMOKE=1` shrinks
//! everything for CI.
//!
//! Usage: `plan_adaptive [--timeout SECS] [--repeat N] [--threads N] [--json PATH]`.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use hgmatch_bench::experiments::bench_smoke;
use hgmatch_core::engine::ParallelEngine;
use hgmatch_core::{CostModel, CountSink, MatchConfig, Plan, Planner, QueryGraph};
use hgmatch_datasets::{profile_by_name, sample_query, standard_settings};
use hgmatch_hypergraph::{Hypergraph, HypergraphBuilder, Label};

/// The stale-statistics adversary: one {A,B} row, `m` {B,C} rows off the
/// B hub, `k` junk {C,D} rows per C vertex, and a single selective {C,E}
/// row on the first C. Labels A=0 B=1 C=2 D=3 E=4. The matching query is
/// the A–B–C chain plus both branches off C; its only embeddings go
/// through the filtered C, so a junk-first order does `m·k` wasted
/// validations where filter-first does `m + k`.
fn adversary(m: u32, k: u32) -> (Hypergraph, Hypergraph) {
    let mut b = HypergraphBuilder::new();
    let a = b.add_vertex(Label::new(0)).raw();
    let hub = b.add_vertex(Label::new(1)).raw();
    let c0 = hub + 1;
    for _ in 0..m {
        b.add_vertex(Label::new(2));
    }
    let e = b.add_vertex(Label::new(4)).raw();
    b.add_edge(vec![a, hub]).unwrap();
    for i in 0..m {
        b.add_edge(vec![hub, c0 + i]).unwrap();
    }
    for i in 0..m {
        for _ in 0..k {
            let d = b.add_vertex(Label::new(3)).raw();
            b.add_edge(vec![c0 + i, d]).unwrap();
        }
    }
    b.add_edge(vec![c0, e]).unwrap();
    let data = b.build().unwrap();

    let mut q = HypergraphBuilder::new();
    for &l in &[0u32, 1, 2, 3, 4] {
        q.add_vertex(Label::new(l));
    }
    q.add_edge(vec![0, 1]).unwrap(); // q0 {A,B}
    q.add_edge(vec![1, 2]).unwrap(); // q1 {B,C}
    q.add_edge(vec![2, 3]).unwrap(); // q2 {C,D} — the junk fan-out
    q.add_edge(vec![2, 4]).unwrap(); // q3 {C,E} — the filter
    (data, q.build().unwrap())
}

/// The stale plan: a cost model that believes the {B,C} hub is 1000×
/// smaller (so every runtime observation there blows past any trigger
/// ratio), compiled with the junk branch ordered before the filter — the
/// order a planner with those statistics could plausibly have kept.
fn stale_plan(q: &QueryGraph, data: &Hypergraph) -> Plan {
    let mut model = CostModel::new(q, data);
    model.scale_edge(1, 1.0 / 1000.0);
    Planner::plan_with_order_costed(q, data, vec![0, 1, 2, 3], &model).expect("valid order")
}

struct Measure {
    secs: f64,
    embeddings: u64,
    replans: u64,
    timed_out: bool,
}

/// Best-of-`repeat` run of `plan`; `ratio == 0` is the static arm (no
/// adaptive state at all), `ratio > 0` the adaptive arm. Both arms use
/// the identical parallel engine and worker count.
fn run(
    q: &QueryGraph,
    plan: &Arc<Plan>,
    data: &Hypergraph,
    threads: usize,
    ratio: f64,
    timeout: Duration,
    repeat: usize,
) -> Measure {
    let config = MatchConfig::parallel(threads)
        .with_timeout(timeout)
        .with_replan_ratio(ratio);
    let mut best: Option<Measure> = None;
    for _ in 0..repeat.max(1) {
        let sink = CountSink::new();
        let stats = if ratio > 0.0 {
            ParallelEngine::run_adaptive(q, plan, data, &sink, &config)
        } else {
            ParallelEngine::run(plan, data, &sink, &config)
        };
        let m = Measure {
            secs: stats.elapsed.as_secs_f64(),
            embeddings: stats.embeddings(),
            replans: stats.metrics.replans,
            timed_out: stats.timed_out,
        };
        if best
            .as_ref()
            .is_none_or(|b| (m.timed_out, m.secs) < (b.timed_out, b.secs))
        {
            best = Some(m);
        }
    }
    best.expect("at least one repeat ran")
}

struct Row {
    workload: &'static str,
    query: String,
    statics: Measure,
    adaptive: Measure,
}

impl Row {
    /// static / adaptive wall-clock: > 1 is time the re-plan won back,
    /// < 1 is overhead the feedback machinery cost.
    fn recovery(&self) -> f64 {
        self.statics.secs / self.adaptive.secs.max(1e-9)
    }
}

#[allow(clippy::too_many_arguments)]
fn measure(
    workload: &'static str,
    query: String,
    q: &QueryGraph,
    plan: Plan,
    data: &Hypergraph,
    threads: usize,
    timeout: Duration,
    repeat: usize,
) -> Row {
    let plan = Arc::new(plan);
    let statics = run(q, &plan, data, threads, 0.0, timeout, repeat);
    let adaptive = run(q, &plan, data, threads, 8.0, timeout, repeat);
    assert!(
        statics.timed_out || adaptive.timed_out || statics.embeddings == adaptive.embeddings,
        "{workload}/{query}: adaptive multiset diverged: {} vs {}",
        statics.embeddings,
        adaptive.embeddings
    );
    Row {
        workload,
        query,
        statics,
        adaptive,
    }
}

fn main() {
    let smoke = bench_smoke();
    let mut timeout = Duration::from_secs(if smoke { 5 } else { 30 });
    let mut repeat = if smoke { 2 } else { 5 };
    let mut threads = 4usize;
    let mut json_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--timeout" => {
                i += 1;
                let secs: f64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--timeout SECS");
                timeout = Duration::from_secs_f64(secs);
            }
            "--repeat" => {
                i += 1;
                repeat = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--repeat N");
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--threads N");
            }
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).expect("--json PATH").clone());
            }
            other => panic!("unknown flag {other:?}"),
        }
        i += 1;
    }

    let mut rows: Vec<Row> = Vec::new();

    // Workload 1: the stale-statistics adversary at two scales. The same
    // stale plan runs with the trigger off (walks the junk to completion)
    // and on (re-plans at the hub boundary, hoists the filter).
    let scales: &[(u32, u32)] = if smoke {
        &[(200, 40)]
    } else {
        &[(2_000, 200), (4_000, 400)]
    };
    for &(m, k) in scales {
        let (data, query) = adversary(m, k);
        let q = QueryGraph::new(&query).expect("valid query");
        let plan = stale_plan(&q, &data);
        let row = measure(
            "adversary",
            format!("branch-m{m}-k{k}"),
            &q,
            plan,
            &data,
            threads,
            timeout,
            repeat,
        );
        assert!(
            row.adaptive.replans >= 1,
            "the stale plan must adopt a re-plan (estimates are 1000x off)"
        );
        rows.push(row);
    }

    // Workload 2a: the planner's own (honest) plan on the same instances —
    // accurate estimates, so the ratio-8 trigger never fires. These runs
    // finish in tens of microseconds — the same order as per-run pool
    // spawn jitter — so best-of needs far more repeats than the
    // millisecond-scale adversary to measure a few percent reliably.
    let we_repeat = if smoke { repeat } else { repeat.max(25) };
    for &(m, k) in scales {
        let (data, query) = adversary(m, k);
        let q = QueryGraph::new(&query).expect("valid query");
        let plan = Planner::plan(&q, &data).expect("plans");
        rows.push(measure(
            "well_estimated",
            format!("branch-honest-m{m}-k{k}"),
            &q,
            plan,
            &data,
            threads,
            timeout,
            we_repeat,
        ));
    }

    // Workload 2b: q2/q3 random-walk queries over a Table II profile, the
    // figure benches' sampler — organic shapes with accurate estimates.
    let profile = profile_by_name("CH").expect("known profile");
    let data = profile.generate();
    let per_setting = if smoke { 1 } else { 2 };
    for setting in standard_settings().iter().take(2) {
        let mut found = 0;
        for seed in 0..32u64 {
            if found == per_setting {
                break;
            }
            let Some(query) = sample_query(&data, setting, 2000 + seed * 13) else {
                continue;
            };
            if query.num_edges() < 2 {
                continue; // single-edge plans have nothing to re-plan
            }
            let q = QueryGraph::new(&query).expect("valid query");
            let plan = Planner::plan(&q, &data).expect("plans");
            rows.push(measure(
                "well_estimated",
                format!("CH-{}-s{seed}", setting.name),
                &q,
                plan,
                &data,
                threads,
                timeout,
                we_repeat,
            ));
            found += 1;
        }
    }

    println!("# plan_adaptive: threads {threads}, timeout {timeout:?}, repeat {repeat}");
    println!("workload\tquery\tembeddings\tstatic_s\tadaptive_s\treplans\trecovery");
    let mut min_recovery = f64::INFINITY;
    let mut max_regression = 0.0f64;
    for row in &rows {
        let recovery = row.recovery();
        if row.workload == "adversary" {
            min_recovery = min_recovery.min(recovery);
        } else {
            // Overhead of the armed-but-idle trigger: adaptive / static.
            max_regression = max_regression.max(1.0 / recovery.max(1e-9) - 1.0);
        }
        println!(
            "{}\t{}\t{}\t{:.6}\t{:.6}\t{}\t{:.3}",
            row.workload,
            row.query,
            row.adaptive.embeddings,
            row.statics.secs,
            row.adaptive.secs,
            row.adaptive.replans,
            recovery,
        );
    }
    println!(
        "# adversary min recovery {min_recovery:.2}x; well-estimated max regression {:.1}%",
        max_regression * 100.0
    );

    if let Some(path) = json_path {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"threads\": {threads}, \"timeout_s\": {:.1}, \"repeat\": {repeat},",
            timeout.as_secs_f64()
        );
        let _ = writeln!(
            out,
            "  \"adversary_min_recovery\": {min_recovery:.3}, \"well_estimated_max_regression\": {max_regression:.4},"
        );
        out.push_str("  \"rows\": [\n");
        for (i, row) in rows.iter().enumerate() {
            let arm = |m: &Measure| {
                format!(
                    "{{\"secs\": {:.6}, \"embeddings\": {}, \"replans\": {}, \"timed_out\": {}}}",
                    m.secs, m.embeddings, m.replans, m.timed_out
                )
            };
            let _ = writeln!(
                out,
                "    {{\"workload\": \"{}\", \"query\": \"{}\", \"recovery\": {:.3}, \"static\": {}, \"adaptive\": {}}}{}",
                row.workload,
                row.query,
                row.recovery(),
                arm(&row.statics),
                arm(&row.adaptive),
                if i + 1 == rows.len() { "" } else { "," }
            );
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).expect("write json report");
        println!("# wrote {path}");
    }
}
