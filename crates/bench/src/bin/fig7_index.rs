//! Fig. 7 — index building time and size.
//!
//! For every dataset: the time of offline preprocessing (partitioning +
//! inverted-index construction) and the sizes of the hyperedge tables
//! ("graph size") and inverted indices ("index size").
//!
//! Usage: `fig7_index [profile…]` (default: all ten).

use hgmatch_bench::experiments::time_index_build;
use hgmatch_datasets::{all_profiles, profile_by_name};
use hgmatch_hypergraph::stats::human_bytes;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profiles = if args.is_empty() {
        all_profiles()
    } else {
        args.iter().filter_map(|n| profile_by_name(n)).collect()
    };

    println!("# Fig. 7: index building time and size");
    println!("dataset\tbuild_s\tgraph_size\tindex_size\tindex/graph");
    for profile in profiles {
        let h = profile.generate();
        let timing = time_index_build(&h);
        println!(
            "{}\t{:.4}\t{}\t{}\t{:.2}",
            profile.name,
            timing.build_seconds,
            human_bytes(timing.table_bytes),
            human_bytes(timing.index_bytes),
            timing.index_bytes as f64 / timing.table_bytes.max(1) as f64,
        );
    }
    println!();
    println!("# Paper shape: index builds are fast (seconds even at full AR");
    println!("# scale) and index size is comparable to the graph size.");
}
