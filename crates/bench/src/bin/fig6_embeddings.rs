//! Fig. 6 — distribution of embedding counts per query setting.
//!
//! For every dataset and query setting, samples the workload and reports
//! the box-plot statistics (min / p25 / median / p75 / max) of the number
//! of embeddings, as counted by HGMatch.
//!
//! Usage: `fig6_embeddings [--queries N] [--timeout SECS] [dataset…]`.

use hgmatch_bench::experiments::{num_cpus, selected_profiles, SweepParams};
use hgmatch_bench::harness::Workload;
use hgmatch_bench::report::percentile;
use hgmatch_core::{MatchConfig, Matcher};
use hgmatch_datasets::standard_settings;
use std::time::Duration;

fn main() {
    let mut queries = 10usize;
    let mut timeout = Duration::from_secs(5);
    let mut datasets: Vec<String> = Vec::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--queries" => {
                i += 1;
                queries = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--queries N");
            }
            "--timeout" => {
                i += 1;
                timeout = Duration::from_secs_f64(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--timeout SECS"),
                );
            }
            name => datasets.push(name.to_string()),
        }
        i += 1;
    }
    if datasets.is_empty() {
        datasets = SweepParams::default().datasets;
    }

    println!("# Fig. 6: number-of-embeddings distributions");
    println!("# Table III query settings: q2(2e,5-15v) q3(3e,10-20v) q4(4e,10-30v) q6(6e,15-35v)");
    println!("dataset\tsetting\tqueries\tmin\tp25\tmedian\tp75\tmax\ttimeouts");
    for profile in selected_profiles(&datasets) {
        let data = profile.generate();
        let matcher = Matcher::with_config(
            &data,
            MatchConfig::parallel(num_cpus()).with_timeout(timeout),
        );
        for setting in standard_settings() {
            let workload = Workload::sample(&data, setting, queries, 11);
            if workload.is_empty() {
                continue;
            }
            let mut counts: Vec<f64> = Vec::new();
            let mut timeouts = 0usize;
            for q in &workload.queries {
                match matcher.count_with_stats(q) {
                    Ok((count, stats)) => {
                        counts.push(count as f64);
                        if stats.timed_out {
                            timeouts += 1;
                        }
                    }
                    Err(_) => timeouts += 1,
                }
            }
            println!(
                "{}\t{}\t{}\t{:.0}\t{:.0}\t{:.0}\t{:.0}\t{:.0}\t{}",
                profile.name,
                setting.name,
                counts.len(),
                percentile(&counts, 0.0),
                percentile(&counts, 25.0),
                percentile(&counts, 50.0),
                percentile(&counts, 75.0),
                percentile(&counts, 100.0),
                timeouts,
            );
        }
    }
}
