//! Fig. 9 — pruning power of candidate generation and validation.
//!
//! For every dataset, sums over the whole query workload: the number of
//! candidates produced by Algorithm 4 ("Candidates"), the survivors of the
//! vertex-count check ("Filtered"), and the true embeddings
//! ("Embeddings"). The paper observes ≈97% of filtered results are true
//! positives.
//!
//! Usage: `fig9_filtering [--queries N] [--timeout SECS] [dataset…]`.

use hgmatch_bench::experiments::{selected_profiles, SweepParams};
use hgmatch_bench::harness::Workload;
use hgmatch_core::{MatchConfig, Matcher};
use hgmatch_datasets::standard_settings;
use std::time::Duration;

fn main() {
    let mut queries = 5usize;
    let mut timeout = Duration::from_secs(5);
    let mut datasets: Vec<String> = Vec::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--queries" => {
                i += 1;
                queries = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--queries N");
            }
            "--timeout" => {
                i += 1;
                timeout = Duration::from_secs_f64(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--timeout SECS"),
                );
            }
            name => datasets.push(name.to_string()),
        }
        i += 1;
    }
    if datasets.is_empty() {
        datasets = SweepParams::default().datasets;
    }

    println!("# Fig. 9: candidates filtering (sums over the q2-q6 workloads)");
    println!("dataset\tcandidates\tfiltered\tembeddings\tfiltered_precision");
    for profile in selected_profiles(&datasets) {
        let data = profile.generate();
        let matcher = Matcher::with_config(&data, MatchConfig::sequential().with_timeout(timeout));
        let mut candidates = 0u64;
        let mut filtered = 0u64;
        let mut embeddings = 0u64;
        for setting in standard_settings() {
            let workload = Workload::sample(&data, setting, queries, 23);
            for q in &workload.queries {
                if let Ok((_, stats)) = matcher.count_with_stats(q) {
                    candidates += stats.metrics.candidates;
                    filtered += stats.metrics.filtered;
                    embeddings += stats.metrics.embeddings;
                }
            }
        }
        println!(
            "{}\t{}\t{}\t{}\t{:.1}%",
            profile.name,
            candidates,
            filtered,
            embeddings,
            100.0 * embeddings as f64 / filtered.max(1) as f64,
        );
    }
    println!();
    println!("# Paper shape: Filtered ≈ Embeddings (≈97% true positives);");
    println!("# Candidates may exceed Filtered on low-label datasets.");
}
