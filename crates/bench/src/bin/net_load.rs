//! Open-loop load generation against the HTTP front door (DESIGN.md
//! §16): requests fire on a fixed arrival schedule regardless of how
//! fast the server answers, which is what exposes queueing collapse —
//! a closed-loop client would politely slow down with the server.
//!
//! Procedure:
//!
//! 1. **unloaded** — one closed-loop client measures the baseline p50
//!    latency of the workload;
//! 2. **capacity** — `threads` closed-loop clients estimate the
//!    saturated service rate (counting only admitted requests);
//! 3. **open-loop phases** — arrivals at 1×, 2× and 4× the estimated
//!    capacity. Per phase: p50/p99 of admitted (200) requests, shed
//!    rate (429s), and any other outcome (which must not happen).
//!
//! The committed `BENCH_net.json` baseline records the gate results the
//! issue demands: under 2× overload the server sheds via 429 rather
//! than queueing without bound, and the p99 of *admitted* queries stays
//! within 5× of the unloaded p50. `--check` turns the gates into hard
//! assertions (used by the CI net-stress job).
//!
//! Usage: `net_load [--dataset NAME] [--threads N] [--http-threads N]
//!                  [--queue-depth N] [--duration SECS] [--json PATH]
//!                  [--check]`.
//! `HGMATCH_BENCH_SMOKE=1` shrinks everything for the CI smoke job.

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hgmatch_bench::experiments::bench_smoke;
use hgmatch_bench::harness::Workload;
use hgmatch_bench::report::{median, percentile};
use hgmatch_core::ServeConfig;
use hgmatch_datasets::{profile_by_name, standard_settings};
use hgmatch_hypergraph::{EdgeId, Hypergraph};
use hgmatch_server::{FrontDoor, FrontDoorConfig};

/// Upper bound on the open-loop arrival rate: past this the generator's
/// own scheduling jitter (thread wakeups) dominates the measurement.
const MAX_RATE_QPS: f64 = 800.0;

/// Per-request engine budget, so one heavy sampled query cannot wedge a
/// worker for a whole phase.
const REQUEST_TIMEOUT_MS: u64 = 2000;

fn main() {
    let smoke = bench_smoke();
    let mut dataset = "SB".to_string();
    let mut threads = 2usize;
    let mut http_threads = 8usize;
    let mut queue_depth = 0usize; // 0 → 2 × threads
    let mut duration = Duration::from_secs_f64(if smoke { 1.0 } else { 3.0 });
    let mut json_path: Option<String> = None;
    let mut check = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dataset" => {
                i += 1;
                dataset = args.get(i).expect("--dataset NAME").clone();
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--threads N");
            }
            "--http-threads" => {
                i += 1;
                http_threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--http-threads N");
            }
            "--queue-depth" => {
                i += 1;
                queue_depth = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--queue-depth N");
            }
            "--duration" => {
                i += 1;
                duration = Duration::from_secs_f64(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--duration SECS"),
                );
            }
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).expect("--json PATH").clone());
            }
            "--check" => check = true,
            other => panic!("unknown flag {other:?}"),
        }
        i += 1;
    }
    let threads = threads.max(1);
    // Default queue depth = the worker count: admitted requests are the
    // ones executing, so their latency stays near the unloaded service
    // time and overload shows up as 429s, not queueing.
    let queue_depth = if queue_depth == 0 {
        threads
    } else {
        queue_depth
    };

    // Workload: q2/q3 random-walk queries serialised as /match bodies.
    let profile = profile_by_name(&dataset).expect("known dataset");
    let data = Arc::new(profile.generate());
    // SB q2 queries cost single-digit milliseconds each — heavy enough
    // that the engine, not HTTP parsing, is the bottleneck (otherwise
    // "2x capacity" would not overload anything), light enough that no
    // query hits its own timeout.
    let settings = standard_settings();
    let per_setting = if smoke { 8 } else { 16 };
    let workload = Workload::sample(&data, settings[0], per_setting, 17);
    let sampled: Vec<String> = workload.queries.iter().map(query_body).collect();
    assert!(!sampled.is_empty(), "workload sampling produced no queries");

    let door = FrontDoor::bind(
        Arc::clone(&data),
        FrontDoorConfig {
            http_threads,
            queue_depth,
            serve: ServeConfig::default().with_threads(threads),
            ..FrontDoorConfig::default()
        },
    )
    .expect("bind front door");
    let addr = door.local_addr();

    // Per-body calibration: cost each sampled query solo, then keep the
    // tightest-spread third of the bodies. The p99 gate compares loaded
    // latency against 5x the unloaded p50, so a workload whose own solo
    // costs span 5x would fail before any queueing happened; the
    // calibration pass also warms the plan cache so phase A measures
    // steady-state latency.
    let reps = if smoke { 3 } else { 5 };
    let mut cal = Client::new(addr, false);
    let mut costed: Vec<(f64, String)> = sampled
        .into_iter()
        .map(|body| {
            let mut lats = Vec::with_capacity(reps);
            for _ in 0..reps {
                let (status, lat) = cal.request(&body).expect("calibration request failed");
                assert_eq!(status, 200, "calibration request must be admitted");
                lats.push(lat);
            }
            (median(&lats), body)
        })
        .collect();
    costed.sort_by(|a, b| a.0.total_cmp(&b.0));
    let width = costed.len().div_ceil(3).max(2).min(costed.len());
    let mut lo = 0;
    for start in 0..=costed.len() - width {
        if costed[start + width - 1].0 / costed[start].0 < costed[lo + width - 1].0 / costed[lo].0 {
            lo = start;
        }
    }
    let hi = lo + width;
    let bodies: Vec<String> = costed[lo..hi].iter().map(|(_, b)| b.clone()).collect();
    println!(
        "# net_load: {} of {} bodies kept ({:.3}..{:.3} ms solo) on {}, {} engine threads, {} http threads, queue depth {}",
        bodies.len(),
        costed.len(),
        costed[lo].0 * 1e3,
        costed[hi - 1].0 * 1e3,
        profile.name,
        threads,
        http_threads,
        queue_depth
    );

    // Phase A: unloaded p50 (one closed-loop client).
    let cal_requests = if smoke { 20 } else { 60 };
    let unloaded = closed_loop(addr, &bodies, 1, cal_requests);
    let unloaded_p50 = median(&unloaded.ok_latencies);
    assert!(
        unloaded.errors == 0 && unloaded.other == 0,
        "unloaded phase must be clean: {unloaded:?}"
    );

    // Phase B: capacity estimate (threads closed-loop clients, counting
    // only admitted requests).
    let capacity_run = closed_loop(addr, &bodies, threads, cal_requests * threads);
    let capacity = (capacity_run.ok_latencies.len() as f64 / capacity_run.wall.as_secs_f64())
        .min(MAX_RATE_QPS);
    println!(
        "# unloaded p50 {:.3} ms, estimated capacity {:.1} q/s",
        unloaded_p50 * 1e3,
        capacity
    );

    // Open-loop phases: 1×, 2×, 4× the estimated capacity.
    let client_pool = if smoke { 8 } else { 24 };
    let mut phases = Vec::new();
    for mult in [1.0f64, 2.0, 4.0] {
        let rate = (capacity * mult).min(MAX_RATE_QPS * mult);
        let total = ((rate * duration.as_secs_f64()).ceil() as usize).max(client_pool);
        let result = open_loop(addr, &bodies, rate, total, client_pool);
        println!(
            "{}x\trate={:.1}/s\tsent={}\tok={}\tshed={}\tother={}\terrors={}\tp50={:.3}ms\tp99={:.3}ms\tshed_rate={:.3}",
            mult,
            rate,
            result.sent,
            result.ok_latencies.len(),
            result.shed,
            result.other,
            result.errors,
            median(&result.ok_latencies) * 1e3,
            percentile(&result.ok_latencies, 99.0) * 1e3,
            result.shed as f64 / result.sent.max(1) as f64,
        );
        phases.push((mult, rate, result));
    }

    let stats = door.shutdown();
    assert_eq!(stats.active, 0, "drain left queries active");
    println!(
        "# drained: {} admitted, queue-wait {:.3}s vs execution {:.3}s total",
        stats.admitted,
        stats.queue_wait_total.as_secs_f64(),
        stats.execution_total.as_secs_f64()
    );

    // Gates (ISSUE 8 acceptance criteria).
    let all_answered = phases
        .iter()
        .all(|(_, _, r)| r.errors == 0 && r.other == 0 && r.ok_latencies.len() + r.shed == r.sent);
    let sheds_at_2x = phases[1].2.shed > 0;
    let p99_2x = percentile(&phases[1].2.ok_latencies, 99.0);
    let p99_bounded = p99_2x <= 5.0 * unloaded_p50;
    println!(
        "# gates: all_answered={all_answered} sheds_at_2x={sheds_at_2x} p99_2x={:.3}ms vs 5x_unloaded_p50={:.3}ms -> bounded={p99_bounded}",
        p99_2x * 1e3,
        5.0 * unloaded_p50 * 1e3
    );

    if let Some(path) = &json_path {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"dataset\": \"{}\", \"threads\": {threads}, \"http_threads\": {http_threads}, \"queue_depth\": {queue_depth},",
            profile.name
        );
        let _ = writeln!(
            out,
            "  \"unloaded_p50_ms\": {:.3}, \"capacity_qps\": {:.1},",
            unloaded_p50 * 1e3,
            capacity
        );
        out.push_str("  \"phases\": [\n");
        for (i, (mult, rate, r)) in phases.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"overload\": {mult}, \"target_qps\": {rate:.1}, \"sent\": {}, \"ok\": {}, \"shed\": {}, \"other\": {}, \"errors\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"shed_rate\": {:.3}}}{}",
                r.sent,
                r.ok_latencies.len(),
                r.shed,
                r.other,
                r.errors,
                median(&r.ok_latencies) * 1e3,
                percentile(&r.ok_latencies, 99.0) * 1e3,
                r.shed as f64 / r.sent.max(1) as f64,
                if i + 1 < phases.len() { "," } else { "" }
            );
        }
        out.push_str("  ],\n");
        let _ = writeln!(
            out,
            "  \"gates\": {{\"all_answered\": {all_answered}, \"sheds_at_2x\": {sheds_at_2x}, \"p99_within_5x_unloaded_p50\": {p99_bounded}}}"
        );
        out.push_str("}\n");
        std::fs::write(path, out).expect("write json report");
        println!("# wrote {path}");
    }

    if check {
        assert!(all_answered, "every request must be answered 200 or 429");
        assert!(sheds_at_2x, "2x overload must shed with 429");
        assert!(
            p99_bounded,
            "p99 of admitted queries ({:.3}ms) exceeded 5x unloaded p50 ({:.3}ms)",
            p99_2x * 1e3,
            5.0 * unloaded_p50 * 1e3
        );
        println!("# check passed");
    }
}

/// Serialises a sampled query hypergraph as a `/match` request body.
fn query_body(q: &Hypergraph) -> String {
    let mut body = String::from("{\"labels\":[");
    for (i, l) in q.labels().iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&l.raw().to_string());
    }
    body.push_str("],\"edges\":[");
    for e in 0..q.num_edges() {
        if e > 0 {
            body.push(',');
        }
        body.push('[');
        for (j, v) in q.edge_vertices(EdgeId::from_index(e)).iter().enumerate() {
            if j > 0 {
                body.push(',');
            }
            body.push_str(&v.to_string());
        }
        body.push(']');
    }
    let _ = write!(body, "],\"timeout_ms\":{REQUEST_TIMEOUT_MS}}}");
    body
}

/// A front-door HTTP client: keep-alive (calibration) or one connection
/// per request (open-loop, so a finite client pool cannot pin handlers).
struct Client {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    oneshot: bool,
}

impl Client {
    fn new(addr: SocketAddr, oneshot: bool) -> Self {
        Client {
            addr,
            stream: None,
            oneshot,
        }
    }

    /// Sends one `/match` request; returns the status code and latency.
    fn request(&mut self, body: &str) -> Result<(u16, f64), ()> {
        for attempt in 0..2 {
            if self.stream.is_none() {
                let stream = TcpStream::connect(self.addr).map_err(|_| ())?;
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .map_err(|_| ())?;
                let _ = stream.set_nodelay(true);
                self.stream = Some(stream);
            }
            let stream = self.stream.as_mut().unwrap();
            let begin = Instant::now();
            let connection = if self.oneshot { "close" } else { "keep-alive" };
            let req = format!(
                "POST /match HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
                body.len()
            );
            if stream.write_all(req.as_bytes()).is_err() {
                self.stream = None;
                if attempt == 0 {
                    continue;
                }
                return Err(());
            }
            match read_status(stream) {
                Ok((status, close)) => {
                    if close || self.oneshot {
                        self.stream = None;
                    }
                    return Ok((status, begin.elapsed().as_secs_f64()));
                }
                Err(()) => {
                    self.stream = None;
                    if attempt == 0 {
                        continue;
                    }
                    return Err(());
                }
            }
        }
        Err(())
    }
}

/// Reads one response, returning (status, connection-closed).
fn read_status(stream: &mut TcpStream) -> Result<(u16, bool), ()> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(()),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return Err(()),
        }
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| ())?;
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or(())?;
    let mut len = 0usize;
    let mut close = false;
    for line in head.split("\r\n").skip(1) {
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                len = v.trim().parse().map_err(|_| ())?;
            } else if k.trim().eq_ignore_ascii_case("connection") {
                close = v.trim().eq_ignore_ascii_case("close");
            }
        }
    }
    let total = head_end + 4 + len;
    while buf.len() < total {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(()),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return Err(()),
        }
    }
    Ok((status, close))
}

/// Aggregate of one generation phase.
#[derive(Debug, Default)]
struct PhaseResult {
    sent: usize,
    /// Latencies of admitted (200) requests, seconds.
    ok_latencies: Vec<f64>,
    /// 429 responses.
    shed: usize,
    /// Any other status (gate: must stay 0).
    other: usize,
    /// Requests with no parseable response (gate: must stay 0).
    errors: usize,
    wall: Duration,
}

impl PhaseResult {
    fn absorb(&mut self, status: Result<(u16, f64), ()>) {
        self.sent += 1;
        match status {
            Ok((200, lat)) => self.ok_latencies.push(lat),
            Ok((429, _)) => self.shed += 1,
            Ok(_) => self.other += 1,
            Err(()) => self.errors += 1,
        }
    }
}

/// Closed-loop: `clients` threads send back-to-back until `total`
/// requests have gone out.
fn closed_loop(addr: SocketAddr, bodies: &[String], clients: usize, total: usize) -> PhaseResult {
    let next = AtomicUsize::new(0);
    let begin = Instant::now();
    let results: Vec<PhaseResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut client = Client::new(addr, false);
                    let mut local = PhaseResult::default();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= total {
                            break;
                        }
                        local.absorb(client.request(&bodies[k % bodies.len()]));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    merge(results, begin.elapsed())
}

/// Open-loop: request `k` fires at `begin + k/rate` regardless of
/// completions; a pool of client threads executes the schedule.
fn open_loop(
    addr: SocketAddr,
    bodies: &[String],
    rate: f64,
    total: usize,
    clients: usize,
) -> PhaseResult {
    let next = AtomicUsize::new(0);
    let begin = Instant::now();
    let results: Vec<PhaseResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut client = Client::new(addr, true);
                    let mut local = PhaseResult::default();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= total {
                            break;
                        }
                        let fire_at = begin + Duration::from_secs_f64(k as f64 / rate);
                        if let Some(wait) = fire_at.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        local.absorb(client.request(&bodies[k % bodies.len()]));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    merge(results, begin.elapsed())
}

fn merge(parts: Vec<PhaseResult>, wall: Duration) -> PhaseResult {
    let mut out = PhaseResult {
        wall,
        ..PhaseResult::default()
    };
    for p in parts {
        out.sent += p.sent;
        out.ok_latencies.extend(p.ok_latencies);
        out.shed += p.shed;
        out.other += p.other;
        out.errors += p.errors;
    }
    out
}
