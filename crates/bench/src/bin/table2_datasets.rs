//! Table II — dataset statistics.
//!
//! Generates every dataset profile and prints the paper's Table II columns
//! (`|V|`, `|E|`, `|Σ|`, `a_max`, `a`, index size) for the synthetic
//! analogues.
//!
//! Usage: `table2_datasets [profile…]` (default: all ten).

use hgmatch_datasets::{all_profiles, profile_by_name};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profiles = if args.is_empty() {
        all_profiles()
    } else {
        args.iter().filter_map(|n| profile_by_name(n)).collect()
    };

    println!("# Table II: dataset statistics (synthetic analogues)");
    println!("dataset\t|V|\t|E|\t|Sigma|\tamax\ta\tgraph\tindex\tscale");
    for profile in profiles {
        let h = profile.generate();
        let stats = h.stats();
        println!(
            "{}\t{}",
            stats.table_row(profile.name),
            format_scale(profile.scale)
        );
    }
}

fn format_scale(scale: f64) -> String {
    if (scale - 1.0).abs() < 1e-12 {
        "1".to_string()
    } else {
        format!("1/{:.0}", 1.0 / scale)
    }
}
