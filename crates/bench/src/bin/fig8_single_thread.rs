//! Fig. 8 — single-thread comparison of HGMatch against CFL-H, DAF-H,
//! CECI-H and RapidMatch, plus the Table IV completion ratios (the two
//! artefacts come from the same sweep in the paper too).
//!
//! Usage: `fig8_single_thread [--timeout SECS] [--queries N] [dataset…]`
//! Defaults: 2 s timeout, 3 queries per setting, all datasets except AR-S
//! (the paper also reserves AR for the parallel experiments).

use hgmatch_bench::experiments::{single_thread_sweep, SweepParams};
use std::time::Duration;

fn main() {
    let mut params = SweepParams::default();
    let mut datasets: Vec<String> = Vec::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--timeout" => {
                i += 1;
                params.timeout = Duration::from_secs_f64(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--timeout SECS"),
                );
            }
            "--queries" => {
                i += 1;
                params.queries_per_setting = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--queries N");
            }
            name => datasets.push(name.to_string()),
        }
        i += 1;
    }
    if !datasets.is_empty() {
        params.datasets = datasets;
    }

    println!("# Fig. 8: single-thread comparison");
    println!(
        "# timeout = {:?}, {} queries per (dataset, setting)",
        params.timeout, params.queries_per_setting
    );
    println!("dataset\tsetting\talgorithm\tgeomean_s\tcompleted/total");
    let result = single_thread_sweep(&params, |cell| {
        println!(
            "{}\t{}\t{}\t{:.6}\t{}/{}",
            cell.dataset,
            cell.setting,
            cell.algorithm,
            cell.mean_seconds,
            cell.completed,
            cell.total
        );
    });

    println!();
    println!("# Table IV: query completion ratio (single-thread)");
    println!("algorithm\tcompleted\ttotal\tratio");
    for (algorithm, (completed, total)) in result.completion_ratios() {
        println!(
            "{algorithm}\t{completed}\t{total}\t{:.1}%",
            100.0 * completed as f64 / total.max(1) as f64
        );
    }

    println!();
    println!("# Average speedup of HGMatch (geometric mean across cells):");
    for algorithm in ["CFL-H", "DAF-H", "CECI-H", "RapidMatch"] {
        println!("vs {algorithm}: {:.1}x", result.speedup_over(algorithm));
    }
}
