//! Fig. 12 — dynamic work stealing versus static first-level partitioning
//! (HGMatch-NOSTL): per-worker busy time on a heavy q3 query.
//!
//! With stealing, all workers' busy times should cluster tightly around
//! the average (near-perfect balance); without, the skewed embedding
//! counts of power-law data leave some workers idle while stragglers run.
//!
//! Usage: `fig12_stealing [--dataset NAME] [--threads N] [--timeout SECS]
//!                        [--candidates N]`.

use hgmatch_bench::experiments::{heaviest_queries, num_cpus};
use hgmatch_bench::harness::Workload;
use hgmatch_core::engine::ParallelEngine;
use hgmatch_core::{CountSink, MatchConfig, Matcher};
use hgmatch_datasets::{profile_by_name, standard_settings};
use std::time::Duration;

fn main() {
    let mut dataset = "AR-S".to_string();
    let mut threads = num_cpus().min(8);
    let mut timeout = Duration::from_secs(60);
    let mut candidates = 10usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dataset" => {
                i += 1;
                dataset = args.get(i).expect("--dataset NAME").clone();
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--threads N");
            }
            "--timeout" => {
                i += 1;
                timeout = Duration::from_secs_f64(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--timeout SECS"),
                );
            }
            "--candidates" => {
                i += 1;
                candidates = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--candidates N");
            }
            other => panic!("unknown flag {other:?}"),
        }
        i += 1;
    }

    let profile = profile_by_name(&dataset).expect("known dataset");
    let data = profile.generate();
    let q3 = standard_settings()[1];
    let workload = Workload::sample(&data, q3, candidates, 31);
    let heavy = heaviest_queries(&data, &workload, 1, Duration::from_secs(10));
    let (query, count) = heavy.first().expect("a query");

    println!(
        "# Fig. 12: work stealing vs NOSTL, {} threads, {} (query with {} embeddings)",
        threads, profile.name, count
    );

    let matcher = Matcher::new(&data);
    let plan = matcher.plan(query).expect("plan");

    for (label, stealing) in [("HGMatch-NOSTL", false), ("HGMatch", true)] {
        let config = MatchConfig::parallel(threads)
            .with_timeout(timeout)
            .with_work_stealing(stealing);
        let sink = CountSink::new();
        let stats = ParallelEngine::run(&plan, &data, &sink, &config);
        let mut busy: Vec<f64> = stats.workers.iter().map(|w| w.busy.as_secs_f64()).collect();
        busy.sort_by(f64::total_cmp);
        let avg: f64 = busy.iter().sum::<f64>() / busy.len() as f64;
        let steals: u64 = stats.workers.iter().map(|w| w.steals).sum();
        println!();
        println!(
            "{label}: wall={:.3}s, avg_busy={avg:.3}s, steals={steals}",
            stats.elapsed.as_secs_f64()
        );
        println!("worker\tbusy_s\tbusy/avg");
        for (w, b) in busy.iter().enumerate() {
            println!("{}\t{:.3}\t{:.2}", w + 1, b, b / avg.max(1e-12));
        }
        let imbalance = busy.last().unwrap() / busy.first().unwrap().max(1e-9);
        println!("max/min busy ratio: {imbalance:.2}");
    }
    println!();
    println!("# Paper shape: with stealing all workers sit at the average;");
    println!("# NOSTL shows a visible spread (especially the last worker).");
}
