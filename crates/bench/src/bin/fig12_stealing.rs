//! Fig. 12 — dynamic load balancing, now measured on the serving layer:
//! the work-assisting scheduler (DESIGN.md §12) versus deque stealing
//! versus pinned round-robin pickup.
//!
//! Two experiments over one dataset, written to `BENCH_stealing.json`:
//!
//! 1. **single_query** — one heavy q3 query on a [`MatchServer`] pool,
//!    swept over worker counts, per scheduler mode:
//!    * `round_robin` — work stealing off: a query runs entirely on the
//!      worker that claimed its seed (the pre-ISSUE-4 intra-query
//!      behaviour, and the paper's NOSTL shape). Its busy time stays on
//!      one worker however large the pool — the flat line.
//!    * `steal` — per-worker LIFO deques with FIFO batch stealing, no
//!      mid-flight splitting (split threshold 0).
//!    * `assist` — stealing plus splittable candidate ranges: a hot
//!      expansion's validation loop is joined mid-flight by idle peers.
//!
//!    The scaling signal is the per-worker busy spread:
//!    `parallelism = Σ busy / max busy` (≈ pool size when the query's
//!    work spreads; ≈ 1 when one worker carries it), which equals the
//!    achievable wall-clock speedup on a machine with that many cores.
//!    Wall-clock is also recorded — on a box with fewer cores than
//!    workers (`host_cpus` in the report) it stays flat by construction.
//!
//! 2. **mixed_batch** — a q2/q3 batch submitted at once at the largest
//!    pool size, per mode: throughput must not regress versus
//!    round-robin pickup (inter-query parallelism already saturates the
//!    pool; assisting must not get in its way).
//!
//! All modes must agree on embedding counts (asserted).
//!
//! Usage: `fig12_stealing [--dataset NAME] [--workers LIST] [--queries N]
//!                        [--candidates N] [--timeout SECS]
//!                        [--split-threshold N] [--json PATH]`.
//! `HGMATCH_BENCH_SMOKE=1` shrinks every knob for the CI bench-smoke job.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hgmatch_bench::experiments::{bench_smoke, heaviest_queries, num_cpus};
use hgmatch_bench::harness::Workload;
use hgmatch_core::serve::{MatchServer, QueryOptions, QueryStatus, ServeConfig};
use hgmatch_core::MatchConfig;
use hgmatch_datasets::{profile_by_name, standard_settings};
use hgmatch_hypergraph::Hypergraph;

/// One scheduler mode of the sweep.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    RoundRobin,
    Steal,
    Assist,
}

impl Mode {
    const ALL: [Mode; 3] = [Mode::RoundRobin, Mode::Steal, Mode::Assist];

    fn name(self) -> &'static str {
        match self {
            Mode::RoundRobin => "round_robin",
            Mode::Steal => "steal",
            Mode::Assist => "assist",
        }
    }

    fn config(self, workers: usize, split_threshold: usize) -> ServeConfig {
        let mut mc = MatchConfig::parallel(workers);
        match self {
            Mode::RoundRobin => {
                mc.work_stealing = false;
                mc.split_threshold = 0;
            }
            Mode::Steal => {
                mc.work_stealing = true;
                mc.split_threshold = 0;
            }
            Mode::Assist => {
                mc.work_stealing = true;
                mc.split_threshold = split_threshold;
            }
        }
        ServeConfig {
            threads: workers,
            match_config: mc,
            ..ServeConfig::default()
        }
    }
}

struct SinglePoint {
    workers: usize,
    wall: Duration,
    sum_busy: Duration,
    max_busy: Duration,
    tasks: u64,
    steals: u64,
    splits: u64,
    assists: u64,
    embeddings: u64,
}

impl SinglePoint {
    fn parallelism(&self) -> f64 {
        self.sum_busy.as_secs_f64() / self.max_busy.as_secs_f64().max(1e-9)
    }
}

struct BatchPoint {
    wall: Duration,
    embeddings: u64,
    queries: usize,
}

fn main() {
    let smoke = bench_smoke();
    // SB's strong hubs make the q3 sample genuinely heavy (tens of millions
    // of embeddings, fat per-expansion candidate lists) — the workload the
    // scheduler sweep exists to expose.
    let mut dataset = if smoke { "CH" } else { "SB" }.to_string();
    let mut workers: Vec<usize> = if smoke {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8]
    };
    let mut per_setting = if smoke { 4 } else { 10 };
    let mut candidates = if smoke { 4 } else { 6 };
    let mut timeout = Duration::from_secs(if smoke { 10 } else { 60 });
    // Low enough that the heavy query's hot expansions actually split on
    // generated data (the production default of 2048 targets real hubs).
    let mut split_threshold = if smoke { 64 } else { 512 };
    let mut json_path: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dataset" => {
                i += 1;
                dataset = args.get(i).expect("--dataset NAME").clone();
            }
            "--workers" => {
                i += 1;
                workers = args
                    .get(i)
                    .expect("--workers LIST")
                    .split(',')
                    .map(|s| s.parse().expect("worker count"))
                    .collect();
            }
            "--queries" => {
                i += 1;
                per_setting = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--queries N");
            }
            "--candidates" => {
                i += 1;
                candidates = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--candidates N");
            }
            "--timeout" => {
                i += 1;
                timeout = Duration::from_secs_f64(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--timeout SECS"),
                );
            }
            "--split-threshold" => {
                i += 1;
                split_threshold = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--split-threshold N");
            }
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).expect("--json PATH").clone());
            }
            other => panic!("unknown flag {other:?}"),
        }
        i += 1;
    }
    assert!(!workers.is_empty(), "--workers needs at least one count");

    let profile = profile_by_name(&dataset).expect("known dataset");
    let data = Arc::new(profile.generate());
    let settings = standard_settings();

    // The single big query: heaviest of a q3 sample.
    let q3 = Workload::sample(&data, settings[1], candidates, 31);
    let heavy = heaviest_queries(&data, &q3, 1, timeout);
    let (big_query, big_count) = heavy.first().expect("a heavy query");
    println!(
        "# fig12_stealing: scheduler sweep on {}, heavy q3 query with {} embeddings, host_cpus={}",
        profile.name,
        big_count,
        num_cpus()
    );

    // Experiment 1: the single big query across pool sizes, per mode. The
    // cross-check reference is the first completed run — the selection pass
    // above only orders candidates, and its count may be partial if it hit
    // the timeout.
    let mut single: Vec<(Mode, Vec<SinglePoint>)> = Vec::new();
    let mut reference: Option<u64> = None;
    println!("mode\tworkers\twall_s\tmax_busy_s\tparallelism\ttasks\tsteals\tsplits\tassists");
    for mode in Mode::ALL {
        let mut points = Vec::new();
        for &w in &workers {
            let point = run_single(&data, big_query, mode, w, split_threshold, timeout);
            let expect = *reference.get_or_insert(point.embeddings);
            assert_eq!(
                point.embeddings,
                expect,
                "{} at {w} workers disagrees on the count",
                mode.name()
            );
            println!(
                "{}\t{}\t{:.4}\t{:.4}\t{:.2}\t{}\t{}\t{}\t{}",
                mode.name(),
                w,
                point.wall.as_secs_f64(),
                point.max_busy.as_secs_f64(),
                point.parallelism(),
                point.tasks,
                point.steals,
                point.splits,
                point.assists
            );
            points.push(point);
        }
        single.push((mode, points));
    }

    // Experiment 2: mixed q2/q3 batch at the largest pool size, per mode.
    let q2 = Workload::sample(&data, settings[0], per_setting, 17);
    let q3b = Workload::sample(&data, settings[1], per_setting, 59);
    let mut batch_queries: Vec<Hypergraph> = Vec::new();
    for (a, b) in q2.queries.iter().zip(q3b.queries.iter()) {
        batch_queries.push(a.clone());
        batch_queries.push(b.clone());
    }
    let batch_workers = *workers.iter().max().expect("non-empty");
    let mut batch: Vec<(Mode, BatchPoint)> = Vec::new();
    println!("mode\tbatch_queries\twall_s\tqueries_per_s");
    for mode in Mode::ALL {
        let point = run_batch(
            &data,
            &batch_queries,
            mode,
            batch_workers,
            split_threshold,
            timeout,
        );
        println!(
            "{}\t{}\t{:.4}\t{:.2}",
            mode.name(),
            point.queries,
            point.wall.as_secs_f64(),
            point.queries as f64 / point.wall.as_secs_f64().max(1e-9)
        );
        batch.push((mode, point));
    }
    let base = batch[0].1.embeddings;
    for (mode, point) in &batch {
        assert_eq!(
            point.embeddings,
            base,
            "{} disagrees on the batch count",
            mode.name()
        );
    }

    println!("# parallelism = sum(worker busy)/max(worker busy): the achievable");
    println!("# speedup with that many cores. round_robin stays ~1 on a single");
    println!("# query; steal/assist track the pool size.");

    if let Some(path) = json_path {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"dataset\": \"{}\", \"host_cpus\": {}, \"split_threshold\": {}, \"timeout_s\": {},",
            profile.name,
            num_cpus(),
            split_threshold,
            timeout.as_secs()
        );
        // Always set: every mode × worker run above asserted Completed.
        // (The selection-pass `big_count` may be partial under timeout, so
        // it must never land in the report.)
        let single_count = reference.expect("at least one completed run");
        let _ = writeln!(
            out,
            "  \"single_query\": {{\"embeddings\": {single_count}, \"modes\": {{"
        );
        for (mi, (mode, points)) in single.iter().enumerate() {
            let _ = writeln!(out, "    \"{}\": [", mode.name());
            for (pi, p) in points.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "      {{\"workers\": {}, \"wall_s\": {:.4}, \"max_busy_s\": {:.4}, \"sum_busy_s\": {:.4}, \"parallelism\": {:.2}, \"tasks\": {}, \"steals\": {}, \"splits\": {}, \"assists\": {}}}{}",
                    p.workers,
                    p.wall.as_secs_f64(),
                    p.max_busy.as_secs_f64(),
                    p.sum_busy.as_secs_f64(),
                    p.parallelism(),
                    p.tasks,
                    p.steals,
                    p.splits,
                    p.assists,
                    if pi + 1 < points.len() { "," } else { "" }
                );
            }
            let _ = writeln!(out, "    ]{}", if mi + 1 < single.len() { "," } else { "" });
        }
        out.push_str("  }},\n");
        let _ = writeln!(
            out,
            "  \"mixed_batch\": {{\"queries\": {}, \"workers\": {}, \"modes\": {{",
            batch_queries.len(),
            batch_workers
        );
        for (mi, (mode, p)) in batch.iter().enumerate() {
            let _ = writeln!(
                out,
                "    \"{}\": {{\"wall_s\": {:.4}, \"queries_per_s\": {:.2}, \"embeddings\": {}}}{}",
                mode.name(),
                p.wall.as_secs_f64(),
                p.queries as f64 / p.wall.as_secs_f64().max(1e-9),
                p.embeddings,
                if mi + 1 < batch.len() { "," } else { "" }
            );
        }
        out.push_str("  }}\n}\n");
        std::fs::write(&path, out).expect("write json report");
        println!("# wrote {path}");
    }
}

/// One heavy query alone on a fresh pool; returns wall, busy spread and
/// scheduler counters.
fn run_single(
    data: &Arc<Hypergraph>,
    query: &Hypergraph,
    mode: Mode,
    workers: usize,
    split_threshold: usize,
    timeout: Duration,
) -> SinglePoint {
    let server = MatchServer::new(Arc::clone(data), mode.config(workers, split_threshold));
    let begin = Instant::now();
    let outcome = server
        .run(query, QueryOptions::count().with_timeout(timeout))
        .expect("valid query");
    let wall = begin.elapsed();
    // A partial (timed-out) count would differ across modes by scheduling
    // and trip the cross-check with a misleading message — surface the
    // real cause instead.
    assert_eq!(
        outcome.status,
        QueryStatus::Completed,
        "{} at {workers} workers ended {}: raise --timeout",
        mode.name(),
        outcome.status
    );
    let stats = server.stats();
    let per_worker = server.worker_stats();
    let sum_busy: Duration = per_worker.iter().map(|w| w.busy).sum();
    let max_busy = per_worker.iter().map(|w| w.busy).max().unwrap_or_default();
    server.shutdown();
    SinglePoint {
        workers,
        wall,
        sum_busy,
        max_busy,
        tasks: stats.tasks_executed,
        steals: stats.steals,
        splits: stats.splits,
        assists: stats.assists,
        embeddings: outcome.count,
    }
}

/// The mixed batch, all queries in flight at once on a fresh pool.
fn run_batch(
    data: &Arc<Hypergraph>,
    queries: &[Hypergraph],
    mode: Mode,
    workers: usize,
    split_threshold: usize,
    timeout: Duration,
) -> BatchPoint {
    let server = MatchServer::new(Arc::clone(data), mode.config(workers, split_threshold));
    let begin = Instant::now();
    let handles: Vec<_> = queries
        .iter()
        .map(|q| {
            server
                .submit(q, QueryOptions::count().with_timeout(timeout))
                .expect("valid query")
        })
        .collect();
    let mut embeddings = 0;
    for (i, h) in handles.into_iter().enumerate() {
        let outcome = h.wait();
        assert_eq!(
            outcome.status,
            QueryStatus::Completed,
            "{} batch query {i} ended {}: raise --timeout",
            mode.name(),
            outcome.status
        );
        embeddings += outcome.count;
    }
    let wall = begin.elapsed();
    server.shutdown();
    BatchPoint {
        wall,
        embeddings,
        queries: queries.len(),
    }
}
