//! Multi-query serving throughput — the workload the serving layer
//! (DESIGN.md §8) exists for, complementing the single-query Fig. 10
//! scalability sweep.
//!
//! Three execution strategies answer the same mixed q2/q3 workload:
//!
//! 1. `sequential_loop` — one query at a time through the sequential
//!    executor (the latency-oracle baseline);
//! 2. `oneshot_pool_loop` — one query at a time through the one-shot
//!    `ParallelEngine`-backed `Matcher`, spinning a fresh pool per query;
//! 3. `served_concurrent` — every query submitted at once to one resident
//!    [`MatchServer`] pool;
//! 4. `served_repeat` — the same workload submitted again to the same
//!    server, so every plan comes from the plan cache.
//!
//! All strategies must agree on embedding counts (asserted). Per-phase
//! wall-clock, throughput and per-query latency stats are printed as TSV;
//! `--json PATH` additionally writes the committed `BENCH_serve.json`
//! baseline shape.
//!
//! Usage: `serve_throughput [--dataset NAME] [--queries N] [--threads N]
//!                          [--timeout SECS] [--json PATH]`.
//! `HGMATCH_BENCH_SMOKE=1` shrinks the workload for the CI bench-smoke job.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hgmatch_bench::experiments::{bench_smoke, num_cpus};
use hgmatch_bench::harness::Workload;
use hgmatch_bench::report::{median, percentile};
use hgmatch_core::serve::{MatchServer, QueryOptions, ServeConfig};
use hgmatch_core::{MatchConfig, Matcher};
use hgmatch_datasets::{profile_by_name, standard_settings};
use hgmatch_hypergraph::Hypergraph;

struct PhaseResult {
    name: &'static str,
    wall: Duration,
    latencies: Vec<f64>,
    embeddings: u64,
}

impl PhaseResult {
    fn qps(&self) -> f64 {
        self.latencies.len() as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

fn main() {
    let smoke = bench_smoke();
    let mut dataset = "CH".to_string();
    let mut per_setting = if smoke { 4 } else { 12 };
    let mut threads = num_cpus();
    let mut timeout = Duration::from_secs(if smoke { 2 } else { 5 });
    let mut json_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dataset" => {
                i += 1;
                dataset = args.get(i).expect("--dataset NAME").clone();
            }
            "--queries" => {
                i += 1;
                per_setting = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--queries N");
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--threads N");
            }
            "--timeout" => {
                i += 1;
                timeout = Duration::from_secs_f64(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--timeout SECS"),
                );
            }
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).expect("--json PATH").clone());
            }
            other => panic!("unknown flag {other:?}"),
        }
        i += 1;
    }

    let profile = profile_by_name(&dataset).expect("known dataset");
    let data = Arc::new(profile.generate());

    // Mixed workload: q2 and q3 random-walk queries, interleaved so big
    // and small queries alternate on the shared pool.
    let settings = standard_settings();
    let q2 = Workload::sample(&data, settings[0], per_setting, 17);
    let q3 = Workload::sample(&data, settings[1], per_setting, 59);
    let mut queries: Vec<Hypergraph> = Vec::new();
    for (a, b) in q2.queries.iter().zip(q3.queries.iter()) {
        queries.push(a.clone());
        queries.push(b.clone());
    }
    assert!(!queries.is_empty(), "workload sampling produced no queries");

    println!(
        "# serve_throughput: {} queries (q2/q3 mix) on {}, {} worker threads",
        queries.len(),
        profile.name,
        threads
    );

    // Phase 1: sequential, one at a time.
    let sequential = run_loop("sequential_loop", &queries, |q| {
        let matcher = Matcher::with_config(&data, MatchConfig::sequential().with_timeout(timeout));
        matcher.count(q).expect("valid query")
    });

    // Phase 2: one-shot parallel engine, one at a time (pool per query).
    let oneshot = run_loop("oneshot_pool_loop", &queries, |q| {
        let matcher =
            Matcher::with_config(&data, MatchConfig::parallel(threads).with_timeout(timeout));
        matcher.count(q).expect("valid query")
    });

    // Phases 3 & 4: the resident server, all queries in flight at once;
    // the second round replays the workload against a warm plan cache.
    let server = MatchServer::new(
        Arc::clone(&data),
        ServeConfig::default().with_threads(threads),
    );
    let served = run_served("served_concurrent", &server, &queries, timeout);
    let served_repeat = run_served("served_repeat", &server, &queries, timeout);
    let stats = server.stats();
    // ≥ rather than ==: the random-walk sampler may draw canonically
    // identical queries, which already hit the cache in the first round.
    assert!(
        stats.plan_cache_hits >= queries.len() as u64,
        "the repeat round must hit the plan cache for every query (hits={}, queries={})",
        stats.plan_cache_hits,
        queries.len()
    );

    for phase in [&sequential, &oneshot, &served, &served_repeat] {
        assert_eq!(
            phase.embeddings, sequential.embeddings,
            "{}: all strategies must count identically",
            phase.name
        );
    }

    println!("phase\twall_s\tqueries_per_s\tp50_ms\tp95_ms\tembeddings");
    let phases = [&sequential, &oneshot, &served, &served_repeat];
    for phase in phases {
        println!(
            "{}\t{:.4}\t{:.2}\t{:.3}\t{:.3}\t{}",
            phase.name,
            phase.wall.as_secs_f64(),
            phase.qps(),
            median(&phase.latencies) * 1e3,
            percentile(&phase.latencies, 95.0) * 1e3,
            phase.embeddings
        );
    }
    println!(
        "# plan cache: {} hits / {} misses; pool tasks: {}, steals: {}, splits: {}, assists: {}",
        stats.plan_cache_hits,
        stats.plan_cache_misses,
        stats.tasks_executed,
        stats.steals,
        stats.splits,
        stats.assists
    );

    if let Some(path) = json_path {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"dataset\": \"{}\", \"queries\": {}, \"threads\": {},",
            profile.name,
            queries.len(),
            threads
        );
        out.push_str("  \"phases\": [\n");
        for (i, phase) in phases.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"wall_s\": {:.4}, \"queries_per_s\": {:.2}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"embeddings\": {}}}{}",
                phase.name,
                phase.wall.as_secs_f64(),
                phase.qps(),
                median(&phase.latencies) * 1e3,
                percentile(&phase.latencies, 95.0) * 1e3,
                phase.embeddings,
                if i + 1 < phases.len() { "," } else { "" }
            );
        }
        out.push_str("  ],\n");
        let _ = writeln!(
            out,
            "  \"plan_cache\": {{\"hits\": {}, \"misses\": {}}}",
            stats.plan_cache_hits, stats.plan_cache_misses
        );
        out.push_str("}\n");
        std::fs::write(&path, out).expect("write json report");
        println!("# wrote {path}");
    }
}

/// Runs `count_one` over every query back-to-back, timing each.
fn run_loop(
    name: &'static str,
    queries: &[Hypergraph],
    mut count_one: impl FnMut(&Hypergraph) -> u64,
) -> PhaseResult {
    let begin = Instant::now();
    let mut latencies = Vec::with_capacity(queries.len());
    let mut embeddings = 0;
    for q in queries {
        let t = Instant::now();
        embeddings += count_one(q);
        latencies.push(t.elapsed().as_secs_f64());
    }
    PhaseResult {
        name,
        wall: begin.elapsed(),
        latencies,
        embeddings,
    }
}

/// Submits every query to the server at once, then waits for all.
fn run_served(
    name: &'static str,
    server: &MatchServer,
    queries: &[Hypergraph],
    timeout: Duration,
) -> PhaseResult {
    let begin = Instant::now();
    let handles: Vec<_> = queries
        .iter()
        .map(|q| {
            server
                .submit(q, QueryOptions::count().with_timeout(timeout))
                .expect("valid query")
        })
        .collect();
    let mut latencies = Vec::with_capacity(handles.len());
    let mut embeddings = 0;
    for handle in handles {
        let outcome = handle.wait();
        latencies.push(outcome.elapsed.as_secs_f64());
        embeddings += outcome.count;
    }
    PhaseResult {
        name,
        wall: begin.elapsed(),
        latencies,
        embeddings,
    }
}
