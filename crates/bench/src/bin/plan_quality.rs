//! Plan-quality comparison: the paper's greedy Algorithm 3 order vs. the
//! statistics-driven cost-based order vs. the cost model's adversarial
//! *worst* connected order, end-to-end on the committed workloads
//! (DESIGN.md §13.5).
//!
//! Workloads:
//!
//! 1. `adversary` — the planner-adversary family (an A–B–C–D path query
//!    over a hub-heavy dataset, the scaled-up twin of the CLI `explain`
//!    golden fixture): greedy starts at the smallest partition, whose hub
//!    vertex fans the frontier out; the cost model starts at the selective
//!    end instead.
//! 2. Profile queries — q2/q3 random-walk queries sampled from Table II
//!    dataset profiles, the same sampler the figure benches use.
//!
//! Every `(workload, query)` pair runs single-threaded with all three
//! orders (the worst order under a timeout — that is the point of it) and
//! reports embeddings, per-order wall-clock and the speedup of cost-based
//! over greedy. When the greedy and cost-based orders coincide the run is
//! measured once and reported for both — identical plans have identical
//! runtimes, re-measuring would only add noise.
//!
//! Results print as TSV; `--json PATH` writes the committed
//! `BENCH_plan.json` baseline shape (fixed field order, deterministic row
//! order). `HGMATCH_BENCH_SMOKE=1` shrinks everything for CI.
//!
//! Usage: `plan_quality [--timeout SECS] [--repeat N] [--json PATH]`.

use std::fmt::Write as _;
use std::time::Duration;

use hgmatch_bench::experiments::bench_smoke;
use hgmatch_core::{CostModel, CountSink, MatchConfig, Matcher, Planner, QueryGraph};
use hgmatch_datasets::{profile_by_name, sample_query, standard_settings};
use hgmatch_hypergraph::{Hypergraph, HypergraphBuilder, Label};

/// The planner-adversary instance: labels A=0, B=1, C=2, D=3; `ab` {A,B}
/// edges sharing one B hub, `bc` {B,C} edges fanning out of the same hub,
/// `cd` selective {C,D} edges. The query is the A–B–C–D path.
fn adversary(ab: u32, bc: u32, cd: u32) -> (Hypergraph, Hypergraph) {
    assert!(cd <= bc, "every D-partner attaches to an existing C vertex");
    let mut b = HypergraphBuilder::new();
    let a0 = 0u32;
    for _ in 0..ab {
        b.add_vertex(Label::new(0));
    }
    let hub = b.add_vertex(Label::new(1)).raw();
    let c0 = hub + 1;
    for _ in 0..bc {
        b.add_vertex(Label::new(2));
    }
    let d0 = c0 + bc;
    for _ in 0..cd {
        b.add_vertex(Label::new(3));
    }
    for i in 0..ab {
        b.add_edge(vec![a0 + i, hub]).unwrap();
    }
    for j in 0..bc {
        b.add_edge(vec![hub, c0 + j]).unwrap();
    }
    for j in 0..cd {
        b.add_edge(vec![c0 + j, d0 + j]).unwrap();
    }
    let data = b.build().unwrap();

    let mut q = HypergraphBuilder::new();
    for &l in &[0u32, 1, 2, 3] {
        q.add_vertex(Label::new(l));
    }
    q.add_edge(vec![0, 1]).unwrap();
    q.add_edge(vec![1, 2]).unwrap();
    q.add_edge(vec![2, 3]).unwrap();
    (data, q.build().unwrap())
}

/// One measured order: its edges, estimated cost and wall-clock.
struct OrderRun {
    order: Vec<u32>,
    est_cost: f64,
    secs: f64,
    embeddings: u64,
    timed_out: bool,
}

/// Runs `order` against the data single-threaded, `repeat` times, keeping
/// the fastest run (measurement noise only ever slows a run down).
fn run_order(
    data: &Hypergraph,
    q: &QueryGraph,
    order: &[u32],
    timeout: Duration,
    repeat: usize,
) -> OrderRun {
    let model = CostModel::new(q, data);
    let est_cost = model.estimate_order(order).total_cost;
    let plan = Planner::plan_with_order(q, data, order.to_vec()).expect("valid order");
    let matcher = Matcher::with_config(data, MatchConfig::default().with_timeout(timeout));
    // Report one *coherent* run: the best repeat, where any completed run
    // beats any timed-out one and faster beats slower. Mixing fields
    // across repeats could pair a completed runtime with a truncated
    // count when machine noise times out a single repeat.
    let mut best: Option<(bool, f64, u64)> = None; // (timed_out, secs, embeddings)
    for _ in 0..repeat.max(1) {
        let sink = CountSink::new();
        let stats = matcher.run_plan(&plan, &sink);
        let run = (
            stats.timed_out,
            stats.elapsed.as_secs_f64(),
            stats.embeddings(),
        );
        if best.is_none_or(|b| (run.0, run.1) < (b.0, b.1)) {
            best = Some(run);
        }
    }
    let (timed_out, secs, embeddings) = best.expect("at least one repeat ran");
    OrderRun {
        order: order.to_vec(),
        est_cost,
        secs,
        embeddings,
        timed_out,
    }
}

struct Row {
    workload: String,
    query: String,
    edges: usize,
    greedy: OrderRun,
    cost: OrderRun,
    worst: OrderRun,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.greedy.secs / self.cost.secs.max(1e-9)
    }
}

fn measure(
    workload: &str,
    name: &str,
    data: &Hypergraph,
    query: &Hypergraph,
    timeout: Duration,
    repeat: usize,
) -> Row {
    let q = QueryGraph::new(query).expect("valid query");
    let model = CostModel::new(&q, data);
    let greedy_order = Planner::greedy_order(&q, data);
    // The order the production planner actually compiles (search result
    // gated by the confidence margin).
    let cost_order = Planner::plan(&q, data).expect("plans").order().to_vec();
    let worst_order = model.worst_order(8);

    let greedy = run_order(data, &q, &greedy_order, timeout, repeat);
    let cost = if cost_order == greedy_order {
        // Identical plan ⇒ identical runtime; re-measuring adds noise only.
        OrderRun {
            order: cost_order,
            est_cost: greedy.est_cost,
            secs: greedy.secs,
            embeddings: greedy.embeddings,
            timed_out: greedy.timed_out,
        }
    } else {
        run_order(data, &q, &cost_order, timeout, repeat)
    };
    let worst = run_order(data, &q, &worst_order, timeout, repeat);
    assert!(
        greedy.timed_out || cost.timed_out || greedy.embeddings == cost.embeddings,
        "order invariance violated: {} vs {}",
        greedy.embeddings,
        cost.embeddings
    );
    Row {
        workload: workload.to_string(),
        query: name.to_string(),
        edges: q.num_edges(),
        greedy,
        cost,
        worst,
    }
}

fn main() {
    let smoke = bench_smoke();
    let mut timeout = Duration::from_secs(if smoke { 5 } else { 30 });
    let mut repeat = if smoke { 1 } else { 3 };
    let mut json_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--timeout" => {
                i += 1;
                let secs: f64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--timeout SECS");
                timeout = Duration::from_secs_f64(secs);
            }
            "--repeat" => {
                i += 1;
                repeat = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--repeat N");
            }
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).expect("--json PATH").clone());
            }
            other => panic!("unknown flag {other:?}"),
        }
        i += 1;
    }

    let mut rows: Vec<Row> = Vec::new();

    // Workload 1: the planner-adversary family at two scales.
    let scales: &[(u32, u32, u32)] = if smoke {
        &[(4, 400, 16)]
    } else {
        &[(8, 20_000, 64), (16, 60_000, 128)]
    };
    for &(ab, bc, cd) in scales {
        let (data, query) = adversary(ab, bc, cd);
        rows.push(measure(
            "adversary",
            &format!("path4-ab{ab}-bc{bc}-cd{cd}"),
            &data,
            &query,
            timeout,
            repeat,
        ));
    }

    // Workload 2: q2/q3 random-walk queries over dataset profiles.
    let profiles: &[&str] = if smoke { &["CH"] } else { &["CH", "SB"] };
    let per_setting = if smoke { 2 } else { 3 };
    for name in profiles {
        let profile = profile_by_name(name).expect("known profile");
        let data = profile.generate();
        for setting in standard_settings().iter().take(2) {
            let mut found = 0;
            for seed in 0..32u64 {
                if found == per_setting {
                    break;
                }
                let Some(query) = sample_query(&data, setting, 1000 + seed * 17) else {
                    continue;
                };
                if query.num_edges() < 2 {
                    continue; // single-edge queries have only one order
                }
                rows.push(measure(
                    name,
                    &format!("{}-s{seed}", setting.name),
                    &data,
                    &query,
                    timeout,
                    repeat,
                ));
                found += 1;
            }
        }
    }

    println!("# plan_quality: timeout {:?}, repeat {repeat}", timeout);
    println!(
        "workload\tquery\tedges\tembeddings\tgreedy_s\tcost_s\tworst_s\tspeedup\tgreedy_order\tcost_order\tworst_order"
    );
    let mut regressions = 0usize;
    let mut best_speedup = 0.0f64;
    for row in &rows {
        let speedup = row.speedup();
        if speedup < 1.0 / 1.1 {
            regressions += 1;
        }
        if row.edges > 1 {
            best_speedup = best_speedup.max(speedup);
        }
        println!(
            "{}\t{}\t{}\t{}\t{:.6}\t{:.6}\t{}\t{:.3}\t{:?}\t{:?}\t{:?}",
            row.workload,
            row.query,
            row.edges,
            row.cost.embeddings,
            row.greedy.secs,
            row.cost.secs,
            if row.worst.timed_out {
                format!(">{:.1} (timeout)", row.worst.secs)
            } else {
                format!("{:.6}", row.worst.secs)
            },
            speedup,
            row.greedy.order,
            row.cost.order,
            row.worst.order,
        );
    }
    println!(
        "# cost-based >10% slower than greedy on {regressions}/{} queries; best multi-edge speedup {best_speedup:.2}x",
        rows.len()
    );

    if let Some(path) = json_path {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"timeout_s\": {:.1}, \"repeat\": {repeat}, \"regressions\": {regressions}, \"best_multi_edge_speedup\": {best_speedup:.3},",
            timeout.as_secs_f64()
        );
        out.push_str("  \"rows\": [\n");
        for (i, row) in rows.iter().enumerate() {
            let run = |r: &OrderRun| {
                format!(
                    "{{\"order\": {:?}, \"est_cost\": {:.4}, \"secs\": {:.6}, \"embeddings\": {}, \"timed_out\": {}}}",
                    r.order, r.est_cost, r.secs, r.embeddings, r.timed_out
                )
            };
            let _ = writeln!(
                out,
                "    {{\"workload\": \"{}\", \"query\": \"{}\", \"edges\": {}, \"speedup\": {:.3}, \"greedy\": {}, \"cost_based\": {}, \"worst\": {}}}{}",
                row.workload,
                row.query,
                row.edges,
                row.speedup(),
                run(&row.greedy),
                run(&row.cost),
                run(&row.worst),
                if i + 1 == rows.len() { "" } else { "," }
            );
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).expect("write json report");
        println!("# wrote {path}");
    }
}
