//! Fig. 11 — task-based scheduling versus BFS-style scheduling: peak
//! memory of materialised intermediate results over 20 q3 queries.
//!
//! The BFS executor materialises every intermediate level; the task-based
//! scheduler's LIFO order keeps memory within the Theorem VI.1 bound. The
//! paper reports RSS; we report the accounted bytes of live partial
//! embeddings, which is the quantity the two schedulers actually differ in.
//!
//! Usage: `fig11_memory [--dataset NAME] [--queries N] [--threads N]
//!                      [--timeout SECS]`.

use hgmatch_bench::experiments::num_cpus;
use hgmatch_bench::harness::Workload;
use hgmatch_core::engine::ParallelEngine;
use hgmatch_core::exec::BfsExecutor;
use hgmatch_core::{CountSink, MatchConfig, Matcher};
use hgmatch_datasets::{profile_by_name, standard_settings};
use std::time::Duration;

fn main() {
    let mut dataset = "AR-S".to_string();
    let mut queries = 20usize;
    let mut threads = num_cpus().min(8);
    let mut timeout = Duration::from_secs(10);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dataset" => {
                i += 1;
                dataset = args.get(i).expect("--dataset NAME").clone();
            }
            "--queries" => {
                i += 1;
                queries = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--queries N");
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--threads N");
            }
            "--timeout" => {
                i += 1;
                timeout = Duration::from_secs_f64(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--timeout SECS"),
                );
            }
            other => panic!("unknown flag {other:?}"),
        }
        i += 1;
    }

    let profile = profile_by_name(&dataset).expect("known dataset");
    let data = profile.generate();
    let q3 = standard_settings()[1];
    let workload = Workload::sample(&data, q3, queries, 47);
    let config = MatchConfig::parallel(threads).with_timeout(timeout);
    let matcher = Matcher::with_config(&data, config.clone());

    println!(
        "# Fig. 11: task-based vs BFS scheduling, {} threads, {}",
        threads, profile.name
    );
    println!("query\tembeddings\ttask_peak_bytes\tbfs_peak_bytes\tbfs/task");
    let mut sorted: Vec<(u64, usize)> = workload
        .queries
        .iter()
        .enumerate()
        .map(|(i, q)| (matcher.count(q).unwrap_or(0), i))
        .collect();
    sorted.sort();

    for (rank, &(count, qi)) in sorted.iter().enumerate() {
        let query = &workload.queries[qi];
        let plan = matcher.plan(query).expect("plan");
        let sink = CountSink::new();
        let task_stats = ParallelEngine::run(&plan, &data, &sink, &config);
        let sink = CountSink::new();
        let bfs_stats = BfsExecutor::run(&plan, &data, &sink, &config);
        println!(
            "{}\t{}\t{}\t{}\t{:.1}",
            rank + 1,
            count,
            task_stats.peak_memory_bytes,
            bfs_stats.peak_memory_bytes,
            bfs_stats.peak_memory_bytes as f64 / task_stats.peak_memory_bytes.max(1) as f64,
        );
    }
    println!();
    println!("# Paper shape: BFS memory grows with the embedding count;");
    println!("# the task scheduler stays bounded and roughly flat.");
}
