//! `result_pipeline` — the reduce-then-scan result-pipeline benchmark
//! (DESIGN.md §18), written to `BENCH_scan.json`.
//!
//! Three experiments:
//!
//! 1. **compact** — [`hgmatch_core::scan::ParallelCompact`] (8
//!    participants, the claim→reduce→lookback→emit loop) versus the
//!    single-participant [`hgmatch_core::scan::compact_into`] on a large
//!    candidate-id array.
//! 2. **extract** — [`hgmatch_core::scan::ParallelExtract`] (bitmap→sorted
//!    row list, the dense-split handoff) versus
//!    [`hgmatch_core::scan::extract_bits_into`].
//! 3. **aggregate** — one embedding-heavy query through every
//!    [`AggregateMode`]: materialize, count-only, top-k, sampled. All modes
//!    must agree on the exact count (asserted).
//!
//! `--check` turns the two committed gates into hard assertions:
//!
//! * parallel compact at 8 participants sustains ≥ `scale ×` the
//!   sequential throughput, where `scale` is core-scaled — 2.0 with ≥ 8
//!   cores, `2.0 · cores / 8` with ≥ 2, and 0.25 on a single core (8
//!   oversubscribed participants may run slower than one; the gate then
//!   bounds the protocol overhead instead of demanding a speedup). The
//!   applied scale is recorded in the report.
//! * count-only answers the embedding-heavy query ≥ 3× faster than
//!   materialize (zero-materialization is the point of the mode split).
//!
//! Usage: `result_pipeline [--elements N] [--blowup N] [--reps N]
//!                         [--workers N] [--json PATH] [--check]`.
//! `HGMATCH_BENCH_SMOKE=1` shrinks every knob for the CI bench-smoke job.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use hgmatch_bench::experiments::{bench_smoke, num_cpus};
use hgmatch_core::scan::{compact_into, extract_bits_into, ParallelCompact, ParallelExtract};
use hgmatch_core::{AggregateMode, MatchConfig, Matcher, ScoreFn};
use hgmatch_datasets::testgen::blowup;
use hgmatch_hypergraph::bitmap::Bitmap;

/// Best-of-`reps` wall time of `f`.
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    let mut best = Duration::MAX;
    let mut last = None;
    for _ in 0..reps.max(1) {
        let begin = Instant::now();
        let r = f();
        best = best.min(begin.elapsed());
        last = Some(r);
    }
    (best, last.expect("reps >= 1"))
}

fn throughput(elements: usize, wall: Duration) -> f64 {
    elements as f64 / wall.as_secs_f64().max(1e-9) / 1e6
}

/// Core-scaled compact gate: the committed 2× target assumes ≥ 8 cores;
/// fewer cores scale it linearly, and a single core only bounds the
/// protocol overhead (oversubscription cannot speed anything up).
fn compact_gate_scale(cores: usize) -> f64 {
    if cores >= 8 {
        2.0
    } else if cores >= 2 {
        2.0 * cores as f64 / 8.0
    } else {
        0.25
    }
}

struct ModePoint {
    name: &'static str,
    wall: Duration,
    count: u64,
    materialized: u64,
}

fn main() {
    let smoke = bench_smoke();
    let mut elements: usize = if smoke { 1 << 20 } else { 1 << 24 };
    let mut blowup_n: u32 = if smoke { 28 } else { 56 };
    let mut reps: usize = if smoke { 3 } else { 5 };
    let mut workers: usize = 8;
    let mut json_path: Option<String> = None;
    let mut check = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--elements" => {
                i += 1;
                elements = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--elements N");
            }
            "--blowup" => {
                i += 1;
                blowup_n = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--blowup N");
            }
            "--reps" => {
                i += 1;
                reps = args.get(i).and_then(|s| s.parse().ok()).expect("--reps N");
            }
            "--workers" => {
                i += 1;
                workers = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--workers N");
            }
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).expect("--json PATH").clone());
            }
            "--check" => check = true,
            other => panic!("unknown flag {other:?}"),
        }
        i += 1;
    }

    let cores = num_cpus();
    println!(
        "# result_pipeline: {elements} elements, blowup n={blowup_n}, {workers} participants, host_cpus={cores}"
    );

    // Experiment 1: compaction. A pseudo-random id array, keeping ~60%.
    let input: Vec<u32> = (0..elements as u32)
        .map(|i| i.wrapping_mul(2_654_435_761))
        .collect();
    let keep = |x: u32| x % 5 < 3;
    let (seq_compact, expect) = best_of(reps, || {
        let mut out = Vec::new();
        compact_into(&input, &mut out, keep);
        out
    });
    let (par_compact, got) = best_of(reps, || {
        let pc = ParallelCompact::new(&input, keep);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| assert!(pc.run(&mut || false)));
            }
        });
        let mut out = Vec::new();
        pc.collect_into(&mut out);
        out
    });
    assert_eq!(got, expect, "parallel compact diverged from sequential");
    let compact_speedup = seq_compact.as_secs_f64() / par_compact.as_secs_f64().max(1e-9);
    println!("compact\tvariant\twall_s\tMelem_per_s");
    println!(
        "compact\tsequential\t{:.4}\t{:.1}",
        seq_compact.as_secs_f64(),
        throughput(elements, seq_compact)
    );
    println!(
        "compact\tparallel_{workers}\t{:.4}\t{:.1}\t(speedup {compact_speedup:.2}x)",
        par_compact.as_secs_f64(),
        throughput(elements, par_compact)
    );

    // Experiment 2: bitmap→list extraction over the kept *positions* — the
    // shape of the candidate-generation handoff (a dense bitmap over the
    // edge-id domain, ~60% populated).
    let mut bm = Bitmap::new(elements as u32);
    for (pos, &x) in input.iter().enumerate() {
        if keep(x) {
            bm.insert(pos as u32);
        }
    }
    let popcount = bm.count_ones();
    let (seq_extract, expect) = best_of(reps, || {
        let mut out = Vec::new();
        extract_bits_into(bm.words(), &mut out);
        out
    });
    let (par_extract, got) = best_of(reps, || {
        let px = ParallelExtract::new(bm.words().to_vec(), popcount);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| assert!(px.run(&mut || false)));
            }
        });
        (0..px.len()).map(|i| px.row(i)).collect::<Vec<u32>>()
    });
    assert_eq!(got, expect, "parallel extract diverged from sequential");
    let extract_speedup = seq_extract.as_secs_f64() / par_extract.as_secs_f64().max(1e-9);
    println!("extract\tvariant\twall_s\tMrow_per_s");
    println!(
        "extract\tsequential\t{:.4}\t{:.1}",
        seq_extract.as_secs_f64(),
        throughput(popcount as usize, seq_extract)
    );
    println!(
        "extract\tparallel_{workers}\t{:.4}\t{:.1}\t(speedup {extract_speedup:.2}x)",
        par_extract.as_secs_f64(),
        throughput(popcount as usize, par_extract)
    );

    // Experiment 3: aggregation modes on an embedding-heavy query — a
    // clique blow-up whose 3-edge path query produces far more embeddings
    // than candidates, so delivery (not candidate generation) dominates.
    let (data, query) = blowup(blowup_n, 3);
    let matcher = Matcher::with_config(&data, MatchConfig::parallel(workers.min(cores.max(1))));
    let modes: [(&'static str, AggregateMode); 4] = [
        ("materialize", AggregateMode::Materialize),
        ("count_only", AggregateMode::CountOnly),
        (
            "top_k",
            AggregateMode::TopK {
                k: 8,
                score: ScoreFn::EdgeIdSum,
            },
        ),
        (
            "sampled",
            AggregateMode::Sampled {
                budget: 64,
                seed: 42,
            },
        ),
    ];
    let mut points: Vec<ModePoint> = Vec::new();
    println!("aggregate\tmode\twall_s\tembeddings\tmaterialized");
    for (name, mode) in modes {
        let (wall, out) = best_of(reps, || matcher.aggregate_with(&query, mode).unwrap());
        println!(
            "aggregate\t{name}\t{:.4}\t{}\t{}",
            wall.as_secs_f64(),
            out.count,
            out.stats.metrics.materialized
        );
        points.push(ModePoint {
            name,
            wall,
            count: out.count,
            materialized: out.stats.metrics.materialized,
        });
    }
    let exact = points[0].count;
    assert!(exact > 0, "blow-up query found nothing");
    for p in &points {
        assert_eq!(p.count, exact, "{} disagrees on the exact count", p.name);
    }
    assert_eq!(points[1].materialized, 0, "count-only materialised");
    let count_speedup = points[0].wall.as_secs_f64() / points[1].wall.as_secs_f64().max(1e-9);
    println!("# count_only speedup over materialize: {count_speedup:.2}x");

    // Gates.
    let scale = compact_gate_scale(cores);
    let compact_pass = compact_speedup >= scale;
    let count_pass = count_speedup >= 3.0;
    println!(
        "# gate compact: parallel/sequential {compact_speedup:.2}x >= {scale:.2}x (cores={cores}) -> {}",
        if compact_pass { "pass" } else { "FAIL" }
    );
    println!(
        "# gate count_only: {count_speedup:.2}x >= 3.00x -> {}",
        if count_pass { "pass" } else { "FAIL" }
    );

    if let Some(path) = json_path {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"host_cpus\": {cores}, \"participants\": {workers}, \"elements\": {elements}, \"blowup_n\": {blowup_n}, \"reps\": {reps},"
        );
        let _ = writeln!(
            out,
            "  \"compact\": {{\"sequential_s\": {:.6}, \"parallel_s\": {:.6}, \"speedup\": {:.4}}},",
            seq_compact.as_secs_f64(),
            par_compact.as_secs_f64(),
            compact_speedup
        );
        let _ = writeln!(
            out,
            "  \"extract\": {{\"rows\": {popcount}, \"sequential_s\": {:.6}, \"parallel_s\": {:.6}, \"speedup\": {:.4}}},",
            seq_extract.as_secs_f64(),
            par_extract.as_secs_f64(),
            extract_speedup
        );
        let _ = writeln!(
            out,
            "  \"aggregate\": {{\"embeddings\": {exact}, \"modes\": {{"
        );
        for (pi, p) in points.iter().enumerate() {
            let _ = writeln!(
                out,
                "    \"{}\": {{\"wall_s\": {:.6}, \"materialized\": {}}}{}",
                p.name,
                p.wall.as_secs_f64(),
                p.materialized,
                if pi + 1 < points.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  }}, \"count_only_speedup\": {count_speedup:.4}}},");
        let _ = writeln!(
            out,
            "  \"gates\": {{\"compact_scale\": {scale:.4}, \"compact_pass\": {compact_pass}, \"count_only_target\": 3.0, \"count_only_pass\": {count_pass}}}"
        );
        out.push_str("}\n");
        std::fs::write(&path, out).expect("write json report");
        println!("# wrote {path}");
    }

    if check {
        assert!(
            compact_pass,
            "compact gate: parallel {compact_speedup:.2}x < required {scale:.2}x (cores={cores})"
        );
        assert!(
            count_pass,
            "count-only gate: {count_speedup:.2}x < required 3.00x over materialize"
        );
        println!("# CHECK OK");
    }
}
