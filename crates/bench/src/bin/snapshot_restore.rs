//! Snapshot restore vs text re-ingest — the cold-start cost the HGMB v2
//! format (DESIGN.md §17) exists to eliminate.
//!
//! Three phases over one dataset profile:
//!
//! 1. `text_reingest` — the baseline cold start: re-read the label/edge
//!    text files, re-parse, re-intern, and re-run the full adaptive index
//!    build (what `listen <labels> <edges>` pays on every boot).
//! 2. `snapshot_restore` — read + CRC-verify + decode the HGMB v2
//!    snapshot of the same graph; postings deserialise verbatim, so no
//!    indexing runs at all. The decoded graph is asserted equal to the
//!    text-built one, and re-encoding it must be byte-stable.
//! 3. `post_churn_restore` — the same differential after a mixed
//!    insert/delete stream, so the measured path covers tombstone-compacted
//!    dynamic state, not just pristine builds.
//!
//! Results print as TSV; `--json PATH` writes the committed
//! `BENCH_snapshot.json` baseline shape. `--check` turns the ≥10×
//! restore-speedup claim into a hard assertion (it is CPU-bound on both
//! sides, so it holds on shared runners too).
//!
//! Usage: `snapshot_restore [--dataset NAME] [--iters N] [--json PATH]
//!                          [--check]`.
//! `HGMATCH_BENCH_SMOKE=1` shrinks the iteration count for the CI
//! bench-smoke job.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use hgmatch_bench::experiments::bench_smoke;
use hgmatch_bench::report::median;
use hgmatch_datasets::{generate_update_stream, profile_by_name, UpdateStreamConfig};
use hgmatch_hypergraph::io::{encode_snapshot, load_snapshot, load_text, save_snapshot, save_text};
use hgmatch_hypergraph::{DynamicHypergraph, Hypergraph};

/// Median-of-`iters` timing of one cold start, in seconds.
fn time_runs(iters: usize, mut run: impl FnMut() -> Hypergraph) -> (f64, Hypergraph) {
    let mut secs = Vec::with_capacity(iters);
    let mut last = None;
    for _ in 0..iters {
        let begin = Instant::now();
        last = Some(run());
        secs.push(begin.elapsed().as_secs_f64());
    }
    (median(&secs), last.expect("iters >= 1"))
}

fn main() {
    let smoke = bench_smoke();
    // HB (hub-heavy) is the default: its dense postings make re-indexing
    // expensive relative to snapshot size, which is exactly the cold-start
    // profile snapshots exist for.
    let mut dataset = "HB".to_string();
    let mut iters = if smoke { 3 } else { 7 };
    let mut json_path: Option<String> = None;
    let mut check = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dataset" => {
                i += 1;
                dataset = args.get(i).expect("--dataset NAME").clone();
            }
            "--iters" => {
                i += 1;
                iters = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .expect("--iters N");
            }
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).expect("--json PATH").clone());
            }
            "--check" => check = true,
            other => panic!("unknown flag {other:?}"),
        }
        i += 1;
    }

    let profile = profile_by_name(&dataset).expect("known dataset");
    let base = profile.generate();
    println!(
        "# snapshot_restore: {} ({} vertices, {} edges), median of {iters} runs",
        profile.name,
        base.num_vertices(),
        base.num_edges(),
    );

    let dir: PathBuf = std::env::temp_dir().join(format!(
        "hgmatch-snapshot-restore-{}-{}",
        profile.name,
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let labels = dir.join("data.labels");
    let edges = dir.join("data.edges");
    let snap = dir.join("data.hgsnap");

    // Phase 1: text re-ingest (parse + intern + full index build).
    save_text(&base, &labels, &edges).expect("write text files");
    let (text_secs, text_built) =
        time_runs(iters, || load_text(&labels, &edges).expect("text loads"));
    assert_eq!(text_built, base, "text round-trip must be lossless");
    println!("text_reingest\t{:.4}s median", text_secs);

    // Phase 2: snapshot restore of the same graph.
    save_snapshot(&base, &snap).expect("write snapshot");
    let snapshot_bytes = std::fs::metadata(&snap).expect("snapshot exists").len();
    let (restore_secs, restored) =
        time_runs(iters, || load_snapshot(&snap).expect("snapshot loads"));
    assert_eq!(restored, base, "restore must be lossless");
    assert_eq!(
        std::fs::read(&snap).expect("snapshot readable"),
        &*encode_snapshot(&restored),
        "re-encode must be byte-stable"
    );
    let speedup = text_secs / restore_secs.max(1e-9);
    println!(
        "snapshot_restore\t{restore_secs:.4}s median\t{snapshot_bytes} bytes\t{speedup:.1}x vs text"
    );

    // Phase 3: restore after dynamic churn (tombstones compacted away by
    // the snapshot merge, but row orders and representations reflect the
    // stream, not a pristine build).
    let stream = generate_update_stream(
        &base,
        &UpdateStreamConfig {
            ops: if smoke { 1_000 } else { 5_000 },
            insert_ratio: 0.6,
            seed: 29,
            ..Default::default()
        },
    );
    let mut dynamic = DynamicHypergraph::from_hypergraph(&base);
    for op in &stream {
        dynamic.apply(op).expect("stream op applies");
    }
    let churned = dynamic.snapshot().graph;
    save_snapshot(&churned, &snap).expect("write churned snapshot");
    let (churn_secs, churn_restored) =
        time_runs(iters, || load_snapshot(&snap).expect("snapshot loads"));
    assert_eq!(
        churn_restored, *churned,
        "post-churn restore must be lossless"
    );
    println!(
        "post_churn_restore\t{churn_secs:.4}s median\t({} ops applied, {} edges)",
        stream.len(),
        churned.num_edges()
    );

    std::fs::remove_dir_all(&dir).ok();

    if check {
        assert!(
            speedup >= 10.0,
            "snapshot restore must be >= 10x faster than text re-ingest, got {speedup:.1}x"
        );
        println!("# check passed: {speedup:.1}x >= 10x");
    }

    if let Some(path) = json_path {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"dataset\": \"{}\", \"iters\": {iters},",
            profile.name
        );
        let _ = writeln!(out, "  \"text_reingest_s\": {text_secs:.4},");
        let _ = writeln!(
            out,
            "  \"snapshot_restore\": {{\"seconds\": {restore_secs:.4}, \"bytes\": {snapshot_bytes}, \"speedup\": {speedup:.1}}},"
        );
        let _ = writeln!(
            out,
            "  \"post_churn_restore\": {{\"seconds\": {churn_secs:.4}, \"stream_ops\": {}}}",
            stream.len()
        );
        out.push_str("}\n");
        std::fs::write(&path, out).expect("write json report");
        println!("# wrote {path}");
    }
}
