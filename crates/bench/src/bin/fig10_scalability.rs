//! Fig. 10 — thread scalability on the largest dataset.
//!
//! Picks the two heaviest q3 queries on AR-S (the paper's q3^1 and q3^2)
//! and sweeps the thread count, reporting time and speedup versus one
//! thread. Expect near-linear speedup up to the physical core count.
//!
//! Usage: `fig10_scalability [--dataset NAME] [--max-threads N]
//!                           [--candidates N] [--timeout SECS]`.

use hgmatch_bench::experiments::{heaviest_queries, num_cpus};
use hgmatch_bench::harness::Workload;
use hgmatch_core::{MatchConfig, Matcher};
use hgmatch_datasets::{profile_by_name, standard_settings};
use std::time::Duration;

fn main() {
    let mut dataset = "AR-S".to_string();
    let mut max_threads = num_cpus();
    let mut candidates = 10usize;
    let mut timeout = Duration::from_secs(30);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dataset" => {
                i += 1;
                dataset = args.get(i).expect("--dataset NAME").clone();
            }
            "--max-threads" => {
                i += 1;
                max_threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--max-threads N");
            }
            "--candidates" => {
                i += 1;
                candidates = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--candidates N");
            }
            "--timeout" => {
                i += 1;
                timeout = Duration::from_secs_f64(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--timeout SECS"),
                );
            }
            other => panic!("unknown flag {other:?}"),
        }
        i += 1;
    }

    let profile = profile_by_name(&dataset).expect("known dataset");
    let data = profile.generate();
    let q3 = standard_settings()[1];
    let workload = Workload::sample(&data, q3, candidates, 31);
    let heavy = heaviest_queries(&data, &workload, 2, timeout);

    println!(
        "# Fig. 10: scalability on {} (heaviest q3 queries)",
        profile.name
    );
    println!("query\tembeddings\tthreads\tseconds\tspeedup");
    let mut threads_list = vec![1usize];
    let mut t = 2;
    while t < max_threads {
        threads_list.push(t);
        t *= 2;
    }
    if *threads_list.last().unwrap() != max_threads {
        threads_list.push(max_threads);
    }

    for (qi, (query, count)) in heavy.iter().enumerate() {
        let mut base = None;
        for &threads in &threads_list {
            let matcher = Matcher::with_config(
                &data,
                MatchConfig::parallel(threads).with_timeout(timeout * 4),
            );
            let (_, stats) = matcher.count_with_stats(query).expect("query valid");
            let secs = stats.elapsed.as_secs_f64();
            let base_secs = *base.get_or_insert(secs);
            println!(
                "q3^{}\t{}\t{}\t{:.4}\t{:.2}",
                qi + 1,
                count,
                threads,
                secs,
                base_secs / secs.max(1e-9),
            );
        }
    }
    println!();
    println!("# Paper shape: near-linear speedup while threads <= physical cores.");
}
