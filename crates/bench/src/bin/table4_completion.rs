//! Table IV — query completion ratio per algorithm within the timeout.
//!
//! A thin front-end over the same sweep as Fig. 8 (the paper derives
//! Table IV from that experiment as well), printing only the ratios.
//!
//! Usage: `table4_completion [--timeout SECS] [--queries N] [dataset…]`.

use hgmatch_bench::experiments::{single_thread_sweep, SweepParams};
use std::collections::BTreeMap;
use std::time::Duration;

fn main() {
    let mut params = SweepParams::default();
    let mut datasets: Vec<String> = Vec::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--timeout" => {
                i += 1;
                params.timeout = Duration::from_secs_f64(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--timeout SECS"),
                );
            }
            "--queries" => {
                i += 1;
                params.queries_per_setting = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--queries N");
            }
            name => datasets.push(name.to_string()),
        }
        i += 1;
    }
    if !datasets.is_empty() {
        params.datasets = datasets;
    }

    println!("# Table IV: query completion ratio (single-thread)");
    println!("# timeout = {:?}", params.timeout);

    // Per-dataset breakdown like the paper's table, plus totals.
    let result = single_thread_sweep(&params, |_| {});
    let mut per_dataset: BTreeMap<(String, String), (usize, usize)> = BTreeMap::new();
    for cell in &result.cells {
        let e = per_dataset
            .entry((cell.algorithm.clone(), cell.dataset.clone()))
            .or_insert((0, 0));
        e.0 += cell.completed;
        e.1 += cell.total;
    }

    let datasets: Vec<String> = {
        let mut v: Vec<String> = result.cells.iter().map(|c| c.dataset.clone()).collect();
        v.sort();
        v.dedup();
        v
    };
    print!("algorithm");
    for d in &datasets {
        print!("\t{d}");
    }
    println!("\tTotal");
    let algorithms: Vec<String> = {
        let mut v: Vec<String> = result.cells.iter().map(|c| c.algorithm.clone()).collect();
        v.sort();
        v.dedup();
        v
    };
    for algorithm in algorithms {
        print!("{algorithm}");
        let mut done = 0;
        let mut all = 0;
        for d in &datasets {
            let (c, t) = per_dataset
                .get(&(algorithm.clone(), d.clone()))
                .copied()
                .unwrap_or((0, 0));
            done += c;
            all += t;
            print!("\t{:.0}%", 100.0 * c as f64 / t.max(1) as f64);
        }
        println!("\t{:.0}%", 100.0 * done as f64 / all.max(1) as f64);
    }
}
