//! Dynamic-update throughput and query latency under concurrent mutation
//! — the workload the `hypergraph::dynamic` subsystem (DESIGN.md §11)
//! exists for.
//!
//! Four phases over one dataset profile:
//!
//! 1. `insert_throughput` — build the graph from an insert-only stream
//!    through [`DynamicHypergraph`] (inserts/sec), compared against the
//!    offline one-shot build of the same edges.
//! 2. `mixed_throughput` — a 70:30 insert:delete stream (ops/sec), with
//!    tombstoning and threshold compaction in play.
//! 3. `snapshot_cost` — epoch freezes at a fixed cadence during a mixed
//!    stream: median/p95 snapshot latency, exercising partition-level
//!    copy-on-write reuse.
//! 4. `serve_under_mutation` — a writer thread applies the stream and
//!    publishes epochs to a [`MatchServer`] while a reader keeps a q2/q3
//!    workload in flight: per-query latency (p50/p95), served throughput
//!    and concurrent update throughput.
//!
//! Results print as TSV; `--json PATH` writes the committed
//! `BENCH_updates.json` baseline shape.
//!
//! Usage: `updates [--dataset NAME] [--ops N] [--threads N]
//!                 [--snapshot-every N] [--json PATH]`.
//! `HGMATCH_BENCH_SMOKE=1` shrinks the stream for the CI bench-smoke job.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use hgmatch_bench::experiments::{bench_smoke, num_cpus};
use hgmatch_bench::report::{median, percentile};
use hgmatch_core::serve::{MatchServer, QueryOptions, ServeConfig};
use hgmatch_datasets::testgen::rebuild_oracle;
use hgmatch_datasets::{
    generate_update_stream, profile_by_name, sample_query, standard_settings, UpdateStreamConfig,
};
use hgmatch_hypergraph::{DynamicHypergraph, Hypergraph, UpdateOp};

fn main() {
    let smoke = bench_smoke();
    let mut dataset = "CH".to_string();
    let mut ops = if smoke { 2_000 } else { 20_000 };
    let mut threads = num_cpus();
    let mut snapshot_every = if smoke { 100 } else { 500 };
    let mut json_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dataset" => {
                i += 1;
                dataset = args.get(i).expect("--dataset NAME").clone();
            }
            "--ops" => {
                i += 1;
                ops = args.get(i).and_then(|s| s.parse().ok()).expect("--ops N");
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--threads N");
            }
            "--snapshot-every" => {
                i += 1;
                snapshot_every = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--snapshot-every N");
            }
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).expect("--json PATH").clone());
            }
            other => panic!("unknown flag {other:?}"),
        }
        i += 1;
    }

    let profile = profile_by_name(&dataset).expect("known dataset");
    let base = profile.generate();
    println!(
        "# updates: {} ({} vertices, {} edges), {ops} ops, snapshot every {snapshot_every}, {threads} threads",
        profile.name,
        base.num_vertices(),
        base.num_edges(),
    );

    // Phase 1: insert-only throughput vs the offline builder.
    let insert_stream = generate_update_stream(
        &base,
        &UpdateStreamConfig {
            ops,
            insert_ratio: 1.0,
            seed: 11,
            ..Default::default()
        },
    );
    let begin = Instant::now();
    let mut dynamic = DynamicHypergraph::from_hypergraph(&base);
    for op in &insert_stream {
        dynamic.apply(op).expect("stream op applies");
    }
    let insert_secs = begin.elapsed().as_secs_f64();
    let inserts_per_sec = ops as f64 / insert_secs.max(1e-9);
    let built = dynamic.snapshot().graph;

    let begin = Instant::now();
    let offline = rebuild_oracle(&built);
    let offline_secs = begin.elapsed().as_secs_f64();
    assert_eq!(*built, offline, "dynamic build must equal offline build");
    println!(
        "insert_throughput\t{inserts_per_sec:.0} inserts/s ({insert_secs:.4}s; offline one-shot build of the result: {offline_secs:.4}s)"
    );

    // Phase 2: mixed stream throughput (70:30).
    let mixed_stream = generate_update_stream(
        &base,
        &UpdateStreamConfig {
            ops,
            insert_ratio: 0.7,
            seed: 13,
            ..Default::default()
        },
    );
    let deletes = mixed_stream
        .iter()
        .filter(|op| matches!(op, UpdateOp::Delete(_)))
        .count();
    let begin = Instant::now();
    let mut dynamic = DynamicHypergraph::from_hypergraph(&base);
    for op in &mixed_stream {
        dynamic.apply(op).expect("stream op applies");
    }
    let mixed_secs = begin.elapsed().as_secs_f64();
    let mixed_ops_per_sec = ops as f64 / mixed_secs.max(1e-9);
    let deletes_per_sec = deletes as f64 / (mixed_secs * deletes as f64 / ops as f64).max(1e-9);
    println!(
        "mixed_throughput\t{mixed_ops_per_sec:.0} ops/s ({} inserts, {deletes} deletes in {mixed_secs:.4}s)",
        ops - deletes
    );

    // Phase 3: snapshot cost at a fixed cadence over a fresh mixed stream.
    let mut dynamic = DynamicHypergraph::from_hypergraph(&base);
    let mut snapshot_secs: Vec<f64> = Vec::new();
    for chunk in mixed_stream.chunks(snapshot_every) {
        for op in chunk {
            dynamic.apply(op).expect("stream op applies");
        }
        let t = Instant::now();
        let _ = dynamic.snapshot();
        snapshot_secs.push(t.elapsed().as_secs_f64());
    }
    println!(
        "snapshot_cost\tp50 {:.3}ms\tp95 {:.3}ms\t({} snapshots)",
        median(&snapshot_secs) * 1e3,
        percentile(&snapshot_secs, 95.0) * 1e3,
        snapshot_secs.len()
    );

    // Phase 4: serving under concurrent mutation.
    let mut dynamic = DynamicHypergraph::from_hypergraph(&base);
    let first = dynamic.snapshot().graph;
    let settings = standard_settings();
    let mut queries: Vec<Hypergraph> = Vec::new();
    for (si, setting) in settings.iter().take(2).enumerate() {
        for s in 0..6u64 {
            if let Some(q) = sample_query(&first, setting, 31 + s * 7 + si as u64) {
                queries.push(q);
            }
        }
    }
    assert!(
        queries.len() >= 8,
        "workload sampling produced too few queries"
    );

    let server = MatchServer::new(
        Arc::clone(&first),
        ServeConfig::default().with_threads(threads),
    );
    let writer_done = AtomicBool::new(false);
    let mut latencies: Vec<f64> = Vec::new();
    let mut served = 0u64;
    let serve_begin = Instant::now();
    let concurrent_updates_per_sec = std::thread::scope(|scope| {
        let server_ref = &server;
        let done_ref = &writer_done;
        let writer = scope.spawn(move || {
            let begin = Instant::now();
            for chunk in mixed_stream.chunks(snapshot_every) {
                for op in chunk {
                    dynamic.apply(op).expect("stream op applies");
                }
                let delta = dynamic.snapshot();
                server_ref.update_data(delta.graph, &delta.touched_labels, delta.sids_stable);
            }
            done_ref.store(true, Ordering::Release);
            ops as f64 / begin.elapsed().as_secs_f64().max(1e-9)
        });

        // Reader: keep the whole workload in flight until the writer ends.
        while !writer_done.load(Ordering::Acquire) {
            let handles: Vec<_> = queries
                .iter()
                .map(|q| {
                    server
                        .submit(q, QueryOptions::count())
                        .expect("valid query")
                })
                .collect();
            for handle in handles {
                let outcome = handle.wait();
                latencies.push(outcome.elapsed.as_secs_f64());
                served += 1;
            }
        }
        writer.join().expect("writer thread")
    });
    let serve_secs = serve_begin.elapsed().as_secs_f64();
    let served_qps = served as f64 / serve_secs.max(1e-9);
    let stats = server.stats();
    println!(
        "serve_under_mutation\t{served} queries in {serve_secs:.4}s ({served_qps:.1} q/s)\tp50 {:.3}ms\tp95 {:.3}ms\tupdates {concurrent_updates_per_sec:.0} ops/s",
        median(&latencies) * 1e3,
        percentile(&latencies, 95.0) * 1e3,
    );
    println!(
        "# epochs {}, plan cache {} hits / {} misses / {} invalidated",
        stats.data_epoch, stats.plan_cache_hits, stats.plan_cache_misses, stats.plans_invalidated
    );

    if let Some(path) = json_path {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"dataset\": \"{}\", \"ops\": {ops}, \"threads\": {threads}, \"snapshot_every\": {snapshot_every},",
            profile.name
        );
        let _ = writeln!(
            out,
            "  \"insert_throughput\": {{\"inserts_per_s\": {inserts_per_sec:.0}, \"offline_build_s\": {offline_secs:.4}}},"
        );
        let _ = writeln!(
            out,
            "  \"mixed_throughput\": {{\"ops_per_s\": {mixed_ops_per_sec:.0}, \"deletes_per_s\": {deletes_per_sec:.0}}},"
        );
        let _ = writeln!(
            out,
            "  \"snapshot_cost\": {{\"p50_ms\": {:.3}, \"p95_ms\": {:.3}}},",
            median(&snapshot_secs) * 1e3,
            percentile(&snapshot_secs, 95.0) * 1e3
        );
        let _ = writeln!(
            out,
            "  \"serve_under_mutation\": {{\"queries_per_s\": {served_qps:.1}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"updates_per_s\": {concurrent_updates_per_sec:.0}, \"epochs\": {}, \"plans_invalidated\": {}}}",
            median(&latencies) * 1e3,
            percentile(&latencies, 95.0) * 1e3,
            stats.data_epoch,
            stats.plans_invalidated
        );
        out.push_str("}\n");
        std::fs::write(&path, out).expect("write json report");
        println!("# wrote {path}");
    }
}
