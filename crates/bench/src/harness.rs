//! Shared experiment machinery: algorithm selection, workload construction
//! and timed runs with the paper's censoring semantics (timed-out queries
//! count as the full timeout when averaging, §VII-A).

use std::time::Duration;

use hgmatch_baselines::{run_baseline, BaselineAlgorithm};
use hgmatch_core::{MatchConfig, Matcher};
use hgmatch_datasets::{sample_query, QuerySetting};
use hgmatch_hypergraph::Hypergraph;

/// An algorithm under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmChoice {
    /// HGMatch with the given thread count.
    HgMatch {
        /// Worker threads.
        threads: usize,
    },
    /// One of the match-by-vertex baselines.
    Baseline(BaselineAlgorithm),
}

impl AlgorithmChoice {
    /// Display name (paper figure legend).
    pub fn name(self) -> String {
        match self {
            Self::HgMatch { threads: 1 } => "HGMatch".to_string(),
            Self::HgMatch { threads } => format!("HGMatch({threads}t)"),
            Self::Baseline(b) => b.name().to_string(),
        }
    }

    /// The single-thread comparison lineup of Fig. 8.
    pub fn single_thread_lineup() -> Vec<AlgorithmChoice> {
        let mut v: Vec<AlgorithmChoice> = BaselineAlgorithm::all()
            .into_iter()
            .map(AlgorithmChoice::Baseline)
            .collect();
        v.push(AlgorithmChoice::HgMatch { threads: 1 });
        v
    }
}

/// Outcome of one timed run.
#[derive(Debug, Clone, Copy)]
pub struct TimedRun {
    /// Embeddings counted (lower bound when timed out).
    pub count: u64,
    /// Elapsed seconds; equals the timeout when censored.
    pub seconds: f64,
    /// Whether the timeout fired.
    pub timed_out: bool,
}

/// Runs `algorithm` on `(data, query)` with the paper's censoring: a
/// timed-out run reports exactly the timeout as its elapsed time.
pub fn time_algorithm(
    algorithm: AlgorithmChoice,
    data: &Hypergraph,
    query: &Hypergraph,
    timeout: Option<Duration>,
) -> TimedRun {
    match algorithm {
        AlgorithmChoice::HgMatch { threads } => {
            let mut config = MatchConfig::parallel(threads);
            config.timeout = timeout;
            let matcher = Matcher::with_config(data, config);
            match matcher.count_with_stats(query) {
                Ok((count, stats)) => TimedRun {
                    count,
                    seconds: censor(stats.elapsed, stats.timed_out, timeout),
                    timed_out: stats.timed_out,
                },
                Err(_) => TimedRun {
                    count: 0,
                    seconds: 0.0,
                    timed_out: false,
                },
            }
        }
        AlgorithmChoice::Baseline(b) => {
            let result = run_baseline(b, data, query, timeout);
            TimedRun {
                count: result.count,
                seconds: censor(result.elapsed, result.timed_out, timeout),
                timed_out: result.timed_out,
            }
        }
    }
}

fn censor(elapsed: Duration, timed_out: bool, timeout: Option<Duration>) -> f64 {
    match (timed_out, timeout) {
        (true, Some(t)) => t.as_secs_f64(),
        _ => elapsed.as_secs_f64(),
    }
}

/// A query workload: `n` random-walk queries per setting.
#[derive(Debug)]
pub struct Workload {
    /// Setting the queries were drawn with.
    pub setting: QuerySetting,
    /// The sampled query hypergraphs.
    pub queries: Vec<Hypergraph>,
}

impl Workload {
    /// Samples `n` queries for `setting` from `data` (seeds `base_seed..`).
    /// Datasets that cannot produce a query for some seed get fewer
    /// queries; callers can check [`Workload::len`].
    pub fn sample(data: &Hypergraph, setting: QuerySetting, n: usize, base_seed: u64) -> Self {
        let queries = (0..n as u64)
            .filter_map(|i| sample_query(data, &setting, base_seed.wrapping_add(i)))
            .collect();
        Self { setting, queries }
    }

    /// Number of queries actually sampled.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether sampling produced no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgmatch_datasets::standard_settings;
    use hgmatch_hypergraph::{HypergraphBuilder, Label};

    fn tiny_data() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1, 2, 0] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![4, 6]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![3, 5, 6]).unwrap();
        b.add_edge(vec![0, 1, 4, 6]).unwrap();
        b.add_edge(vec![2, 3, 4, 5]).unwrap();
        b.build().unwrap()
    }

    fn paper_query() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![0, 1, 3, 4]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn all_algorithms_agree_on_paper_example() {
        let data = tiny_data();
        let query = paper_query();
        for alg in AlgorithmChoice::single_thread_lineup() {
            let run = time_algorithm(alg, &data, &query, None);
            assert_eq!(run.count, 2, "{}", alg.name());
            assert!(!run.timed_out);
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(AlgorithmChoice::HgMatch { threads: 1 }.name(), "HGMatch");
        assert_eq!(
            AlgorithmChoice::HgMatch { threads: 8 }.name(),
            "HGMatch(8t)"
        );
        assert_eq!(
            AlgorithmChoice::Baseline(BaselineAlgorithm::CflH).name(),
            "CFL-H"
        );
    }

    #[test]
    fn workload_sampling() {
        let data = tiny_data();
        let w = Workload::sample(&data, standard_settings()[0], 5, 1);
        assert!(!w.is_empty());
        for q in &w.queries {
            assert_eq!(q.num_edges(), 2);
        }
    }
}
