//! Small statistics helpers for experiment reports.

/// Median of a sample (average of the middle two for even sizes).
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Percentile in `[0, 100]` by nearest-rank.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Geometric mean (values must be positive; zeros are clamped to avoid
/// collapsing the whole mean when a timing rounds to zero).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let sum: f64 = values.iter().map(|&v| v.max(1e-12).ln()).sum();
    (sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn percentile_bounds() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn geomean() {
        let g = geometric_mean(&[1.0, 100.0]);
        assert!((g - 10.0).abs() < 1e-9);
        assert!(geometric_mean(&[]).is_nan());
        // Zero does not collapse the mean to zero.
        assert!(geometric_mean(&[0.0, 100.0]) > 0.0);
    }
}
