//! Shared experiment drivers used by the per-figure binaries.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use hgmatch_core::{MatchConfig, Matcher};
use hgmatch_datasets::{all_profiles, standard_settings, DatasetProfile};
use hgmatch_hypergraph::Hypergraph;

use crate::harness::{time_algorithm, AlgorithmChoice, Workload};
use crate::report::geometric_mean;

/// Parameters of the single-thread comparison sweep (Fig. 8 / Table IV).
#[derive(Debug, Clone)]
pub struct SweepParams {
    /// Per-query timeout (the paper used 1 hour; laptop default is shorter).
    pub timeout: Duration,
    /// Queries per (dataset, setting) pair (paper: 20).
    pub queries_per_setting: usize,
    /// Dataset names to include (paper: all but AR for single-thread runs).
    pub datasets: Vec<String>,
    /// Base RNG seed for query sampling.
    pub seed: u64,
}

impl Default for SweepParams {
    fn default() -> Self {
        Self {
            timeout: Duration::from_secs(2),
            queries_per_setting: 3,
            datasets: all_profiles()
                .iter()
                .map(|p| p.name.to_string())
                .filter(|n| n != "AR-S")
                .collect(),
            seed: 7,
        }
    }
}

/// One cell of the Fig. 8 grid.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Dataset name.
    pub dataset: String,
    /// Query setting name.
    pub setting: &'static str,
    /// Algorithm name.
    pub algorithm: String,
    /// Geometric-mean elapsed seconds over the workload (censored).
    pub mean_seconds: f64,
    /// Completed (non-timeout) queries.
    pub completed: usize,
    /// Total queries attempted.
    pub total: usize,
}

/// Result of the full sweep: Fig. 8 cells plus Table IV completion counts.
#[derive(Debug, Default)]
pub struct SweepResult {
    /// All timing cells.
    pub cells: Vec<SweepCell>,
}

impl SweepResult {
    /// Completion ratio per algorithm (Table IV's "Total" column).
    pub fn completion_ratios(&self) -> BTreeMap<String, (usize, usize)> {
        let mut totals: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for cell in &self.cells {
            let entry = totals.entry(cell.algorithm.clone()).or_insert((0, 0));
            entry.0 += cell.completed;
            entry.1 += cell.total;
        }
        totals
    }

    /// Average speedup of HGMatch over `algorithm` (ratio of geometric
    /// means across all common cells).
    pub fn speedup_over(&self, algorithm: &str) -> f64 {
        let mut ours = Vec::new();
        for cell in &self.cells {
            if cell.algorithm == "HGMatch" {
                ours.push((cell.dataset.clone(), cell.setting, cell.mean_seconds));
            }
        }
        let mut ratios = Vec::new();
        for (dataset, setting, hg) in &ours {
            if let Some(other) = self.cells.iter().find(|c| {
                &c.dataset == dataset && c.setting == *setting && c.algorithm == algorithm
            }) {
                if *hg > 0.0 {
                    ratios.push(other.mean_seconds / hg);
                }
            }
        }
        geometric_mean(&ratios)
    }
}

/// Runs the Fig. 8 / Table IV sweep.
///
/// `progress` receives one line per (dataset, setting, algorithm) for
/// incremental output.
pub fn single_thread_sweep(
    params: &SweepParams,
    mut progress: impl FnMut(&SweepCell),
) -> SweepResult {
    let mut result = SweepResult::default();
    for profile in selected_profiles(&params.datasets) {
        let data = profile.generate();
        for setting in standard_settings() {
            let workload =
                Workload::sample(&data, setting, params.queries_per_setting, params.seed);
            if workload.is_empty() {
                continue;
            }
            for algorithm in AlgorithmChoice::single_thread_lineup() {
                let mut seconds = Vec::new();
                let mut completed = 0usize;
                for query in &workload.queries {
                    let run = time_algorithm(algorithm, &data, query, Some(params.timeout));
                    seconds.push(run.seconds);
                    if !run.timed_out {
                        completed += 1;
                    }
                }
                let cell = SweepCell {
                    dataset: profile.name.to_string(),
                    setting: setting.name,
                    algorithm: algorithm.name(),
                    mean_seconds: geometric_mean(&seconds),
                    completed,
                    total: workload.len(),
                };
                progress(&cell);
                result.cells.push(cell);
            }
        }
    }
    result
}

/// Resolves dataset names to profiles, preserving request order.
pub fn selected_profiles(names: &[String]) -> Vec<DatasetProfile> {
    names
        .iter()
        .filter_map(|n| hgmatch_datasets::profile_by_name(n))
        .collect()
}

/// Times offline preprocessing (load + partition + index) for Fig. 7.
pub struct IndexTiming {
    /// Seconds to build the indexed hypergraph from raw edges.
    pub build_seconds: f64,
    /// Hyperedge-table bytes ("graph size").
    pub table_bytes: usize,
    /// Inverted-index bytes ("index size").
    pub index_bytes: usize,
}

/// Rebuilds `h` from its raw edges, timing the whole preprocessing path.
pub fn time_index_build(h: &Hypergraph) -> IndexTiming {
    // Extract raw form (outside the timed section).
    let labels: Vec<_> = h.labels().to_vec();
    let edges: Vec<Vec<u32>> = h.iter_edges().map(|(_, vs)| vs.to_vec()).collect();

    let start = Instant::now();
    let mut builder = hgmatch_hypergraph::HypergraphBuilder::new();
    for l in labels {
        builder.add_vertex(l);
    }
    for e in edges {
        builder.add_edge(e).expect("edges valid");
    }
    let rebuilt = builder.build().expect("build succeeds");
    let build_seconds = start.elapsed().as_secs_f64();

    IndexTiming {
        build_seconds,
        table_bytes: rebuilt.table_size_bytes(),
        index_bytes: rebuilt.index_size_bytes(),
    }
}

/// Picks the `k` queries with the most embeddings from a workload (used by
/// the scalability and scheduling experiments, which want heavy queries).
pub fn heaviest_queries(
    data: &Hypergraph,
    workload: &Workload,
    k: usize,
    timeout: Duration,
) -> Vec<(Hypergraph, u64)> {
    let matcher = Matcher::with_config(
        data,
        MatchConfig::parallel(num_cpus()).with_timeout(timeout),
    );
    let mut weighted: Vec<(Hypergraph, u64)> = workload
        .queries
        .iter()
        .map(|q| {
            let count = matcher.count(q).unwrap_or(0);
            (q.clone(), count)
        })
        .collect();
    weighted.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    weighted.truncate(k);
    weighted
}

/// Whether the CI bench-smoke mode is requested (`HGMATCH_BENCH_SMOKE`
/// set to anything but empty/`0`): bench bins shrink their workloads to
/// quick sizes so the job only checks they still run and write reports.
pub fn bench_smoke() -> bool {
    std::env::var("HGMATCH_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Available parallelism (1 if undetectable).
pub fn num_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
