//! # hgmatch-bench
//!
//! Benchmark harness regenerating every table and figure of the HGMatch
//! paper's evaluation (§VII). Each experiment is a binary under `src/bin/`
//! (see DESIGN.md §4 for the index); shared machinery — timing, query
//! workload construction, TSV reporting — lives here.

pub mod experiments;
pub mod harness;
pub mod report;

pub use experiments::{single_thread_sweep, SweepParams, SweepResult};
pub use harness::{time_algorithm, AlgorithmChoice, Workload};
pub use report::{geometric_mean, median, percentile};
